//! # fstore
//!
//! A feature store with first-class embedding support — a working
//! implementation of the system described in *"Managing ML Pipelines:
//! Feature Stores and the Coming Wave of Embedding Ecosystems"* (VLDB 2021).
//!
//! This facade re-exports the workspace crates:
//!
//! | module | contents |
//! |---|---|
//! | [`common`] | values, schemas, time, deterministic RNG, statistics |
//! | [`storage`] | offline columnar store + online KV store |
//! | [`query`] | the feature expression language |
//! | [`stream`] | windowed streaming features with dual-write sink |
//! | [`core`] | registry, materialization, PIT joins, serving, model store |
//! | [`embed`] | embedding store, trainers, compression, quality metrics |
//! | [`index`] | Flat / IVF / HNSW vector indexes |
//! | [`models`] | downstream classifiers + evaluation metrics |
//! | [`monitor`] | drift, skew, slice finding, patching |
//! | [`serve`] | TCP serving layer: wire protocol, batching, admission control |
//! | [`durable`] | write-ahead log, on-disk checkpoints, crash recovery |
//! | [`repl`] | snapshot-based replication: leader publication log + followers |
//! | [`shard`] | horizontal sharding: shard map, scatter-gather router, control plane |
//! | [`tier`] | larger-than-RAM embeddings: spill-to-disk pager + hot block cache |
//!
//! ## Quickstart
//!
//! ```
//! use fstore::prelude::*;
//!
//! // a feature store on a simulated clock
//! let mut fs = FeatureStore::new(Timestamp::EPOCH);
//! fs.create_source_table(
//!     "trips",
//!     TableConfig::new(Schema::of(&[
//!         ("user_id", ValueType::Str),
//!         ("ts", ValueType::Timestamp),
//!         ("fare", ValueType::Float),
//!     ]))
//!     .with_time_column("ts"),
//! )
//! .unwrap();
//! fs.ingest(
//!     "trips",
//!     &[vec![Value::from("u1"), Value::Timestamp(Timestamp::millis(1_000)), Value::Float(12.5)]],
//! )
//! .unwrap();
//!
//! // author + publish a feature, let the scheduler materialize it
//! fs.publish(FeatureSpec::new("last_fare", "user_id", "trips", "fare")).unwrap();
//! fs.advance(Duration::minutes(1)).unwrap();
//!
//! // serve it online
//! let v = fs
//!     .server()
//!     .serve("user_id", &EntityKey::new("u1"), &["last_fare"], fs.now())
//!     .unwrap();
//! assert_eq!(v.values[0], Value::Float(12.5));
//! ```

pub use fstore_common as common;
pub use fstore_core as core;
pub use fstore_durable as durable;
pub use fstore_embed as embed;
pub use fstore_index as index;
pub use fstore_models as models;
pub use fstore_monitor as monitor;
pub use fstore_query as query;
pub use fstore_repl as repl;
pub use fstore_serve as serve;
pub use fstore_shard as shard;
pub use fstore_storage as storage;
pub use fstore_stream as stream;
pub use fstore_tier as tier;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use fstore_common::{
        Date, Duration, EntityKey, FieldDef, FsError, ReadEpoch, Result, Rng, Schema, SimClock,
        SnapshotCell, Timestamp, Value, ValueType, Xoshiro256, Zipf,
    };
    pub use fstore_core::{
        naive_latest_join, point_in_time_join, FeatureServer, FeatureSpec, FeatureStore,
        LabelEvent, MaterializationScheduler, Materializer, ModelArtifact, ModelStore, PitFeature,
        StalenessPolicy,
    };
    pub use fstore_durable::{
        DurableConfig, DurableLeader, FsyncPolicy, RecoveryReport, SnapshotCache,
    };
    pub use fstore_embed::{
        eigenspace_overlap, knn_overlap, semantic_displacement, Corpus, CorpusConfig, EmbeddingDb,
        EmbeddingStore, EmbeddingTable, KgSgnsConfig, PcaModel, PpmiConfig, QuantizedTable,
        SgnsConfig,
    };
    pub use fstore_index::{
        recall_at_k, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, SearchParams,
        VectorIndex,
    };
    pub use fstore_models::{
        prediction_flips, ClassificationReport, Classifier, LogisticRegression, Mlp,
        SoftmaxRegression, TrainConfig,
    };
    pub use fstore_monitor::{
        augment_slice, discover_slices, mmd_rbf, reweight_slice, skew_report, DriftAlert,
        DriftMonitor, EmbeddingDriftMonitor, EmbeddingPatcher, LabelModel, SliceSpec,
    };
    pub use fstore_query::{AggFunc, Program};
    pub use fstore_serve::{
        ClientBuilder, FeatureClient, IndexCatalog, IndexSpec, SearchOptions, ServeConfig,
        ServeEngine, ServingMetrics, StoreApi, WireVector,
    };
    pub use fstore_shard::{ClusterConfig, RouterClient, ShardCluster, ShardId, ShardMap};
    pub use fstore_storage::{
        CmpOp, OfflineDb, OfflineStore, OnlineStore, Predicate, ScanRequest, TableConfig,
    };
    pub use fstore_stream::{Event, StreamAggregator, StreamPipeline, StreamRuntime, WindowSpec};
    pub use fstore_tier::{BlockCache, TierConfig, TieredEmbeddings};
}
