//! Multiclass softmax (multinomial logistic) regression with mini-batch SGD.

use crate::linalg::{axpy, dot, softmax, Matrix};
use crate::{Classifier, TrainConfig};
use fstore_common::{FsError, Result, Rng, Xoshiro256};
use serde::{Deserialize, Serialize};

/// Softmax regression: `P(y|x) = softmax(Wx + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoftmaxRegression {
    weights: Matrix, // k x d
    bias: Vec<f64>,  // k
}

impl SoftmaxRegression {
    /// Train on `(xs, ys)` with `num_classes` classes.
    pub fn train(
        xs: &[Vec<f64>],
        ys: &[usize],
        num_classes: usize,
        config: &TrainConfig,
    ) -> Result<Self> {
        Self::train_weighted(xs, ys, None, num_classes, config)
    }

    /// Train with optional per-example weights (slice reweighting hooks in
    /// here — the patching experiments E11/E12 use it).
    pub fn train_weighted(
        xs: &[Vec<f64>],
        ys: &[usize],
        sample_weights: Option<&[f64]>,
        num_classes: usize,
        config: &TrainConfig,
    ) -> Result<Self> {
        validate_training_input(xs, ys, num_classes)?;
        if let Some(w) = sample_weights {
            if w.len() != xs.len() {
                return Err(FsError::Model("sample weight length mismatch".into()));
            }
            if w.iter().any(|&x| x < 0.0 || !x.is_finite()) {
                return Err(FsError::Model(
                    "sample weights must be finite and >= 0".into(),
                ));
            }
        }
        let d = xs[0].len();
        let mut rng = Xoshiro256::seeded(config.seed);
        let mut model = SoftmaxRegression {
            weights: Matrix::randn(num_classes, d, 0.01, &mut rng),
            bias: vec![0.0; num_classes],
        };

        let n = xs.len();
        let mut order: Vec<usize> = (0..n).collect();
        let batch = config.batch_size.max(1);
        for _ in 0..config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(batch) {
                let mut grad_w = Matrix::zeros(num_classes, d);
                let mut grad_b = vec![0.0; num_classes];
                let mut total_weight = 0.0;
                for &i in chunk {
                    let w_i = sample_weights.map_or(1.0, |w| w[i]);
                    if w_i == 0.0 {
                        continue;
                    }
                    total_weight += w_i;
                    let p = model.proba_inner(&xs[i]);
                    for c in 0..num_classes {
                        let err = w_i * (p[c] - f64::from(u8::from(c == ys[i])));
                        grad_b[c] += err;
                        axpy(err, &xs[i], grad_w.row_mut(c));
                    }
                }
                if total_weight == 0.0 {
                    continue;
                }
                let lr = config.learning_rate / total_weight;
                for c in 0..num_classes {
                    let gw = grad_w.row(c).to_vec();
                    let row = model.weights.row_mut(c);
                    for (w, g) in row.iter_mut().zip(&gw) {
                        *w -= lr * (g + config.l2 * *w * total_weight);
                    }
                    model.bias[c] -= lr * grad_b[c];
                }
            }
        }
        Ok(model)
    }

    fn proba_inner(&self, x: &[f64]) -> Vec<f64> {
        let mut logits = self.weights.matvec(x).expect("dims checked at train time");
        for (l, b) in logits.iter_mut().zip(&self.bias) {
            *l += b;
        }
        softmax(&logits)
    }

    /// Average cross-entropy loss over a batch.
    pub fn loss(&self, xs: &[Vec<f64>], ys: &[usize]) -> Result<f64> {
        validate_training_input(xs, ys, self.num_classes())?;
        let mut total = 0.0;
        for (x, &y) in xs.iter().zip(ys) {
            let p = self.predict_proba(x)?;
            total -= p[y].max(1e-15).ln();
        }
        Ok(total / xs.len() as f64)
    }

    /// Serialize parameters for the model store.
    pub fn to_json(&self) -> Result<serde_json::Value> {
        serde_json::to_value(self).map_err(|e| FsError::Serde(e.to_string()))
    }

    pub fn from_json(v: &serde_json::Value) -> Result<Self> {
        serde_json::from_value(v.clone()).map_err(|e| FsError::Serde(e.to_string()))
    }

    pub fn weights(&self) -> &Matrix {
        &self.weights
    }
}

pub(crate) fn validate_training_input(
    xs: &[Vec<f64>],
    ys: &[usize],
    num_classes: usize,
) -> Result<()> {
    if xs.is_empty() || xs.len() != ys.len() {
        return Err(FsError::Model(format!(
            "training input mismatch: {} examples, {} labels",
            xs.len(),
            ys.len()
        )));
    }
    let d = xs[0].len();
    if d == 0 || xs.iter().any(|x| x.len() != d) {
        return Err(FsError::Model("ragged or empty feature vectors".into()));
    }
    if num_classes < 2 {
        return Err(FsError::Model("need at least 2 classes".into()));
    }
    if let Some(&bad) = ys.iter().find(|&&y| y >= num_classes) {
        return Err(FsError::Model(format!(
            "label {bad} out of range 0..{num_classes}"
        )));
    }
    Ok(())
}

impl Classifier for SoftmaxRegression {
    fn input_dim(&self) -> usize {
        self.weights.cols()
    }

    fn num_classes(&self) -> usize {
        self.weights.rows()
    }

    fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.input_dim() {
            return Err(FsError::Model(format!(
                "expected {} features, got {}",
                self.input_dim(),
                x.len()
            )));
        }
        let _ = dot(x, x); // touch to keep inlining friendly; cheap
        Ok(self.proba_inner(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian blobs.
    fn blobs(n_per: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = Xoshiro256::seeded(seed);
        let centers = [[0.0, 0.0], [5.0, 5.0], [-5.0, 5.0]];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..n_per {
                xs.push(vec![
                    center[0] + rng.normal() * 0.5,
                    center[1] + rng.normal() * 0.5,
                ]);
                ys.push(c);
            }
        }
        (xs, ys)
    }

    #[test]
    fn separable_blobs_reach_high_accuracy() {
        let (xs, ys) = blobs(100, 1);
        let m = SoftmaxRegression::train(&xs, &ys, 3, &TrainConfig::default()).unwrap();
        assert!(m.accuracy(&xs, &ys).unwrap() > 0.95);
        let (xt, yt) = blobs(50, 2);
        assert!(m.accuracy(&xt, &yt).unwrap() > 0.95, "held-out accuracy");
    }

    #[test]
    fn proba_is_a_distribution() {
        let (xs, ys) = blobs(30, 3);
        let m = SoftmaxRegression::train(&xs, &ys, 3, &TrainConfig::default()).unwrap();
        let p = m.predict_proba(&xs[0]).unwrap();
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = blobs(50, 4);
        let cfg = TrainConfig::default().with_seed(99);
        let a = SoftmaxRegression::train(&xs, &ys, 3, &cfg).unwrap();
        let b = SoftmaxRegression::train(&xs, &ys, 3, &cfg).unwrap();
        assert_eq!(a.weights(), b.weights());
        let c = SoftmaxRegression::train(&xs, &ys, 3, &cfg.with_seed(100)).unwrap();
        assert_ne!(a.weights(), c.weights());
    }

    #[test]
    fn validation_errors() {
        let xs = vec![vec![1.0, 2.0]];
        assert!(SoftmaxRegression::train(&xs, &[0, 1], 2, &TrainConfig::default()).is_err());
        assert!(SoftmaxRegression::train(&[], &[], 2, &TrainConfig::default()).is_err());
        assert!(SoftmaxRegression::train(&xs, &[5], 2, &TrainConfig::default()).is_err());
        assert!(SoftmaxRegression::train(&xs, &[0], 1, &TrainConfig::default()).is_err());
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(SoftmaxRegression::train(&ragged, &[0, 1], 2, &TrainConfig::default()).is_err());
        assert!(SoftmaxRegression::train_weighted(
            &xs,
            &[0],
            Some(&[-1.0]),
            2,
            &TrainConfig::default()
        )
        .is_err());
    }

    #[test]
    fn predict_dim_checked() {
        let (xs, ys) = blobs(30, 5);
        let m = SoftmaxRegression::train(&xs, &ys, 3, &TrainConfig::default()).unwrap();
        assert!(m.predict(&[1.0]).is_err());
    }

    #[test]
    fn sample_weights_shift_the_boundary() {
        // Two overlapping classes; upweighting class 1 should raise its recall.
        let mut rng = Xoshiro256::seeded(6);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..200 {
            xs.push(vec![rng.normal() - 0.5]);
            ys.push(0);
            xs.push(vec![rng.normal() + 0.5]);
            ys.push(1);
        }
        let cfg = TrainConfig::default();
        let plain = SoftmaxRegression::train(&xs, &ys, 2, &cfg).unwrap();
        let weights: Vec<f64> = ys.iter().map(|&y| if y == 1 { 5.0 } else { 1.0 }).collect();
        let tilted = SoftmaxRegression::train_weighted(&xs, &ys, Some(&weights), 2, &cfg).unwrap();
        let recall = |m: &SoftmaxRegression| {
            let mut hit = 0;
            let mut tot = 0;
            for (x, &y) in xs.iter().zip(&ys) {
                if y == 1 {
                    tot += 1;
                    if m.predict(x).unwrap() == 1 {
                        hit += 1;
                    }
                }
            }
            hit as f64 / tot as f64
        };
        assert!(
            recall(&tilted) > recall(&plain),
            "upweighting must raise recall"
        );
    }

    #[test]
    fn loss_decreases_with_training() {
        let (xs, ys) = blobs(60, 7);
        let short =
            SoftmaxRegression::train(&xs, &ys, 3, &TrainConfig::default().with_epochs(1)).unwrap();
        let long =
            SoftmaxRegression::train(&xs, &ys, 3, &TrainConfig::default().with_epochs(40)).unwrap();
        assert!(long.loss(&xs, &ys).unwrap() < short.loss(&xs, &ys).unwrap());
    }

    #[test]
    fn json_round_trip() {
        let (xs, ys) = blobs(30, 8);
        let m = SoftmaxRegression::train(&xs, &ys, 3, &TrainConfig::default()).unwrap();
        let j = m.to_json().unwrap();
        let m2 = SoftmaxRegression::from_json(&j).unwrap();
        assert_eq!(
            m.predict_batch(&xs).unwrap(),
            m2.predict_batch(&xs).unwrap()
        );
    }
}
