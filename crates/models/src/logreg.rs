//! Binary logistic regression — the light-weight downstream model used by
//! the instability experiments, where hundreds of retrains must be cheap.

use crate::linalg::dot;
use crate::{Classifier, TrainConfig};
use fstore_common::{FsError, Result, Rng, Xoshiro256};
use serde::{Deserialize, Serialize};

/// `P(y=1|x) = σ(w·x + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    pub fn train(xs: &[Vec<f64>], ys: &[usize], config: &TrainConfig) -> Result<Self> {
        crate::softmax::validate_training_input(xs, ys, 2)?;
        let d = xs[0].len();
        let mut rng = Xoshiro256::seeded(config.seed);
        let mut w: Vec<f64> = (0..d).map(|_| rng.normal() * 0.01).collect();
        let mut b = 0.0;

        let mut order: Vec<usize> = (0..xs.len()).collect();
        let batch = config.batch_size.max(1);
        for _ in 0..config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(batch) {
                let mut gw = vec![0.0; d];
                let mut gb = 0.0;
                for &i in chunk {
                    let err = sigmoid(dot(&w, &xs[i]) + b) - ys[i] as f64;
                    for (g, &x) in gw.iter_mut().zip(&xs[i]) {
                        *g += err * x;
                    }
                    gb += err;
                }
                let lr = config.learning_rate / chunk.len() as f64;
                for (wi, g) in w.iter_mut().zip(&gw) {
                    *wi -= lr * (g + config.l2 * *wi * chunk.len() as f64);
                }
                b -= lr * gb;
            }
        }
        Ok(LogisticRegression {
            weights: w,
            bias: b,
        })
    }

    /// Probability of the positive class.
    pub fn proba_positive(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.weights.len() {
            return Err(FsError::Model(format!(
                "expected {} features, got {}",
                self.weights.len(),
                x.len()
            )));
        }
        Ok(sigmoid(dot(&self.weights, x) + self.bias))
    }

    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    pub fn to_json(&self) -> Result<serde_json::Value> {
        serde_json::to_value(self).map_err(|e| FsError::Serde(e.to_string()))
    }

    pub fn from_json(v: &serde_json::Value) -> Result<Self> {
        serde_json::from_value(v.clone()).map_err(|e| FsError::Serde(e.to_string()))
    }
}

impl Classifier for LogisticRegression {
    fn input_dim(&self) -> usize {
        self.weights.len()
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>> {
        let p = self.proba_positive(x)?;
        Ok(vec![1.0 - p, p])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(n: usize, gap: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = Xoshiro256::seeded(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            xs.push(vec![rng.normal() - gap, rng.normal()]);
            ys.push(0);
            xs.push(vec![rng.normal() + gap, rng.normal()]);
            ys.push(1);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_data() {
        let (xs, ys) = two_blobs(150, 2.5, 1);
        let m = LogisticRegression::train(&xs, &ys, &TrainConfig::default()).unwrap();
        assert!(m.accuracy(&xs, &ys).unwrap() > 0.97);
        let (xt, yt) = two_blobs(50, 2.5, 2);
        assert!(m.accuracy(&xt, &yt).unwrap() > 0.95);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0).abs() < 1e-12);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn proba_and_classifier_agree() {
        let (xs, ys) = two_blobs(50, 1.5, 3);
        let m = LogisticRegression::train(&xs, &ys, &TrainConfig::default()).unwrap();
        let p = m.proba_positive(&xs[1]).unwrap();
        let dist = m.predict_proba(&xs[1]).unwrap();
        assert!((dist[1] - p).abs() < 1e-12);
        assert_eq!(m.predict(&xs[1]).unwrap(), usize::from(p > 0.5));
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let (xs, ys) = two_blobs(50, 0.3, 4);
        let a = LogisticRegression::train(&xs, &ys, &TrainConfig::default().with_seed(1)).unwrap();
        let b = LogisticRegression::train(&xs, &ys, &TrainConfig::default().with_seed(1)).unwrap();
        let c = LogisticRegression::train(&xs, &ys, &TrainConfig::default().with_seed(2)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rejects_non_binary_labels() {
        assert!(LogisticRegression::train(
            &[vec![1.0], vec![2.0]],
            &[0, 2],
            &TrainConfig::default()
        )
        .is_err());
    }

    #[test]
    fn json_round_trip() {
        let (xs, ys) = two_blobs(40, 1.0, 5);
        let m = LogisticRegression::train(&xs, &ys, &TrainConfig::default()).unwrap();
        let m2 = LogisticRegression::from_json(&m.to_json().unwrap()).unwrap();
        assert_eq!(m, m2);
    }
}
