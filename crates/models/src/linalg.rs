//! Minimal dense linear algebra: row-major matrices and the handful of
//! kernels the trainers and the embedding crate need (mat-vec, gram
//! products, power iteration is built on these in `fstore-embed`).

use fstore_common::{FsError, Result, Rng};
use serde::{Deserialize, Serialize};

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_rows(rows_data: Vec<Vec<f64>>) -> Result<Self> {
        let rows = rows_data.len();
        let cols = rows_data.first().map_or(0, Vec::len);
        if rows_data.iter().any(|r| r.len() != cols) {
            return Err(FsError::Model("ragged rows in Matrix::from_rows".into()));
        }
        Ok(Matrix {
            rows,
            cols,
            data: rows_data.into_iter().flatten().collect(),
        })
    }

    /// Gaussian init scaled by `scale` — deterministic given the RNG state.
    pub fn randn<R: Rng>(rows: usize, cols: usize, scale: f64, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.normal() * scale).collect();
        Matrix { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// `self · x` (x has len = cols).
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(FsError::Model(format!(
                "matvec shape mismatch: {}x{} · {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        Ok((0..self.rows).map(|r| dot(self.row(r), x)).collect())
    }

    /// `selfᵀ · x` (x has len = rows).
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(FsError::Model("matvec_t shape mismatch".into()));
        }
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (o, &m) in out.iter_mut().zip(self.row(r)) {
                *o += xr * m;
            }
        }
        Ok(out)
    }

    /// `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(FsError::Model(format!(
                "matmul shape mismatch: {}x{} · {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(r);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// Dense dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Normalize in place; returns the original norm (no-op on zero vectors).
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm(x);
    if n > 0.0 {
        for v in x.iter_mut() {
            *v /= n;
        }
    }
    n
}

/// Cosine similarity (0 when either vector is zero).
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let (na, nb) = (norm(a), norm(b));
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let m = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::Xoshiro256;

    #[test]
    fn from_rows_and_access() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert!(Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn matvec_and_transpose() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0, 1.0]).unwrap(), vec![9.0, 12.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_t(&[1.0]).is_err());
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (2, 3));
        assert_eq!(t.get(0, 2), 5.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(vec![vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap()
        );
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        let mut v = vec![3.0, 4.0];
        assert_eq!(normalize(&mut v), 5.0);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
    }

    #[test]
    fn cosine_cases() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn softmax_is_a_distribution_and_stable() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // huge logits must not overflow
        let p = softmax(&[1e4, 1e4 + 1.0]);
        assert!(p[1] > p[0]);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn randn_is_seeded() {
        let mut r1 = Xoshiro256::seeded(5);
        let mut r2 = Xoshiro256::seeded(5);
        assert_eq!(
            Matrix::randn(3, 3, 0.1, &mut r1),
            Matrix::randn(3, 3, 0.1, &mut r2)
        );
    }

    #[test]
    fn frobenius() {
        let m = Matrix::from_rows(vec![vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert_eq!(m.frobenius(), 5.0);
    }
}
