//! Evaluation metrics, including the paper's **downstream instability**
//! measure: the fraction of predictions that differ between two models
//! (Leszczynski et al., §3.1.2).

use fstore_common::{FsError, Result};

/// Per-class precision/recall/F1 with support.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMetrics {
    pub class: usize,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub support: usize,
}

/// Full classification report.
#[derive(Debug, Clone)]
pub struct ClassificationReport {
    pub accuracy: f64,
    pub per_class: Vec<ClassMetrics>,
    pub macro_f1: f64,
    /// `confusion[truth][pred]`.
    pub confusion: Vec<Vec<usize>>,
}

impl ClassificationReport {
    /// Compute from aligned truth/prediction vectors over `num_classes`.
    pub fn compute(truth: &[usize], preds: &[usize], num_classes: usize) -> Result<Self> {
        if truth.len() != preds.len() || truth.is_empty() {
            return Err(FsError::Model(format!(
                "report needs aligned non-empty labels ({} vs {})",
                truth.len(),
                preds.len()
            )));
        }
        if truth.iter().chain(preds).any(|&c| c >= num_classes) {
            return Err(FsError::Model("class index out of range".into()));
        }
        let mut confusion = vec![vec![0usize; num_classes]; num_classes];
        for (&t, &p) in truth.iter().zip(preds) {
            confusion[t][p] += 1;
        }
        let correct: usize = (0..num_classes).map(|c| confusion[c][c]).sum();
        let accuracy = correct as f64 / truth.len() as f64;

        let mut per_class = Vec::with_capacity(num_classes);
        for c in 0..num_classes {
            let tp = confusion[c][c];
            let fp: usize = (0..num_classes)
                .filter(|&t| t != c)
                .map(|t| confusion[t][c])
                .sum();
            let fn_: usize = (0..num_classes)
                .filter(|&p| p != c)
                .map(|p| confusion[c][p])
                .sum();
            let support = tp + fn_;
            let precision = if tp + fp == 0 {
                0.0
            } else {
                tp as f64 / (tp + fp) as f64
            };
            let recall = if support == 0 {
                0.0
            } else {
                tp as f64 / support as f64
            };
            let f1 = if precision + recall == 0.0 {
                0.0
            } else {
                2.0 * precision * recall / (precision + recall)
            };
            per_class.push(ClassMetrics {
                class: c,
                precision,
                recall,
                f1,
                support,
            });
        }
        let macro_f1 = per_class.iter().map(|m| m.f1).sum::<f64>() / num_classes as f64;
        Ok(ClassificationReport {
            accuracy,
            per_class,
            macro_f1,
            confusion,
        })
    }

    /// Accuracy over a subset of indices (slice metrics).
    pub fn subset_accuracy(truth: &[usize], preds: &[usize], indices: &[usize]) -> Result<f64> {
        if indices.is_empty() {
            return Err(FsError::Model("empty slice".into()));
        }
        let mut hit = 0usize;
        for &i in indices {
            if i >= truth.len() {
                return Err(FsError::Model(format!("slice index {i} out of range")));
            }
            if truth[i] == preds[i] {
                hit += 1;
            }
        }
        Ok(hit as f64 / indices.len() as f64)
    }
}

/// **Downstream instability**: the fraction of aligned predictions that
/// differ between two models (0 = identical behaviour, 1 = total disagreement).
pub fn prediction_flips(a: &[usize], b: &[usize]) -> Result<f64> {
    if a.len() != b.len() || a.is_empty() {
        return Err(FsError::Model(format!(
            "instability needs aligned non-empty predictions ({} vs {})",
            a.len(),
            b.len()
        )));
    }
    let flips = a.iter().zip(b).filter(|(x, y)| x != y).count();
    Ok(flips as f64 / a.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = vec![0, 1, 2, 1, 0];
        let r = ClassificationReport::compute(&y, &y, 3).unwrap();
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.macro_f1, 1.0);
        assert!(r.per_class.iter().all(|m| m.f1 == 1.0));
        assert_eq!(r.confusion[1][1], 2);
    }

    #[test]
    fn known_confusion_matrix() {
        // truth:  0 0 0 1 1
        // pred:   0 1 0 1 0
        let truth = vec![0, 0, 0, 1, 1];
        let preds = vec![0, 1, 0, 1, 0];
        let r = ClassificationReport::compute(&truth, &preds, 2).unwrap();
        assert!((r.accuracy - 0.6).abs() < 1e-12);
        let c0 = &r.per_class[0];
        assert!((c0.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((c0.recall - 2.0 / 3.0).abs() < 1e-12);
        let c1 = &r.per_class[1];
        assert!((c1.precision - 0.5).abs() < 1e-12);
        assert!((c1.recall - 0.5).abs() < 1e-12);
        assert_eq!(c1.support, 2);
        assert_eq!(r.confusion, vec![vec![2, 1], vec![1, 1]]);
    }

    #[test]
    fn absent_class_has_zero_metrics_not_nan() {
        let truth = vec![0, 0];
        let preds = vec![0, 0];
        let r = ClassificationReport::compute(&truth, &preds, 2).unwrap();
        let c1 = &r.per_class[1];
        assert_eq!((c1.precision, c1.recall, c1.f1), (0.0, 0.0, 0.0));
        assert_eq!(c1.support, 0);
    }

    #[test]
    fn validation() {
        assert!(ClassificationReport::compute(&[], &[], 2).is_err());
        assert!(ClassificationReport::compute(&[0], &[0, 1], 2).is_err());
        assert!(ClassificationReport::compute(&[5], &[0], 2).is_err());
    }

    #[test]
    fn subset_accuracy_slices() {
        let truth = vec![0, 1, 0, 1];
        let preds = vec![0, 0, 0, 1];
        assert_eq!(
            ClassificationReport::subset_accuracy(&truth, &preds, &[1, 3]).unwrap(),
            0.5
        );
        assert!(ClassificationReport::subset_accuracy(&truth, &preds, &[]).is_err());
        assert!(ClassificationReport::subset_accuracy(&truth, &preds, &[9]).is_err());
    }

    #[test]
    fn instability_metric() {
        assert_eq!(prediction_flips(&[0, 1, 2], &[0, 1, 2]).unwrap(), 0.0);
        assert_eq!(prediction_flips(&[0, 1, 2, 0], &[0, 2, 1, 0]).unwrap(), 0.5);
        assert_eq!(prediction_flips(&[0], &[1]).unwrap(), 1.0);
        assert!(prediction_flips(&[], &[]).is_err());
        assert!(prediction_flips(&[0], &[0, 1]).is_err());
    }
}
