//! One-hidden-layer MLP — the nonlinear downstream consumer. Used where the
//! task (e.g. NED over concatenated mention/entity embeddings in E5) is not
//! linearly separable.

use crate::linalg::{axpy, softmax, Matrix};
use crate::{Classifier, TrainConfig};
use fstore_common::{FsError, Result, Rng, Xoshiro256};
use serde::{Deserialize, Serialize};

/// `softmax(W2 · tanh(W1 x + b1) + b2)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    w1: Matrix, // h x d
    b1: Vec<f64>,
    w2: Matrix, // k x h
    b2: Vec<f64>,
}

impl Mlp {
    pub fn train(
        xs: &[Vec<f64>],
        ys: &[usize],
        num_classes: usize,
        hidden: usize,
        config: &TrainConfig,
    ) -> Result<Self> {
        crate::softmax::validate_training_input(xs, ys, num_classes)?;
        if hidden == 0 {
            return Err(FsError::Model("hidden layer must be non-empty".into()));
        }
        let d = xs[0].len();
        let mut rng = Xoshiro256::seeded(config.seed);
        let s1 = (2.0 / d as f64).sqrt();
        let s2 = (2.0 / hidden as f64).sqrt();
        let mut m = Mlp {
            w1: Matrix::randn(hidden, d, s1, &mut rng),
            b1: vec![0.0; hidden],
            w2: Matrix::randn(num_classes, hidden, s2, &mut rng),
            b2: vec![0.0; num_classes],
        };

        let mut order: Vec<usize> = (0..xs.len()).collect();
        let batch = config.batch_size.max(1);
        for _ in 0..config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(batch) {
                let mut gw1 = Matrix::zeros(hidden, d);
                let mut gb1 = vec![0.0; hidden];
                let mut gw2 = Matrix::zeros(num_classes, hidden);
                let mut gb2 = vec![0.0; num_classes];
                for &i in chunk {
                    let (h, p) = m.forward(&xs[i]);
                    // output layer error
                    let mut delta2 = p;
                    delta2[ys[i]] -= 1.0;
                    for c in 0..num_classes {
                        gb2[c] += delta2[c];
                        axpy(delta2[c], &h, gw2.row_mut(c));
                    }
                    // backprop through tanh
                    let mut delta1 = m.w2.matvec_t(&delta2).expect("shapes fixed");
                    for (dh, &hv) in delta1.iter_mut().zip(&h) {
                        *dh *= 1.0 - hv * hv;
                    }
                    for j in 0..hidden {
                        gb1[j] += delta1[j];
                        axpy(delta1[j], &xs[i], gw1.row_mut(j));
                    }
                }
                let lr = config.learning_rate / chunk.len() as f64;
                let l2 = config.l2 * chunk.len() as f64;
                for j in 0..hidden {
                    let g = gw1.row(j).to_vec();
                    for (w, gi) in m.w1.row_mut(j).iter_mut().zip(&g) {
                        *w -= lr * (gi + l2 * *w);
                    }
                    m.b1[j] -= lr * gb1[j];
                }
                for c in 0..num_classes {
                    let g = gw2.row(c).to_vec();
                    for (w, gi) in m.w2.row_mut(c).iter_mut().zip(&g) {
                        *w -= lr * (gi + l2 * *w);
                    }
                    m.b2[c] -= lr * gb2[c];
                }
            }
        }
        Ok(m)
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut h = self.w1.matvec(x).expect("dims checked");
        for (hv, b) in h.iter_mut().zip(&self.b1) {
            *hv = (*hv + b).tanh();
        }
        let mut logits = self.w2.matvec(&h).expect("dims fixed");
        for (l, b) in logits.iter_mut().zip(&self.b2) {
            *l += b;
        }
        (h, softmax(&logits))
    }

    pub fn to_json(&self) -> Result<serde_json::Value> {
        serde_json::to_value(self).map_err(|e| FsError::Serde(e.to_string()))
    }

    pub fn from_json(v: &serde_json::Value) -> Result<Self> {
        serde_json::from_value(v.clone()).map_err(|e| FsError::Serde(e.to_string()))
    }
}

impl Classifier for Mlp {
    fn input_dim(&self) -> usize {
        self.w1.cols()
    }

    fn num_classes(&self) -> usize {
        self.w2.rows()
    }

    fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.input_dim() {
            return Err(FsError::Model(format!(
                "expected {} features, got {}",
                self.input_dim(),
                x.len()
            )));
        }
        Ok(self.forward(x).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-ish data: not linearly separable.
    fn xor_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = Xoshiro256::seeded(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.chance(0.5);
            let b = rng.chance(0.5);
            xs.push(vec![
                f64::from(a) * 2.0 - 1.0 + rng.normal() * 0.2,
                f64::from(b) * 2.0 - 1.0 + rng.normal() * 0.2,
            ]);
            ys.push(usize::from(a != b));
        }
        (xs, ys)
    }

    #[test]
    fn learns_xor() {
        let (xs, ys) = xor_data(400, 1);
        let cfg = TrainConfig {
            epochs: 120,
            learning_rate: 0.5,
            ..TrainConfig::default()
        };
        let m = Mlp::train(&xs, &ys, 2, 8, &cfg).unwrap();
        assert!(m.accuracy(&xs, &ys).unwrap() > 0.95, "MLP must solve XOR");
        // sanity: a linear model cannot
        let lin = crate::LogisticRegression::train(&xs, &ys, &TrainConfig::default()).unwrap();
        assert!(lin.accuracy(&xs, &ys).unwrap() < 0.8);
    }

    #[test]
    fn validates_inputs() {
        let (xs, ys) = xor_data(10, 2);
        assert!(Mlp::train(&xs, &ys, 2, 0, &TrainConfig::default()).is_err());
        assert!(Mlp::train(&xs, &ys[..5], 2, 4, &TrainConfig::default()).is_err());
        let m = Mlp::train(&xs, &ys, 2, 4, &TrainConfig::default()).unwrap();
        assert!(m.predict(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = xor_data(100, 3);
        let cfg = TrainConfig::default().with_seed(11).with_epochs(5);
        let a = Mlp::train(&xs, &ys, 2, 4, &cfg).unwrap();
        let b = Mlp::train(&xs, &ys, 2, 4, &cfg).unwrap();
        assert_eq!(a.predict_batch(&xs).unwrap(), b.predict_batch(&xs).unwrap());
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn json_round_trip() {
        let (xs, ys) = xor_data(50, 4);
        let m = Mlp::train(&xs, &ys, 2, 4, &TrainConfig::default().with_epochs(3)).unwrap();
        let m2 = Mlp::from_json(&m.to_json().unwrap()).unwrap();
        assert_eq!(
            m.predict_batch(&xs).unwrap(),
            m2.predict_batch(&xs).unwrap()
        );
    }

    #[test]
    fn proba_is_distribution() {
        let (xs, ys) = xor_data(50, 5);
        let m = Mlp::train(&xs, &ys, 2, 4, &TrainConfig::default().with_epochs(3)).unwrap();
        let p = m.predict_proba(&xs[0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
