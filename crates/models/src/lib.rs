//! # fstore-models
//!
//! The *downstream consumers* of features and embeddings: small, fast,
//! deterministic classifiers trained in pure Rust. They exist because the
//! embedding-ecosystem experiments (E5–E8, E11, E12) all measure **what a
//! downstream model does** — downstream instability is "the number of
//! predictions that change with different embeddings" (Leszczynski et al.),
//! slice gaps and patches are measured on model predictions (Goel et al.),
//! and the eigenspace overlap score is validated against downstream
//! accuracy (May et al.).
//!
//! Everything trains from an explicit seed (via `fstore-common`'s RNG), so
//! "retrain with a different seed" — the instability experiments' knob — is
//! first class.

// Index-based loops are clearer than iterator chains in the dense
// numeric kernels below; silence the style lint crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod linalg;
pub mod logreg;
pub mod metrics;
pub mod mlp;
pub mod softmax;

pub use linalg::Matrix;
pub use logreg::LogisticRegression;
pub use metrics::{prediction_flips, ClassificationReport};
pub use mlp::Mlp;
pub use softmax::SoftmaxRegression;

use fstore_common::Result;

/// Mini-batch SGD hyper-parameters shared by all trainers.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct TrainConfig {
    pub epochs: usize,
    pub learning_rate: f64,
    pub l2: f64,
    pub batch_size: usize,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            learning_rate: 0.1,
            l2: 1e-4,
            batch_size: 32,
            seed: 7,
        }
    }
}

impl TrainConfig {
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }
}

/// A trained multi-class classifier.
pub trait Classifier {
    /// Number of input features.
    fn input_dim(&self) -> usize;
    /// Number of classes.
    fn num_classes(&self) -> usize;
    /// Class probabilities for one example.
    fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>>;

    /// Hard prediction (argmax).
    fn predict(&self, x: &[f64]) -> Result<usize> {
        let p = self.predict_proba(x)?;
        Ok(argmax(&p))
    }

    /// Hard predictions for a batch.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<usize>> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Accuracy over a labeled batch.
    fn accuracy(&self, xs: &[Vec<f64>], ys: &[usize]) -> Result<f64> {
        let preds = self.predict_batch(xs)?;
        let hits = preds.iter().zip(ys).filter(|(p, y)| p == y).count();
        Ok(hits as f64 / ys.len().max(1) as f64)
    }
}

/// Index of the largest element (first on ties).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }
}
