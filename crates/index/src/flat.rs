//! Exact brute-force index: the recall-1.0 baseline every ANN index is
//! measured against.

use crate::{check_query, l2_sq, Hit, SearchParams, VectorIndex};
use fstore_common::{FsError, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Brute-force scan over the full dataset.
pub struct FlatIndex {
    dim: usize,
    data: Vec<Vec<f32>>,
}

/// Max-heap entry so the heap root is the *worst* of the current top-k.
struct HeapHit(f32, usize);

impl PartialEq for HeapHit {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for HeapHit {}
impl PartialOrd for HeapHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapHit {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

impl FlatIndex {
    pub fn build(data: Vec<Vec<f32>>) -> Result<Self> {
        let dim = data.first().map_or(0, Vec::len);
        if dim == 0 {
            return Err(FsError::Index("flat index needs non-empty vectors".into()));
        }
        if data.iter().any(|v| v.len() != dim) {
            return Err(FsError::Index("ragged vectors".into()));
        }
        Ok(FlatIndex { dim, data })
    }

    /// Top-k via a bounded max-heap (O(n log k)).
    pub(crate) fn top_k(
        data: &[Vec<f32>],
        ids: Option<&[usize]>,
        query: &[f32],
        k: usize,
    ) -> Vec<Hit> {
        let mut heap: BinaryHeap<HeapHit> = BinaryHeap::with_capacity(k + 1);
        let push = |heap: &mut BinaryHeap<HeapHit>, id: usize, v: &[f32]| {
            let d = l2_sq(v, query);
            if heap.len() < k {
                heap.push(HeapHit(d, id));
            } else if d < heap.peek().unwrap().0 {
                heap.pop();
                heap.push(HeapHit(d, id));
            }
        };
        match ids {
            None => {
                for (id, v) in data.iter().enumerate() {
                    push(&mut heap, id, v);
                }
            }
            Some(ids) => {
                for &id in ids {
                    push(&mut heap, id, &data[id]);
                }
            }
        }
        let mut hits: Vec<Hit> = heap.into_iter().map(|HeapHit(d, id)| (id, d)).collect();
        hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        hits
    }

    /// Two-argument form kept one release for source compatibility; new
    /// code should call [`VectorIndex::search`] with [`SearchParams`].
    pub fn search(&self, query: &[f32], k: usize) -> Result<Vec<Hit>> {
        VectorIndex::search(self, query, k, &SearchParams::default())
    }
}

impl VectorIndex for FlatIndex {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn vector(&self, id: usize) -> Option<&[f32]> {
        self.data.get(id).map(Vec::as_slice)
    }

    // Flat is already exact, so every param set means the same scan.
    fn search(&self, query: &[f32], k: usize, _params: &SearchParams) -> Result<Vec<Hit>> {
        check_query(self.dim, self.len(), query, k)?;
        Ok(Self::top_k(&self.data, None, query, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Vec<f32>> {
        // points at x = 0, 1, 2, ..., 9 on a line
        (0..10).map(|i| vec![i as f32, 0.0]).collect()
    }

    #[test]
    fn build_validation() {
        assert!(FlatIndex::build(vec![]).is_err());
        assert!(FlatIndex::build(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn exact_nearest() {
        let idx = FlatIndex::build(grid()).unwrap();
        let hits = idx.search(&[3.2, 0.0], 3).unwrap();
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![3, 4, 2]);
        assert!(hits[0].1 <= hits[1].1 && hits[1].1 <= hits[2].1);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let idx = FlatIndex::build(grid()).unwrap();
        let hits = idx.search(&[0.0, 0.0], 100).unwrap();
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn query_validation() {
        let idx = FlatIndex::build(grid()).unwrap();
        assert!(idx.search(&[1.0], 3).is_err());
        assert!(idx.search(&[1.0, 2.0], 0).is_err());
    }

    #[test]
    fn ties_break_by_id() {
        let data = vec![vec![1.0], vec![1.0], vec![2.0]];
        let idx = FlatIndex::build(data).unwrap();
        let hits = idx.search(&[1.0], 2).unwrap();
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
    }
}
