//! Lloyd's k-means with k-means++ seeding — the coarse quantizer behind
//! [`crate::IvfIndex`].

use crate::l2_sq;
use fstore_common::{FsError, Result, Rng, Xoshiro256};

/// Cluster `data` into `k` centroids; returns `(centroids, assignment)`.
/// Deterministic in `seed`. Empty clusters are re-seeded from the point
/// farthest from its centroid.
pub fn kmeans(
    data: &[Vec<f32>],
    k: usize,
    iterations: usize,
    seed: u64,
) -> Result<(Vec<Vec<f32>>, Vec<usize>)> {
    if data.is_empty() {
        return Err(FsError::Index("k-means on empty data".into()));
    }
    if k == 0 || k > data.len() {
        return Err(FsError::Index(format!(
            "k must be in 1..={}, got {k}",
            data.len()
        )));
    }
    let dim = data[0].len();
    let mut rng = Xoshiro256::seeded(seed);

    // k-means++ seeding
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(data[rng.below(data.len() as u64) as usize].clone());
    let mut dist2: Vec<f64> = data
        .iter()
        .map(|v| f64::from(l2_sq(v, &centroids[0])))
        .collect();
    while centroids.len() < k {
        let total: f64 = dist2.iter().sum();
        let next = if total <= 0.0 {
            // all points coincide with chosen centroids: pick any
            rng.below(data.len() as u64) as usize
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = data.len() - 1;
            for (i, &d) in dist2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(data[next].clone());
        for (i, v) in data.iter().enumerate() {
            dist2[i] = dist2[i].min(f64::from(l2_sq(v, centroids.last().unwrap())));
        }
    }

    let mut assignment = vec![0usize; data.len()];
    for _ in 0..iterations.max(1) {
        // assign
        let mut changed = false;
        for (i, v) in data.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, cent) in centroids.iter().enumerate() {
                let d = l2_sq(v, cent);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // update
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, v) in data.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, &x) in sums[assignment[i]].iter_mut().zip(v) {
                *s += f64::from(x);
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // re-seed from the globally farthest point
                let far = (0..data.len())
                    .max_by(|&a, &b| {
                        let da = l2_sq(&data[a], &centroids[assignment[a]]);
                        let db = l2_sq(&data[b], &centroids[assignment[b]]);
                        da.total_cmp(&db)
                    })
                    .unwrap();
                centroids[c] = data[far].clone();
                changed = true;
            } else {
                for (j, s) in sums[c].iter().enumerate() {
                    centroids[c][j] = (s / counts[c] as f64) as f32;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok((centroids, assignment))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs(n_per: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Xoshiro256::seeded(seed);
        let centers = [[0.0f32, 0.0], [10.0, 10.0], [-10.0, 10.0]];
        let mut data = Vec::new();
        for c in centers {
            for _ in 0..n_per {
                data.push(vec![
                    c[0] + rng.normal() as f32 * 0.5,
                    c[1] + rng.normal() as f32 * 0.5,
                ]);
            }
        }
        data
    }

    #[test]
    fn recovers_blob_structure() {
        let data = three_blobs(50, 1);
        let (centroids, assign) = kmeans(&data, 3, 20, 7).unwrap();
        assert_eq!(centroids.len(), 3);
        // each blob maps to a single cluster
        for blob in 0..3 {
            let first = assign[blob * 50];
            assert!(
                assign[blob * 50..(blob + 1) * 50]
                    .iter()
                    .all(|&a| a == first),
                "blob {blob} split across clusters"
            );
        }
        // and the three blobs get three distinct clusters
        let mut reps = vec![assign[0], assign[50], assign[100]];
        reps.sort_unstable();
        reps.dedup();
        assert_eq!(reps.len(), 3);
    }

    #[test]
    fn deterministic() {
        let data = three_blobs(20, 2);
        let a = kmeans(&data, 3, 10, 9).unwrap();
        let b = kmeans(&data, 3, 10, 9).unwrap();
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn validation() {
        assert!(kmeans(&[], 1, 5, 0).is_err());
        let data = vec![vec![1.0f32]];
        assert!(kmeans(&data, 0, 5, 0).is_err());
        assert!(kmeans(&data, 2, 5, 0).is_err());
    }

    #[test]
    fn duplicate_points_are_handled() {
        let data = vec![vec![1.0f32, 1.0]; 10];
        let (centroids, assign) = kmeans(&data, 3, 5, 3).unwrap();
        assert_eq!(centroids.len(), 3);
        assert_eq!(assign.len(), 10);
    }

    #[test]
    fn k_equals_n() {
        let data = three_blobs(2, 4);
        let (c, a) = kmeans(&data, 6, 5, 5).unwrap();
        assert_eq!(c.len(), 6);
        assert_eq!(a.len(), 6);
    }
}
