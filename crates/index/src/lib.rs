//! # fstore-index
//!
//! Vector similarity indexes — the serving substrate for embeddings at
//! scale (paper §4: "users need tools for searching and querying these
//! embeddings … at industrial scale"). Three index families cover the
//! recall/latency/build-cost trade-off surface experiment **E9** sweeps:
//!
//! * [`FlatIndex`] — exact brute-force scan (recall 1.0, O(n) per query);
//! * [`IvfIndex`] — k-means inverted file with `nprobe` search;
//! * [`HnswIndex`] — hierarchical navigable small world graph.
//!
//! All indexes speak squared-L2 over `f32` vectors; cosine search is L2
//! over unit-normalized vectors (see [`normalize_all`]).

pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod kmeans;
pub mod recall;

pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use ivf::{IvfConfig, IvfIndex};
pub use kmeans::kmeans;
pub use recall::recall_at_k;

use fstore_common::{FsError, Result};

/// A search hit: dataset row id and squared-L2 distance.
pub type Hit = (usize, f32);

/// Per-query search knobs accepted by every index family.
///
/// `None` falls back to the index's configured default; knobs an index
/// family has no use for are ignored (`ef` by IVF, `nprobe` by HNSW, both
/// by Flat). This is what lets one generic call site — the recall harness,
/// the serving catalog, the experiment sweeps — drive any family without
/// matching on concrete types. `exhaustive` forces an exact scan on any
/// index: the recall-1.0 escape hatch when correctness beats latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SearchParams {
    /// HNSW beam width; `None` uses the index's `ef_search`.
    pub ef: Option<usize>,
    /// IVF cells scanned; `None` uses the index's `nprobe`.
    pub nprobe: Option<usize>,
    /// Bypass the approximate structure and scan everything.
    pub exhaustive: bool,
}

impl SearchParams {
    /// Params that pin the HNSW beam width.
    pub fn with_ef(ef: usize) -> Self {
        SearchParams {
            ef: Some(ef),
            ..SearchParams::default()
        }
    }

    /// Params that pin the IVF probe count.
    pub fn with_nprobe(nprobe: usize) -> Self {
        SearchParams {
            nprobe: Some(nprobe),
            ..SearchParams::default()
        }
    }

    /// Params that force an exact scan on any index family.
    pub fn exact() -> Self {
        SearchParams {
            exhaustive: true,
            ..SearchParams::default()
        }
    }
}

/// Common interface over all index families.
pub trait VectorIndex {
    fn len(&self) -> usize;
    fn dim(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The stored vector for a dataset row id, if `id` is in range.
    fn vector(&self, id: usize) -> Option<&[f32]>;
    /// `k` nearest neighbours of `query` under `params`, ascending by
    /// distance. The single search entry point: every family interprets
    /// the knobs it understands and ignores the rest.
    fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Result<Vec<Hit>>;
}

/// Squared L2 distance.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Unit-normalize every vector (cosine search = L2 on the result).
pub fn normalize_all(data: &mut [Vec<f32>]) {
    for v in data {
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if n > 0.0 {
            for x in v.iter_mut() {
                *x /= n;
            }
        }
    }
}

pub(crate) fn check_query(dim: usize, len: usize, query: &[f32], k: usize) -> Result<()> {
    if query.len() != dim {
        return Err(FsError::Index(format!(
            "query dim {} != index dim {dim}",
            query.len()
        )));
    }
    if k == 0 {
        return Err(FsError::Index("k must be positive".into()));
    }
    if len == 0 {
        return Err(FsError::Index("index is empty".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_sq_known() {
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn normalize_all_units_and_zeros() {
        let mut data = vec![vec![3.0, 4.0], vec![0.0, 0.0]];
        normalize_all(&mut data);
        assert!((l2_sq(&data[0], &[0.6, 0.8])).abs() < 1e-12);
        assert_eq!(data[1], vec![0.0, 0.0]);
    }
}
