//! Recall measurement harness: compares any index against exact ground
//! truth — the quality axis of experiment E9.

use crate::flat::FlatIndex;
use crate::VectorIndex;
use fstore_common::{FsError, Result};

/// Mean recall@k of `index` against exact search over the same data.
///
/// `ground_truth` must be a [`FlatIndex`] built over the identical dataset
/// (same ids). Recall@k = |approx top-k ∩ exact top-k| / k, averaged over
/// queries.
pub fn recall_at_k(
    index: &dyn VectorIndex,
    ground_truth: &FlatIndex,
    queries: &[Vec<f32>],
    k: usize,
) -> Result<f64> {
    if queries.is_empty() {
        return Err(FsError::Index("recall needs at least one query".into()));
    }
    if index.len() != ground_truth.len() {
        return Err(FsError::Index(format!(
            "index ({}) and ground truth ({}) sizes differ",
            index.len(),
            ground_truth.len()
        )));
    }
    let mut hit = 0usize;
    let mut total = 0usize;
    for q in queries {
        let truth = ground_truth.search(q, k)?;
        let approx = index.search(q, k)?;
        let approx_ids: Vec<usize> = approx.iter().map(|h| h.0).collect();
        hit += truth
            .iter()
            .filter(|(id, _)| approx_ids.contains(id))
            .count();
        total += truth.len();
    }
    Ok(hit as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivf::{IvfConfig, IvfIndex};
    use fstore_common::{Rng, Xoshiro256};

    fn random_data(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Xoshiro256::seeded(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
            .collect()
    }

    #[test]
    fn flat_recall_is_one() {
        let data = random_data(500, 8, 1);
        let flat = FlatIndex::build(data.clone()).unwrap();
        let probe = FlatIndex::build(data).unwrap();
        let queries = random_data(10, 8, 2);
        assert!((recall_at_k(&probe, &flat, &queries, 10).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ivf_recall_is_partial_but_positive() {
        let data = random_data(1_000, 8, 3);
        let flat = FlatIndex::build(data.clone()).unwrap();
        let ivf = IvfIndex::build(
            data,
            IvfConfig {
                nlist: 32,
                nprobe: 2,
                ..IvfConfig::default()
            },
        )
        .unwrap();
        let queries = random_data(20, 8, 4);
        let r = recall_at_k(&ivf, &flat, &queries, 10).unwrap();
        assert!(r > 0.2 && r <= 1.0, "recall {r}");
    }

    #[test]
    fn validation() {
        let data = random_data(10, 4, 5);
        let flat = FlatIndex::build(data.clone()).unwrap();
        let small = FlatIndex::build(data[..5].to_vec()).unwrap();
        assert!(recall_at_k(&small, &flat, &random_data(2, 4, 6), 3).is_err());
        assert!(recall_at_k(&flat, &flat, &[], 3).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            /// Flat search always returns exactly min(k, n) ascending hits.
            #[test]
            fn flat_search_sorted_and_sized(n in 1usize..60, k in 1usize..20, seed in 0u64..100) {
                let data = random_data(n, 4, seed);
                let flat = FlatIndex::build(data).unwrap();
                let q = random_data(1, 4, seed + 1).pop().unwrap();
                let hits = flat.search(&q, k).unwrap();
                prop_assert_eq!(hits.len(), k.min(n));
                for w in hits.windows(2) {
                    prop_assert!(w[0].1 <= w[1].1);
                }
            }
        }
    }
}
