//! Recall measurement harness: compares any index against exact ground
//! truth — the quality axis of experiment E9.

use crate::flat::FlatIndex;
use crate::{SearchParams, VectorIndex};
use fstore_common::{FsError, Result};

/// Mean recall@k of `index` under `params` against exact search over the
/// same data.
///
/// `ground_truth` must be a [`FlatIndex`] built over the identical dataset
/// (same ids). Recall@k = |approx top-k ∩ exact top-k| / k, averaged over
/// queries. `params` is the knob under test (nprobe/ef sweep points); the
/// ground truth is always searched exactly.
pub fn recall_at_k(
    index: &dyn VectorIndex,
    ground_truth: &FlatIndex,
    queries: &[Vec<f32>],
    k: usize,
    params: &SearchParams,
) -> Result<f64> {
    if queries.is_empty() {
        return Err(FsError::Index("recall needs at least one query".into()));
    }
    if index.len() != ground_truth.len() {
        return Err(FsError::Index(format!(
            "index ({}) and ground truth ({}) sizes differ",
            index.len(),
            ground_truth.len()
        )));
    }
    let exact = SearchParams::default();
    let mut hit = 0usize;
    let mut total = 0usize;
    for q in queries {
        let truth = VectorIndex::search(ground_truth, q, k, &exact)?;
        let approx = index.search(q, k, params)?;
        let approx_ids: Vec<usize> = approx.iter().map(|h| h.0).collect();
        hit += truth
            .iter()
            .filter(|(id, _)| approx_ids.contains(id))
            .count();
        total += truth.len();
    }
    Ok(hit as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnsw::{HnswConfig, HnswIndex};
    use crate::ivf::{IvfConfig, IvfIndex};
    use fstore_common::{Rng, Xoshiro256};

    fn random_data(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Xoshiro256::seeded(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
            .collect()
    }

    #[test]
    fn flat_recall_is_one() {
        let data = random_data(500, 8, 1);
        let flat = FlatIndex::build(data.clone()).unwrap();
        let probe = FlatIndex::build(data).unwrap();
        let queries = random_data(10, 8, 2);
        let r = recall_at_k(&probe, &flat, &queries, 10, &SearchParams::default()).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ivf_recall_is_partial_but_positive() {
        let data = random_data(1_000, 8, 3);
        let flat = FlatIndex::build(data.clone()).unwrap();
        let ivf = IvfIndex::build(
            data,
            IvfConfig {
                nlist: 32,
                nprobe: 2,
                ..IvfConfig::default()
            },
        )
        .unwrap();
        let queries = random_data(20, 8, 4);
        let r = recall_at_k(&ivf, &flat, &queries, 10, &SearchParams::default()).unwrap();
        assert!(r > 0.2 && r <= 1.0, "recall {r}");
    }

    #[test]
    fn params_sweep_recall_without_concrete_types() {
        // The redesign's point: one generic call site sweeps both families.
        let data = random_data(1_000, 8, 7);
        let flat = FlatIndex::build(data.clone()).unwrap();
        let ivf = IvfIndex::build(data.clone(), IvfConfig::default()).unwrap();
        let hnsw = HnswIndex::build(data, HnswConfig::default()).unwrap();
        let queries = random_data(15, 8, 8);
        let cases: Vec<(&dyn VectorIndex, SearchParams)> = vec![
            (&ivf, SearchParams::with_nprobe(1)),
            (&ivf, SearchParams::exact()),
            (&hnsw, SearchParams::with_ef(8)),
            (&hnsw, SearchParams::exact()),
        ];
        let recalls: Vec<f64> = cases
            .iter()
            .map(|(idx, p)| recall_at_k(*idx, &flat, &queries, 10, p).unwrap())
            .collect();
        // Exhaustive params are exact on every family.
        assert!((recalls[1] - 1.0).abs() < 1e-12, "ivf exact {}", recalls[1]);
        assert!(
            (recalls[3] - 1.0).abs() < 1e-12,
            "hnsw exact {}",
            recalls[3]
        );
        assert!(recalls[0] <= recalls[1]);
        assert!(recalls[2] <= recalls[3]);
    }

    #[test]
    fn validation() {
        let data = random_data(10, 4, 5);
        let flat = FlatIndex::build(data.clone()).unwrap();
        let small = FlatIndex::build(data[..5].to_vec()).unwrap();
        let p = SearchParams::default();
        assert!(recall_at_k(&small, &flat, &random_data(2, 4, 6), 3, &p).is_err());
        assert!(recall_at_k(&flat, &flat, &[], 3, &p).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            /// Flat search always returns exactly min(k, n) ascending hits.
            #[test]
            fn flat_search_sorted_and_sized(n in 1usize..60, k in 1usize..20, seed in 0u64..100) {
                let data = random_data(n, 4, seed);
                let flat = FlatIndex::build(data).unwrap();
                let q = random_data(1, 4, seed + 1).pop().unwrap();
                let hits = flat.search(&q, k).unwrap();
                prop_assert_eq!(hits.len(), k.min(n));
                for w in hits.windows(2) {
                    prop_assert!(w[0].1 <= w[1].1);
                }
            }
        }
    }
}
