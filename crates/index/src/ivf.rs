//! IVF (inverted file) index: a k-means coarse quantizer partitions the
//! dataset into `nlist` cells; a query scans only the `nprobe` nearest
//! cells. The classic recall/latency dial of Faiss/Milvus-style systems.

use crate::flat::FlatIndex;
use crate::kmeans::kmeans;
use crate::{check_query, l2_sq, Hit, SearchParams, VectorIndex};
use fstore_common::{FsError, Result};
use serde::{Deserialize, Serialize};

/// IVF build/search parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IvfConfig {
    /// Number of k-means cells.
    pub nlist: usize,
    /// Cells scanned per query.
    pub nprobe: usize,
    /// k-means iterations at build time.
    pub train_iters: usize,
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig {
            nlist: 64,
            nprobe: 8,
            train_iters: 15,
            seed: 42,
        }
    }
}

/// The inverted-file index.
pub struct IvfIndex {
    dim: usize,
    config: IvfConfig,
    centroids: Vec<Vec<f32>>,
    lists: Vec<Vec<usize>>,
    data: Vec<Vec<f32>>,
}

impl IvfIndex {
    pub fn build(data: Vec<Vec<f32>>, config: IvfConfig) -> Result<Self> {
        let dim = data.first().map_or(0, Vec::len);
        if dim == 0 {
            return Err(FsError::Index("IVF needs non-empty vectors".into()));
        }
        if data.iter().any(|v| v.len() != dim) {
            return Err(FsError::Index("ragged vectors".into()));
        }
        if config.nprobe == 0 || config.nlist == 0 {
            return Err(FsError::Index("nlist and nprobe must be positive".into()));
        }
        let nlist = config.nlist.min(data.len());
        let (centroids, assignment) = kmeans(&data, nlist, config.train_iters, config.seed)?;
        let mut lists = vec![Vec::new(); nlist];
        for (id, &cell) in assignment.iter().enumerate() {
            lists[cell].push(id);
        }
        Ok(IvfIndex {
            dim,
            config,
            centroids,
            lists,
            data,
        })
    }

    /// Two-argument form kept one release for source compatibility; new
    /// code should call [`VectorIndex::search`] with [`SearchParams`].
    pub fn search(&self, query: &[f32], k: usize) -> Result<Vec<Hit>> {
        VectorIndex::search(self, query, k, &SearchParams::default())
    }

    /// Explicit-probe form kept one release for source compatibility; new
    /// code should pass [`SearchParams::with_nprobe`] to
    /// [`VectorIndex::search`].
    pub fn search_with_probes(&self, query: &[f32], k: usize, nprobe: usize) -> Result<Vec<Hit>> {
        VectorIndex::search(self, query, k, &SearchParams::with_nprobe(nprobe))
    }

    fn search_probes(&self, query: &[f32], k: usize, nprobe: usize) -> Result<Vec<Hit>> {
        check_query(self.dim, self.len(), query, k)?;
        if nprobe == 0 {
            return Err(FsError::Index("nprobe must be positive".into()));
        }
        // rank cells by centroid distance
        let mut cells: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(c, cent)| (c, l2_sq(cent, query)))
            .collect();
        cells.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut candidates = Vec::new();
        for &(cell, _) in cells.iter().take(nprobe.min(cells.len())) {
            candidates.extend_from_slice(&self.lists[cell]);
        }
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        Ok(FlatIndex::top_k(&self.data, Some(&candidates), query, k))
    }

    /// Fraction of the dataset a probe setting scans on average (cost model).
    pub fn expected_scan_fraction(&self, nprobe: usize) -> f64 {
        let probed = nprobe.min(self.lists.len()) as f64;
        probed / self.lists.len() as f64
    }

    pub fn nlist(&self) -> usize {
        self.lists.len()
    }
}

impl VectorIndex for IvfIndex {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn vector(&self, id: usize) -> Option<&[f32]> {
        self.data.get(id).map(Vec::as_slice)
    }

    fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Result<Vec<Hit>> {
        if params.exhaustive {
            check_query(self.dim, self.len(), query, k)?;
            return Ok(FlatIndex::top_k(&self.data, None, query, k));
        }
        self.search_probes(query, k, params.nprobe.unwrap_or(self.config.nprobe))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::{Rng, Xoshiro256};

    fn random_data(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Xoshiro256::seeded(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
            .collect()
    }

    #[test]
    fn build_validation() {
        assert!(IvfIndex::build(vec![], IvfConfig::default()).is_err());
        let data = random_data(10, 4, 1);
        assert!(IvfIndex::build(
            data.clone(),
            IvfConfig {
                nprobe: 0,
                ..IvfConfig::default()
            }
        )
        .is_err());
        // nlist larger than n is clamped
        let idx = IvfIndex::build(
            data,
            IvfConfig {
                nlist: 100,
                ..IvfConfig::default()
            },
        )
        .unwrap();
        assert!(idx.nlist() <= 10);
    }

    #[test]
    fn full_probe_equals_flat() {
        let data = random_data(300, 8, 2);
        let flat = FlatIndex::build(data.clone()).unwrap();
        let ivf = IvfIndex::build(
            data.clone(),
            IvfConfig {
                nlist: 16,
                ..IvfConfig::default()
            },
        )
        .unwrap();
        let mut rng = Xoshiro256::seeded(3);
        for _ in 0..20 {
            let q: Vec<f32> = (0..8).map(|_| rng.normal() as f32).collect();
            let exact = flat.search(&q, 5).unwrap();
            let probed = ivf.search_with_probes(&q, 5, 16).unwrap();
            assert_eq!(
                exact.iter().map(|h| h.0).collect::<Vec<_>>(),
                probed.iter().map(|h| h.0).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn recall_improves_with_probes() {
        let data = random_data(2_000, 16, 4);
        let flat = FlatIndex::build(data.clone()).unwrap();
        let ivf = IvfIndex::build(
            data.clone(),
            IvfConfig {
                nlist: 64,
                ..IvfConfig::default()
            },
        )
        .unwrap();
        let mut rng = Xoshiro256::seeded(5);
        let queries: Vec<Vec<f32>> = (0..30)
            .map(|_| (0..16).map(|_| rng.normal() as f32).collect())
            .collect();
        let recall = |nprobe: usize| {
            let mut hit = 0;
            let mut total = 0;
            for q in &queries {
                let truth: Vec<usize> = flat.search(q, 10).unwrap().iter().map(|h| h.0).collect();
                let got: Vec<usize> = ivf
                    .search_with_probes(q, 10, nprobe)
                    .unwrap()
                    .iter()
                    .map(|h| h.0)
                    .collect();
                hit += truth.iter().filter(|t| got.contains(t)).count();
                total += truth.len();
            }
            hit as f64 / total as f64
        };
        let r1 = recall(1);
        let r8 = recall(8);
        let r64 = recall(64);
        assert!(
            r1 < r8 && r8 <= r64,
            "recall must rise with probes: {r1} {r8} {r64}"
        );
        assert!((r64 - 1.0).abs() < 1e-9, "full probe is exact");
    }

    #[test]
    fn scan_fraction_model() {
        let data = random_data(100, 4, 6);
        let ivf = IvfIndex::build(
            data,
            IvfConfig {
                nlist: 10,
                ..IvfConfig::default()
            },
        )
        .unwrap();
        assert!((ivf.expected_scan_fraction(1) - 0.1).abs() < 1e-9);
        assert!((ivf.expected_scan_fraction(100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probe_zero_rejected() {
        let data = random_data(20, 4, 7);
        let ivf = IvfIndex::build(data, IvfConfig::default()).unwrap();
        assert!(ivf.search_with_probes(&[0.0; 4], 3, 0).is_err());
    }
}
