//! HNSW — hierarchical navigable small world graph (Malkov & Yashunin),
//! the graph-index family of the E9 sweep. Greedy descent through sparse
//! upper layers, beam (`ef`) search in the base layer.

use crate::flat::FlatIndex;
use crate::{check_query, l2_sq, Hit, SearchParams, VectorIndex};
use fstore_common::{FsError, Result, Rng, Xoshiro256};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// HNSW build/search parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Max neighbours per node in upper layers (base layer gets 2·M).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Default beam width during search.
    pub ef_search: usize,
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 32,
            seed: 77,
        }
    }
}

/// One node's adjacency per layer.
struct Node {
    /// neighbors[l] = neighbor ids at layer l (l <= level)
    neighbors: Vec<Vec<u32>>,
}

/// The HNSW graph index.
pub struct HnswIndex {
    dim: usize,
    config: HnswConfig,
    data: Vec<Vec<f32>>,
    nodes: Vec<Node>,
    entry: usize,
    max_level: usize,
}

/// Min-heap by distance (via reversed Ord on a max-heap).
struct Candidate(f32, u32);
impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap pops the smallest distance first
        other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
    }
}

/// Max-heap by distance for bounded result sets.
struct Farthest(f32, u32);
impl PartialEq for Farthest {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for Farthest {}
impl PartialOrd for Farthest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Farthest {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

impl HnswIndex {
    pub fn build(data: Vec<Vec<f32>>, config: HnswConfig) -> Result<Self> {
        let dim = data.first().map_or(0, Vec::len);
        if dim == 0 {
            return Err(FsError::Index("HNSW needs non-empty vectors".into()));
        }
        if data.iter().any(|v| v.len() != dim) {
            return Err(FsError::Index("ragged vectors".into()));
        }
        if config.m < 2 || config.ef_construction == 0 || config.ef_search == 0 {
            return Err(FsError::Index(
                "HNSW params must be positive (m >= 2)".into(),
            ));
        }
        let mut index = HnswIndex {
            dim,
            config,
            data: Vec::with_capacity(data.len()),
            nodes: Vec::with_capacity(data.len()),
            entry: 0,
            max_level: 0,
        };
        let mut rng = Xoshiro256::seeded(config.seed);
        let ml = 1.0 / (config.m as f64).ln();
        for v in data {
            let level = (-(rng.next_f64().max(1e-12)).ln() * ml) as usize;
            index.insert(v, level);
        }
        Ok(index)
    }

    fn insert(&mut self, vector: Vec<f32>, level: usize) {
        let id = self.data.len() as u32;
        self.data.push(vector);
        self.nodes.push(Node {
            neighbors: vec![Vec::new(); level + 1],
        });
        if id == 0 {
            self.entry = 0;
            self.max_level = level;
            return;
        }
        let query = self.data[id as usize].clone();

        // phase 1: greedy descent through layers above `level`
        let mut ep = self.entry as u32;
        for l in ((level + 1)..=self.max_level).rev() {
            ep = self.greedy_closest(&query, ep, l);
        }

        // phase 2: beam search + connect at each layer from min(level, max) down
        for l in (0..=level.min(self.max_level)).rev() {
            let found = self.search_layer(&query, ep, l, self.config.ef_construction);
            let max_links = if l == 0 {
                self.config.m * 2
            } else {
                self.config.m
            };
            let candidates: Vec<(u32, f32)> =
                found.iter().map(|&(node, d)| (node as u32, d)).collect();
            let selected = self.select_neighbors(&candidates, max_links);
            for &n in &selected {
                self.nodes[id as usize].neighbors[l].push(n);
                self.nodes[n as usize].neighbors[l].push(id);
                // prune the neighbor if it now has too many links
                if self.nodes[n as usize].neighbors[l].len() > max_links {
                    self.prune(n, l, max_links);
                }
            }
            if let Some(&(best, _)) = found.first() {
                ep = best as u32;
            }
        }

        if level > self.max_level {
            self.max_level = level;
            self.entry = id as usize;
        }
    }

    /// Heuristic neighbor selection (Malkov & Yashunin, Alg. 4): walk the
    /// candidates in distance order and keep one only if it is closer to
    /// the base point than to every already-kept neighbor. This preserves
    /// links in *diverse directions* (including long-range inter-cluster
    /// edges) instead of letting one tight cluster monopolize the budget —
    /// without it, clustered data fragments the graph into islands and
    /// recall plateaus. Pruned candidates backfill any remaining slots.
    fn select_neighbors(&self, candidates: &[(u32, f32)], max_links: usize) -> Vec<u32> {
        let mut selected: Vec<(u32, f32)> = Vec::with_capacity(max_links);
        let mut pruned: Vec<u32> = Vec::new();
        for &(cand, d_base) in candidates {
            if selected.len() >= max_links {
                break;
            }
            let diverse = selected
                .iter()
                .all(|&(s, _)| l2_sq(&self.data[cand as usize], &self.data[s as usize]) > d_base);
            if diverse {
                selected.push((cand, d_base));
            } else {
                pruned.push(cand);
            }
        }
        let mut out: Vec<u32> = selected.into_iter().map(|(n, _)| n).collect();
        for n in pruned {
            if out.len() >= max_links {
                break;
            }
            out.push(n);
        }
        out
    }

    /// Re-select the neighbors of an overfull `node` at layer `l` with the
    /// same diversity heuristic.
    fn prune(&mut self, node: u32, l: usize, max_links: usize) {
        let v = self.data[node as usize].clone();
        let mut nbrs = std::mem::take(&mut self.nodes[node as usize].neighbors[l]);
        nbrs.sort_unstable();
        nbrs.dedup();
        let mut cands: Vec<(u32, f32)> = nbrs
            .into_iter()
            .map(|n| (n, l2_sq(&self.data[n as usize], &v)))
            .collect();
        cands.sort_by(|a, b| a.1.total_cmp(&b.1));
        self.nodes[node as usize].neighbors[l] = self.select_neighbors(&cands, max_links);
    }

    /// Greedy walk to the locally closest node at layer `l`.
    fn greedy_closest(&self, query: &[f32], start: u32, l: usize) -> u32 {
        let mut current = start;
        let mut current_d = l2_sq(&self.data[current as usize], query);
        loop {
            let mut improved = false;
            for &n in &self.nodes[current as usize].neighbors[l] {
                let d = l2_sq(&self.data[n as usize], query);
                if d < current_d {
                    current = n;
                    current_d = d;
                    improved = true;
                }
            }
            if !improved {
                return current;
            }
        }
    }

    /// Beam search at layer `l`; returns up to `ef` hits ascending.
    fn search_layer(&self, query: &[f32], entry: u32, l: usize, ef: usize) -> Vec<Hit> {
        let mut visited = vec![false; self.data.len()];
        let mut candidates = BinaryHeap::new(); // min by distance
        let mut results: BinaryHeap<Farthest> = BinaryHeap::new(); // max by distance
        let d0 = l2_sq(&self.data[entry as usize], query);
        visited[entry as usize] = true;
        candidates.push(Candidate(d0, entry));
        results.push(Farthest(d0, entry));

        while let Some(Candidate(d, node)) = candidates.pop() {
            let worst = results.peek().map_or(f32::INFINITY, |f| f.0);
            if d > worst && results.len() >= ef {
                break;
            }
            for &n in &self.nodes[node as usize].neighbors[l] {
                if visited[n as usize] {
                    continue;
                }
                visited[n as usize] = true;
                let dn = l2_sq(&self.data[n as usize], query);
                let worst = results.peek().map_or(f32::INFINITY, |f| f.0);
                if results.len() < ef || dn < worst {
                    candidates.push(Candidate(dn, n));
                    results.push(Farthest(dn, n));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut hits: Vec<Hit> = results
            .into_iter()
            .map(|Farthest(d, n)| (n as usize, d))
            .collect();
        hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        hits
    }

    /// Two-argument form kept one release for source compatibility; new
    /// code should call [`VectorIndex::search`] with [`SearchParams`].
    pub fn search(&self, query: &[f32], k: usize) -> Result<Vec<Hit>> {
        VectorIndex::search(self, query, k, &SearchParams::default())
    }

    /// Explicit-beam form kept one release for source compatibility; new
    /// code should pass [`SearchParams::with_ef`] to [`VectorIndex::search`].
    pub fn search_with_ef(&self, query: &[f32], k: usize, ef: usize) -> Result<Vec<Hit>> {
        VectorIndex::search(self, query, k, &SearchParams::with_ef(ef))
    }

    fn search_beam(&self, query: &[f32], k: usize, ef: usize) -> Result<Vec<Hit>> {
        check_query(self.dim, self.len(), query, k)?;
        if ef == 0 {
            return Err(FsError::Index("ef must be positive".into()));
        }
        let mut ep = self.entry as u32;
        for l in (1..=self.max_level).rev() {
            ep = self.greedy_closest(query, ep, l);
        }
        let mut hits = self.search_layer(query, ep, 0, ef.max(k));
        hits.truncate(k);
        Ok(hits)
    }

    pub fn max_level(&self) -> usize {
        self.max_level
    }
}

impl VectorIndex for HnswIndex {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn vector(&self, id: usize) -> Option<&[f32]> {
        self.data.get(id).map(Vec::as_slice)
    }

    fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Result<Vec<Hit>> {
        if params.exhaustive {
            check_query(self.dim, self.len(), query, k)?;
            return Ok(FlatIndex::top_k(&self.data, None, query, k));
        }
        self.search_beam(query, k, params.ef.unwrap_or(self.config.ef_search))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;

    fn random_data(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Xoshiro256::seeded(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
            .collect()
    }

    #[test]
    fn build_validation() {
        assert!(HnswIndex::build(vec![], HnswConfig::default()).is_err());
        let d = random_data(5, 4, 1);
        assert!(HnswIndex::build(
            d.clone(),
            HnswConfig {
                m: 1,
                ..HnswConfig::default()
            }
        )
        .is_err());
        assert!(HnswIndex::build(
            d,
            HnswConfig {
                ef_search: 0,
                ..HnswConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn exact_on_tiny_data() {
        let data: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let idx = HnswIndex::build(data, HnswConfig::default()).unwrap();
        let hits = idx.search(&[7.2], 3).unwrap();
        assert_eq!(hits[0].0, 7);
        assert_eq!(hits[1].0, 8);
        assert_eq!(hits[2].0, 6);
    }

    #[test]
    fn high_recall_on_random_data() {
        let data = random_data(2_000, 16, 2);
        let flat = FlatIndex::build(data.clone()).unwrap();
        let hnsw = HnswIndex::build(data, HnswConfig::default()).unwrap();
        let mut rng = Xoshiro256::seeded(3);
        let mut hit = 0usize;
        let mut total = 0usize;
        for _ in 0..30 {
            let q: Vec<f32> = (0..16).map(|_| rng.normal() as f32).collect();
            let truth: Vec<usize> = flat.search(&q, 10).unwrap().iter().map(|h| h.0).collect();
            let got: Vec<usize> = hnsw
                .search_with_ef(&q, 10, 64)
                .unwrap()
                .iter()
                .map(|h| h.0)
                .collect();
            hit += truth.iter().filter(|t| got.contains(t)).count();
            total += truth.len();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.9, "HNSW recall@10 {recall}");
    }

    #[test]
    fn recall_improves_with_ef() {
        let data = random_data(1_500, 12, 4);
        let flat = FlatIndex::build(data.clone()).unwrap();
        let hnsw = HnswIndex::build(
            data,
            HnswConfig {
                m: 8,
                ..HnswConfig::default()
            },
        )
        .unwrap();
        let mut rng = Xoshiro256::seeded(5);
        let queries: Vec<Vec<f32>> = (0..25)
            .map(|_| (0..12).map(|_| rng.normal() as f32).collect())
            .collect();
        let recall = |ef: usize| {
            let mut hit = 0;
            let mut total = 0;
            for q in &queries {
                let truth: Vec<usize> = flat.search(q, 10).unwrap().iter().map(|h| h.0).collect();
                let got: Vec<usize> = hnsw
                    .search_with_ef(q, 10, ef)
                    .unwrap()
                    .iter()
                    .map(|h| h.0)
                    .collect();
                hit += truth.iter().filter(|t| got.contains(t)).count();
                total += truth.len();
            }
            hit as f64 / total as f64
        };
        let lo = recall(10);
        let hi = recall(200);
        assert!(hi > lo, "recall must improve with ef: {lo} vs {hi}");
        assert!(hi > 0.95, "high-ef recall {hi}");
    }

    #[test]
    fn deterministic_build() {
        let data = random_data(300, 8, 6);
        let a = HnswIndex::build(data.clone(), HnswConfig::default()).unwrap();
        let b = HnswIndex::build(data, HnswConfig::default()).unwrap();
        let q = vec![0.5f32; 8];
        assert_eq!(a.search(&q, 5).unwrap(), b.search(&q, 5).unwrap());
    }

    #[test]
    fn query_validation() {
        let idx = HnswIndex::build(random_data(50, 4, 7), HnswConfig::default()).unwrap();
        assert!(idx.search(&[1.0], 3).is_err());
        assert!(idx.search(&[0.0; 4], 0).is_err());
        assert!(idx.search_with_ef(&[0.0; 4], 3, 0).is_err());
    }

    #[test]
    fn single_point_index() {
        let idx = HnswIndex::build(vec![vec![1.0, 2.0]], HnswConfig::default()).unwrap();
        let hits = idx.search(&[1.0, 2.0], 5).unwrap();
        assert_eq!(hits, vec![(0, 0.0)]);
    }
}
