//! Multi-threaded stress test for `OnlineStore`: writers hammer `put`
//! while readers spin on `get_many`, asserting two invariants the serving
//! path depends on:
//!
//! 1. **No torn reads** — every entry's value was written together with
//!    its timestamp (we encode the timestamp into the value, so any
//!    mix-and-match of value and `written_at` is detectable).
//! 2. **Monotone freshness** — for a key written by a single producer
//!    with increasing timestamps, successive reads never observe time
//!    moving backwards.

use fstore_common::{EntityKey, Timestamp, Value};
use fstore_storage::OnlineStore;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 4;
const READERS: usize = 4;
const ENTITIES: usize = 8;
const FEATURES: [&str; 4] = ["f0", "f1", "f2", "f3"];
const ROUNDS: i64 = 400;

#[test]
fn concurrent_writers_and_readers_see_consistent_monotone_entries() {
    let store = Arc::new(OnlineStore::new(16));
    let done = Arc::new(AtomicBool::new(false));

    // Each (entity, feature) pair belongs to exactly one writer, so its
    // timestamps are written in strictly increasing order.
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for round in 1..=ROUNDS {
                    let ts = round;
                    for e in (0..ENTITIES).filter(|e| e % WRITERS == w) {
                        let key = EntityKey::new(format!("u{e}"));
                        for f in FEATURES {
                            // Value encodes the timestamp: a torn read
                            // (value from one put, written_at from
                            // another) is immediately visible.
                            store.put("user", &key, f, Value::Int(ts), Timestamp::millis(ts));
                        }
                    }
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last_seen = vec![[0i64; FEATURES.len()]; ENTITIES];
                let mut observations = 0u64;
                let mut spin = 0usize;
                while !done.load(Ordering::Acquire) || spin < 3 {
                    if done.load(Ordering::Acquire) {
                        spin += 1; // a few passes over the final state
                    }
                    for e in 0..ENTITIES {
                        let key = EntityKey::new(format!("u{}", (e + r) % ENTITIES));
                        let id = (e + r) % ENTITIES;
                        let entries = store.get_many("user", &key, &FEATURES);
                        for (fi, entry) in entries.iter().enumerate() {
                            let Some(entry) = entry else { continue };
                            let ts = entry.written_at.as_millis();
                            // Invariant 1: value and timestamp came from
                            // the same put.
                            assert_eq!(
                                entry.value,
                                Value::Int(ts),
                                "torn read on u{id}/{}",
                                FEATURES[fi]
                            );
                            // Invariant 2: freshness never regresses.
                            assert!(
                                ts >= last_seen[id][fi],
                                "time went backwards on u{id}/{}: {} after {}",
                                FEATURES[fi],
                                ts,
                                last_seen[id][fi]
                            );
                            last_seen[id][fi] = ts;
                            observations += 1;
                        }
                    }
                }
                observations
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let mut total_observations = 0;
    for r in readers {
        total_observations += r.join().unwrap();
    }
    assert!(total_observations > 0, "readers overlapped with writers");

    // After the dust settles every key holds the final round.
    for e in 0..ENTITIES {
        let key = EntityKey::new(format!("u{e}"));
        for entry in store.get_many("user", &key, &FEATURES) {
            let entry = entry.expect("all keys written");
            assert_eq!(entry.written_at, Timestamp::millis(ROUNDS));
            assert_eq!(entry.value, Value::Int(ROUNDS));
        }
    }
    assert_eq!(store.len(), ENTITIES * FEATURES.len());
}
