//! Immutable columnar segments with zone maps.
//!
//! A segment is the unit of storage inside a partition: a batch of rows laid
//! out column-wise, sealed with per-column min/max/null statistics (the zone
//! map) that scans use to skip whole segments without touching data.

use crate::column::Column;
use crate::predicate::Predicate;
use fstore_common::{FsError, Result, Schema, Value};

/// Per-column min/max (by [`Value::total_cmp`], ignoring nulls) + null count.
#[derive(Debug, Clone)]
pub struct ZoneMap {
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub null_count: usize,
}

/// An immutable, sealed batch of rows. Fields are crate-visible so the
/// on-disk segment format (`crate::disk`) can persist columns and zone maps
/// and reconstruct a sealed segment without replaying rows.
#[derive(Debug, Clone)]
pub struct Segment {
    pub(crate) schema: Schema,
    pub(crate) columns: Vec<Column>,
    pub(crate) zone_maps: Vec<ZoneMap>,
    pub(crate) rows: usize,
}

impl Segment {
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    pub fn zone_map(&self, idx: usize) -> &ZoneMap {
        &self.zone_maps[idx]
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Can this segment possibly contain a row matching all `predicates`?
    /// Unknown predicate columns are ignored (conservative).
    pub fn may_match(&self, predicates: &[Predicate]) -> bool {
        predicates
            .iter()
            .all(|p| match self.schema.index_of(&p.column) {
                Some(i) => {
                    let zm = &self.zone_maps[i];
                    p.may_match_range(zm.min.as_ref(), zm.max.as_ref())
                }
                None => true,
            })
    }

    /// Indices of rows matching all predicates (row-level evaluation).
    pub fn matching_rows(&self, predicates: &[Predicate]) -> Vec<usize> {
        let bound: Vec<(usize, &Predicate)> = predicates
            .iter()
            .filter_map(|p| self.schema.index_of(&p.column).map(|i| (i, p)))
            .collect();
        // Predicates naming unknown columns match nothing (they were already
        // validated at the store level; this is defense in depth).
        if bound.len() != predicates.len() {
            return Vec::new();
        }
        (0..self.rows)
            .filter(|&r| {
                bound
                    .iter()
                    .all(|(ci, p)| p.matches(&self.columns[*ci].get(r)))
            })
            .collect()
    }
}

/// Accumulates rows and seals them into a [`Segment`].
///
/// `Clone` exists for the offline store's copy-on-write publication: a
/// snapshot may share the open builder with the writer, which then clones it
/// before mutating (cost bounded by the table's `segment_rows`).
#[derive(Debug, Clone)]
pub struct SegmentBuilder {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl SegmentBuilder {
    pub fn new(schema: Schema) -> Self {
        let columns = schema.fields().iter().map(|f| Column::new(f.ty)).collect();
        SegmentBuilder {
            schema,
            columns,
            rows: 0,
        }
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Read back row `i` from the (still open) builder — lets scans see
    /// not-yet-sealed rows without forcing a flush.
    pub fn peek_row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Append a schema-checked row. On error the builder is unchanged.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        self.schema.check_row(row)?;
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push(v).expect("schema check guarantees pushes succeed");
        }
        self.rows += 1;
        Ok(())
    }

    /// Seal into an immutable segment, computing zone maps.
    pub fn finish(self) -> Result<Segment> {
        if self.rows == 0 {
            return Err(FsError::Storage("refusing to seal an empty segment".into()));
        }
        let zone_maps = self
            .columns
            .iter()
            .map(|col| {
                let mut min: Option<Value> = None;
                let mut max: Option<Value> = None;
                for i in 0..col.len() {
                    let v = col.get(i);
                    if v.is_null() {
                        continue;
                    }
                    match &min {
                        Some(m) if v.total_cmp(m) != std::cmp::Ordering::Less => {}
                        _ => min = Some(v.clone()),
                    }
                    match &max {
                        Some(m) if v.total_cmp(m) != std::cmp::Ordering::Greater => {}
                        _ => max = Some(v),
                    }
                }
                ZoneMap {
                    min,
                    max,
                    null_count: col.null_count(),
                }
            })
            .collect();
        Ok(Segment {
            schema: self.schema,
            columns: self.columns,
            zone_maps,
            rows: self.rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use fstore_common::ValueType;

    fn schema() -> Schema {
        Schema::of(&[
            ("id", ValueType::Int),
            ("fare", ValueType::Float),
            ("city", ValueType::Str),
        ])
    }

    fn sample_segment() -> Segment {
        let mut b = SegmentBuilder::new(schema());
        b.push_row(&[Value::Int(1), Value::Float(10.0), Value::from("sf")])
            .unwrap();
        b.push_row(&[Value::Int(2), Value::Null, Value::from("nyc")])
            .unwrap();
        b.push_row(&[Value::Int(3), Value::Float(30.0), Value::from("sf")])
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builder_round_trip() {
        let s = sample_segment();
        assert_eq!(s.num_rows(), 3);
        assert_eq!(
            s.row(1),
            vec![Value::Int(2), Value::Null, Value::from("nyc")]
        );
    }

    #[test]
    fn rejects_bad_rows_atomically() {
        let mut b = SegmentBuilder::new(schema());
        assert!(b.push_row(&[Value::Int(1)]).is_err());
        assert!(b
            .push_row(&[Value::from("x"), Value::Null, Value::Null])
            .is_err());
        assert_eq!(b.num_rows(), 0);
    }

    #[test]
    fn empty_segment_rejected() {
        assert!(SegmentBuilder::new(schema()).finish().is_err());
    }

    #[test]
    fn zone_maps_computed() {
        let s = sample_segment();
        let zm_id = s.zone_map(0);
        assert_eq!(zm_id.min, Some(Value::Int(1)));
        assert_eq!(zm_id.max, Some(Value::Int(3)));
        assert_eq!(zm_id.null_count, 0);
        let zm_fare = s.zone_map(1);
        assert_eq!(zm_fare.min, Some(Value::Float(10.0)));
        assert_eq!(zm_fare.max, Some(Value::Float(30.0)));
        assert_eq!(zm_fare.null_count, 1);
        let zm_city = s.zone_map(2);
        assert_eq!(zm_city.min, Some(Value::from("nyc")));
        assert_eq!(zm_city.max, Some(Value::from("sf")));
    }

    #[test]
    fn may_match_prunes_out_of_range() {
        let s = sample_segment();
        assert!(!s.may_match(&[Predicate::new("id", CmpOp::Gt, 100i64)]));
        assert!(s.may_match(&[Predicate::new("id", CmpOp::Gt, 2i64)]));
        // unknown column: conservative
        assert!(s.may_match(&[Predicate::new("ghost", CmpOp::Eq, 1i64)]));
    }

    #[test]
    fn matching_rows_applies_all_predicates() {
        let s = sample_segment();
        let rows = s.matching_rows(&[
            Predicate::new("city", CmpOp::Eq, "sf"),
            Predicate::new("fare", CmpOp::Ge, 20.0),
        ]);
        assert_eq!(rows, vec![2]);
        // null fare row never matches numeric predicate
        let rows = s.matching_rows(&[Predicate::new("fare", CmpOp::Le, 1e9)]);
        assert_eq!(rows, vec![0, 2]);
    }

    #[test]
    fn matching_rows_unknown_column_matches_nothing() {
        let s = sample_segment();
        assert!(s
            .matching_rows(&[Predicate::new("ghost", CmpOp::Eq, 1i64)])
            .is_empty());
    }

    #[test]
    fn all_null_column_zone_map() {
        let schema = Schema::of(&[("x", ValueType::Int)]);
        let mut b = SegmentBuilder::new(schema);
        b.push_row(&[Value::Null]).unwrap();
        let s = b.finish().unwrap();
        assert_eq!(s.zone_map(0).min, None);
        assert_eq!(s.zone_map(0).max, None);
        assert_eq!(s.zone_map(0).null_count, 1);
        // pruning on an all-null column: no bounds → conservative true,
        // but row-level match is false.
        let p = Predicate::new("x", CmpOp::Eq, 1i64);
        assert!(s.may_match(std::slice::from_ref(&p)));
        assert!(s.matching_rows(&[p]).is_empty());
    }
}
