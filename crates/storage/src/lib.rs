//! # fstore-storage
//!
//! The dual datastore at the heart of a feature store (paper §2.2.2):
//!
//! * an **offline store** — an embedded columnar warehouse with date
//!   partitioning, per-segment zone maps and predicate pushdown, used for
//!   training-set construction and batch feature computation; and
//! * an **online store** — a sharded in-memory key-value store with per-write
//!   freshness timestamps and TTL expiry, used to serve features to deployed
//!   models at point-lookup latency.
//!
//! The two stores deliberately expose different access grains (scans vs.
//! lookups); experiment **E1** measures the latency contrast that motivates
//! keeping both.

pub mod column;
pub mod db;
pub mod disk;
pub mod offline;
pub mod online;
pub mod predicate;
pub mod segment;
pub mod snapshot;

pub use column::{Column, NullBitmap};
pub use db::OfflineDb;
pub use offline::{OfflineStore, ScanRequest, ScanResult, ScanStats, TableConfig};
pub use online::{OnlineEntry, OnlineStore, OnlineStoreStats};
pub use predicate::{CmpOp, Predicate};
pub use segment::{Segment, SegmentBuilder, ZoneMap};
