//! The offline store: an embedded, date-partitioned columnar warehouse.
//!
//! Tables declare an optional *time column*; appends route rows to the
//! partition of that column's date, and scans prune partitions by date
//! range, prune segments by zone map, and filter rows by predicate — the
//! standard warehouse access path a feature store materializes features
//! from (paper §2.2.1–2.2.2). `as_of` scans (time ≤ t) are the primitive
//! point-in-time joins are built on.

use crate::predicate::{CmpOp, Predicate};
use crate::segment::{Segment, SegmentBuilder};
use fstore_common::{Date, FsError, Result, Schema, Timestamp, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default number of rows per sealed segment.
pub const DEFAULT_SEGMENT_ROWS: usize = 4096;

/// Configuration supplied when creating a table.
#[derive(Debug, Clone)]
pub struct TableConfig {
    pub schema: Schema,
    /// Column (must be `Timestamp`-typed) used for partition routing and
    /// `as_of` filtering. Tables without one live in a single partition.
    pub time_column: Option<String>,
    /// Rows per segment before the open segment is sealed.
    pub segment_rows: usize,
}

impl TableConfig {
    pub fn new(schema: Schema) -> Self {
        TableConfig {
            schema,
            time_column: None,
            segment_rows: DEFAULT_SEGMENT_ROWS,
        }
    }

    pub fn with_time_column(mut self, col: impl Into<String>) -> Self {
        self.time_column = Some(col.into());
        self
    }

    pub fn with_segment_rows(mut self, rows: usize) -> Self {
        self.segment_rows = rows.max(1);
        self
    }
}

/// Sealed segments are shared (`Arc`) between the writer's working copy and
/// every published snapshot; cloning a partition is O(#segments) pointer
/// bumps plus — only when a snapshot still references the open builder — one
/// copy-on-write clone of the open rows (bounded by `segment_rows`).
#[derive(Debug, Default, Clone)]
pub(crate) struct Partition {
    pub(crate) sealed: Vec<Arc<Segment>>,
    pub(crate) open: Option<Arc<SegmentBuilder>>,
}

#[derive(Debug, Clone)]
pub(crate) struct Table {
    pub(crate) config: TableConfig,
    pub(crate) time_idx: Option<usize>,
    pub(crate) partitions: BTreeMap<Date, Partition>,
    pub(crate) rows: usize,
}

/// A scan specification. All filters are optional; an empty request is a
/// full-table scan.
#[derive(Debug, Clone, Default)]
pub struct ScanRequest {
    /// Inclusive partition date range.
    pub date_range: Option<(Date, Date)>,
    /// Only rows whose time column is `<= as_of` (requires a time column).
    pub as_of: Option<Timestamp>,
    /// Conjunctive column predicates.
    pub predicates: Vec<Predicate>,
    /// Columns to return, in order (`None` = all).
    pub projection: Option<Vec<String>>,
}

impl ScanRequest {
    pub fn all() -> Self {
        ScanRequest::default()
    }

    pub fn with_dates(mut self, from: Date, to: Date) -> Self {
        self.date_range = Some((from, to));
        self
    }

    pub fn as_of(mut self, t: Timestamp) -> Self {
        self.as_of = Some(t);
        self
    }

    pub fn filter(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    pub fn project(mut self, cols: &[&str]) -> Self {
        self.projection = Some(cols.iter().map(|s| s.to_string()).collect());
        self
    }
}

/// Pruning/matching counters exposed so tests and benches can assert the
/// access path, not just the answer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    pub partitions_total: usize,
    pub partitions_scanned: usize,
    pub segments_total: usize,
    pub segments_scanned: usize,
    pub rows_scanned: usize,
    pub rows_matched: usize,
}

/// Scan output: projected schema, materialized rows, and access-path stats.
#[derive(Debug, Clone)]
pub struct ScanResult {
    pub schema: Schema,
    pub rows: Vec<Vec<Value>>,
    pub stats: ScanStats,
}

/// Reclaim a builder from its `Arc` for sealing: moves it out when the writer
/// holds the only reference, clones otherwise (a snapshot is still reading it).
fn take_builder(b: Arc<SegmentBuilder>) -> SegmentBuilder {
    Arc::try_unwrap(b).unwrap_or_else(|shared| (*shared).clone())
}

/// The embedded offline warehouse: a catalog of partitioned columnar tables.
///
/// Internally every table is behind an `Arc` and sealed segments are shared,
/// so `Clone` is cheap (O(#tables) pointer bumps) — that is what makes
/// copy-on-write snapshot publication through [`crate::OfflineDb`] viable.
/// Mutation goes through [`Arc::make_mut`], so a writer never disturbs rows a
/// published snapshot already references.
#[derive(Debug, Default, Clone)]
pub struct OfflineStore {
    pub(crate) tables: BTreeMap<String, Arc<Table>>,
}

impl OfflineStore {
    pub fn new() -> Self {
        OfflineStore::default()
    }

    /// Create a table; validates the time column exists and is Timestamp-typed.
    pub fn create_table(&mut self, name: impl Into<String>, config: TableConfig) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(FsError::already_exists("table", name));
        }
        let time_idx = match &config.time_column {
            Some(col) => {
                let idx = config
                    .schema
                    .index_of(col)
                    .ok_or_else(|| FsError::not_found("time column", col.clone()))?;
                let f = &config.schema.fields()[idx];
                if f.ty != fstore_common::ValueType::Timestamp {
                    return Err(FsError::type_mismatch(
                        "Timestamp",
                        f.ty.to_string(),
                        format!("time column `{col}`"),
                    ));
                }
                Some(idx)
            }
            None => None,
        };
        self.tables.insert(
            name,
            Arc::new(Table {
                config,
                time_idx,
                partitions: BTreeMap::new(),
                rows: 0,
            }),
        );
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| FsError::not_found("table", name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    pub fn schema(&self, table: &str) -> Result<&Schema> {
        Ok(&self.table(table)?.config.schema)
    }

    pub fn num_rows(&self, table: &str) -> Result<usize> {
        Ok(self.table(table)?.rows)
    }

    pub fn partition_dates(&self, table: &str) -> Result<Vec<Date>> {
        Ok(self.table(table)?.partitions.keys().copied().collect())
    }

    /// The table's configured time column, if any.
    pub fn time_column(&self, table: &str) -> Result<Option<String>> {
        Ok(self.table(table)?.config.time_column.clone())
    }

    /// The table's configured rows-per-segment threshold.
    pub fn segment_rows(&self, table: &str) -> Result<usize> {
        Ok(self.table(table)?.config.segment_rows)
    }

    fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .map(|t| t.as_ref())
            .ok_or_else(|| FsError::not_found("table", name.to_string()))
    }

    /// Copy-on-write access to a table: if a published snapshot still shares
    /// this table's `Arc`, `make_mut` clones it first so the snapshot is
    /// never disturbed.
    fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .map(Arc::make_mut)
            .ok_or_else(|| FsError::not_found("table", name.to_string()))
    }

    /// Append one row; routes to the partition of the time column's date.
    pub fn append(&mut self, table: &str, row: &[Value]) -> Result<()> {
        let t = self.table_mut(table)?;
        t.config.schema.check_row(row)?;
        let date = match t.time_idx {
            Some(i) => match &row[i] {
                Value::Timestamp(ts) => ts.date(),
                Value::Null => {
                    return Err(FsError::Storage(format!(
                        "null time column in append to `{table}`"
                    )))
                }
                _ => unreachable!("schema check enforces Timestamp type"),
            },
            None => Date::from_days(0),
        };
        let schema = t.config.schema.clone();
        let seg_rows = t.config.segment_rows;
        let part = t.partitions.entry(date).or_default();
        // Copy-on-write: if a snapshot still shares the open builder, clone
        // it (cost bounded by `segment_rows`) before mutating.
        let builder = Arc::make_mut(
            part.open
                .get_or_insert_with(|| Arc::new(SegmentBuilder::new(schema))),
        );
        builder.push_row(row)?;
        if builder.num_rows() >= seg_rows {
            let sealed = take_builder(part.open.take().unwrap()).finish()?;
            part.sealed.push(Arc::new(sealed));
        }
        t.rows += 1;
        Ok(())
    }

    /// Append many rows (stops at the first error).
    pub fn append_all(&mut self, table: &str, rows: &[Vec<Value>]) -> Result<()> {
        for r in rows {
            self.append(table, r)?;
        }
        Ok(())
    }

    /// Seal every open segment in the table (scans already see open rows;
    /// flushing just makes zone maps available for them too).
    pub fn flush(&mut self, table: &str) -> Result<()> {
        let t = self.table_mut(table)?;
        for part in t.partitions.values_mut() {
            if let Some(b) = part.open.take() {
                if b.is_empty() {
                    continue;
                }
                part.sealed.push(Arc::new(take_builder(b).finish()?));
            }
        }
        Ok(())
    }

    /// Run a scan. Validates predicate/projection columns up front, then
    /// prunes partitions by date, segments by zone map, rows by predicate.
    pub fn scan(&self, table: &str, req: &ScanRequest) -> Result<ScanResult> {
        let t = self.table(table)?;
        let schema = &t.config.schema;

        for p in &req.predicates {
            if schema.index_of(&p.column).is_none() {
                return Err(FsError::Plan(format!(
                    "predicate references unknown column `{}` in `{table}`",
                    p.column
                )));
            }
        }
        if req.as_of.is_some() && t.time_idx.is_none() {
            return Err(FsError::Plan(format!(
                "as_of scan on `{table}` which has no time column"
            )));
        }

        // Fold as_of into the predicate set and the date range.
        let mut predicates = req.predicates.clone();
        let mut date_hi: Option<Date> = req.date_range.map(|(_, hi)| hi);
        if let Some(as_of) = req.as_of {
            let col = t.config.time_column.clone().unwrap();
            predicates.push(Predicate::new(col, CmpOp::Le, Value::Timestamp(as_of)));
            let cap = as_of.date();
            date_hi = Some(date_hi.map_or(cap, |h| h.min(cap)));
        }
        let date_lo = req.date_range.map(|(lo, _)| lo);

        let out_schema = match &req.projection {
            Some(cols) => {
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                schema.project(&refs)?
            }
            None => schema.clone(),
        };
        let proj_idx: Vec<usize> = match &req.projection {
            Some(cols) => cols.iter().map(|c| schema.index_of(c).unwrap()).collect(),
            None => (0..schema.len()).collect(),
        };

        let mut stats = ScanStats {
            partitions_total: t.partitions.len(),
            segments_total: t
                .partitions
                .values()
                .map(|p| p.sealed.len() + usize::from(p.open.is_some()))
                .sum(),
            ..Default::default()
        };
        let mut rows = Vec::new();

        for (&date, part) in &t.partitions {
            if date_lo.is_some_and(|lo| date < lo) || date_hi.is_some_and(|hi| date > hi) {
                continue;
            }
            stats.partitions_scanned += 1;
            for seg in &part.sealed {
                if !seg.may_match(&predicates) {
                    continue;
                }
                stats.segments_scanned += 1;
                stats.rows_scanned += seg.num_rows();
                for r in seg.matching_rows(&predicates) {
                    stats.rows_matched += 1;
                    rows.push(proj_idx.iter().map(|&c| seg.column(c).get(r)).collect());
                }
            }
            if let Some(open) = &part.open {
                stats.segments_scanned += 1;
                stats.rows_scanned += open.num_rows();
                for r in 0..open.num_rows() {
                    let row = open.peek_row(r);
                    let ok = predicates
                        .iter()
                        .all(|p| p.matches(&row[schema.index_of(&p.column).unwrap()]));
                    if ok {
                        stats.rows_matched += 1;
                        rows.push(proj_idx.iter().map(|&c| row[c].clone()).collect());
                    }
                }
            }
        }
        Ok(ScanResult {
            schema: out_schema,
            rows,
            stats,
        })
    }

    /// Convenience: all values of one column (post-filter), for profilers.
    pub fn column_values(
        &self,
        table: &str,
        column: &str,
        req: &ScanRequest,
    ) -> Result<Vec<Value>> {
        let mut req = req.clone();
        req.projection = Some(vec![column.to_string()]);
        Ok(self
            .scan(table, &req)?
            .rows
            .into_iter()
            .map(|mut r| r.pop().unwrap())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::{Duration, ValueType};

    fn trip_schema() -> Schema {
        Schema::of(&[
            ("trip_id", ValueType::Int),
            ("ts", ValueType::Timestamp),
            ("fare", ValueType::Float),
        ])
    }

    fn store_with_days(days: i32, per_day: usize) -> OfflineStore {
        let mut s = OfflineStore::new();
        s.create_table(
            "trips",
            TableConfig::new(trip_schema())
                .with_time_column("ts")
                .with_segment_rows(8),
        )
        .unwrap();
        let mut id = 0i64;
        for d in 0..days {
            let base = Date::from_days(d).start();
            for i in 0..per_day {
                let ts = base + Duration::minutes(i as i64);
                s.append(
                    "trips",
                    &[
                        Value::Int(id),
                        Value::Timestamp(ts),
                        Value::Float(id as f64),
                    ],
                )
                .unwrap();
                id += 1;
            }
        }
        s
    }

    #[test]
    fn create_validates_time_column() {
        let mut s = OfflineStore::new();
        assert!(s
            .create_table(
                "t",
                TableConfig::new(trip_schema()).with_time_column("ghost")
            )
            .is_err());
        assert!(s
            .create_table(
                "t",
                TableConfig::new(trip_schema()).with_time_column("fare")
            )
            .is_err());
        s.create_table("t", TableConfig::new(trip_schema()).with_time_column("ts"))
            .unwrap();
        assert!(
            s.create_table("t", TableConfig::new(trip_schema()))
                .is_err(),
            "duplicate"
        );
    }

    #[test]
    fn append_partitions_by_date() {
        let s = store_with_days(3, 10);
        assert_eq!(s.num_rows("trips").unwrap(), 30);
        assert_eq!(
            s.partition_dates("trips").unwrap(),
            vec![Date::from_days(0), Date::from_days(1), Date::from_days(2)]
        );
    }

    #[test]
    fn append_rejects_null_time() {
        let mut s = store_with_days(1, 1);
        let err = s
            .append("trips", &[Value::Int(9), Value::Null, Value::Float(0.0)])
            .unwrap_err();
        assert!(err.to_string().contains("null time column"));
    }

    #[test]
    fn full_scan_sees_open_and_sealed_segments() {
        let s = store_with_days(1, 10); // segment_rows=8 → 1 sealed + 1 open
        let res = s.scan("trips", &ScanRequest::all()).unwrap();
        assert_eq!(res.rows.len(), 10);
        assert_eq!(res.stats.segments_total, 2);
    }

    #[test]
    fn date_range_prunes_partitions() {
        let s = store_with_days(5, 4);
        let req = ScanRequest::all().with_dates(Date::from_days(1), Date::from_days(2));
        let res = s.scan("trips", &req).unwrap();
        assert_eq!(res.rows.len(), 8);
        assert_eq!(res.stats.partitions_scanned, 2);
        assert_eq!(res.stats.partitions_total, 5);
    }

    #[test]
    fn as_of_filters_rows_and_caps_dates() {
        let s = store_with_days(5, 4);
        // as_of = end of day 1's 2nd minute
        let as_of = Date::from_days(1).start() + Duration::minutes(1);
        let res = s.scan("trips", &ScanRequest::all().as_of(as_of)).unwrap();
        // day 0: all 4 rows; day 1: minutes 0 and 1 → 2 rows
        assert_eq!(res.rows.len(), 6);
        assert!(
            res.stats.partitions_scanned <= 2,
            "future partitions must be pruned"
        );
        for row in &res.rows {
            assert!(row[1].as_timestamp().unwrap() <= as_of);
        }
    }

    #[test]
    fn as_of_requires_time_column() {
        let mut s = OfflineStore::new();
        s.create_table(
            "plain",
            TableConfig::new(Schema::of(&[("x", ValueType::Int)])),
        )
        .unwrap();
        let err = s
            .scan("plain", &ScanRequest::all().as_of(Timestamp::EPOCH))
            .unwrap_err();
        assert!(err.to_string().contains("no time column"));
    }

    #[test]
    fn predicates_filter_and_zone_maps_prune() {
        let mut s = store_with_days(2, 16); // 2 sealed segments/day, ids ordered
        s.flush("trips").unwrap();
        let req = ScanRequest::all().filter(Predicate::new("trip_id", CmpOp::Ge, 24i64));
        let res = s.scan("trips", &req).unwrap();
        assert_eq!(res.rows.len(), 8);
        assert!(
            res.stats.segments_scanned < res.stats.segments_total,
            "zone maps should prune segments: {:?}",
            res.stats
        );
    }

    #[test]
    fn unknown_predicate_column_is_a_plan_error() {
        let s = store_with_days(1, 2);
        let err = s.scan(
            "trips",
            &ScanRequest::all().filter(Predicate::new("ghost", CmpOp::Eq, 1i64)),
        );
        assert!(err.is_err());
    }

    #[test]
    fn projection_orders_columns() {
        let s = store_with_days(1, 2);
        let res = s
            .scan("trips", &ScanRequest::all().project(&["fare", "trip_id"]))
            .unwrap();
        assert_eq!(res.schema.fields()[0].name, "fare");
        assert_eq!(res.rows[0], vec![Value::Float(0.0), Value::Int(0)]);
        assert!(s
            .scan("trips", &ScanRequest::all().project(&["ghost"]))
            .is_err());
    }

    #[test]
    fn column_values_helper() {
        let s = store_with_days(1, 3);
        let vals = s
            .column_values("trips", "fare", &ScanRequest::all())
            .unwrap();
        assert_eq!(
            vals,
            vec![Value::Float(0.0), Value::Float(1.0), Value::Float(2.0)]
        );
    }

    #[test]
    fn flush_then_scan_unchanged() {
        let mut s = store_with_days(2, 10);
        let before = s.scan("trips", &ScanRequest::all()).unwrap().rows;
        s.flush("trips").unwrap();
        let after = s.scan("trips", &ScanRequest::all()).unwrap().rows;
        assert_eq!(before, after);
    }

    #[test]
    fn drop_table() {
        let mut s = store_with_days(1, 1);
        s.drop_table("trips").unwrap();
        assert!(!s.has_table("trips"));
        assert!(s.drop_table("trips").is_err());
    }
}
