//! Typed column vectors with word-packed null bitmaps — the physical layout
//! of offline-store segments.

use fstore_common::{FsError, Result, Timestamp, Value, ValueType};

/// A packed validity bitmap (1 = present, 0 = null), 64 rows per word.
/// Fields are crate-visible so the on-disk segment format (`crate::disk`)
/// can persist and reconstruct the words directly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NullBitmap {
    pub(crate) words: Vec<u64>,
    pub(crate) len: usize,
    pub(crate) null_count: usize,
}

impl NullBitmap {
    pub fn new() -> Self {
        NullBitmap::default()
    }

    pub fn push(&mut self, valid: bool) {
        let (word, bit) = (self.len / 64, self.len % 64);
        if word == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1 << bit;
        } else {
            self.null_count += 1;
        }
        self.len += 1;
    }

    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn null_count(&self) -> usize {
        self.null_count
    }
}

/// A typed column. Null slots hold a default in the data vector and a zero
/// bit in the bitmap, so dense numeric scans never branch on an enum.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    Int {
        data: Vec<i64>,
        nulls: NullBitmap,
    },
    Float {
        data: Vec<f64>,
        nulls: NullBitmap,
    },
    Bool {
        data: Vec<bool>,
        nulls: NullBitmap,
    },
    Str {
        data: Vec<String>,
        nulls: NullBitmap,
    },
    Timestamp {
        data: Vec<i64>,
        nulls: NullBitmap,
    },
}

impl Column {
    pub fn new(ty: ValueType) -> Self {
        match ty {
            ValueType::Int => Column::Int {
                data: Vec::new(),
                nulls: NullBitmap::new(),
            },
            ValueType::Float => Column::Float {
                data: Vec::new(),
                nulls: NullBitmap::new(),
            },
            ValueType::Bool => Column::Bool {
                data: Vec::new(),
                nulls: NullBitmap::new(),
            },
            ValueType::Str => Column::Str {
                data: Vec::new(),
                nulls: NullBitmap::new(),
            },
            ValueType::Timestamp => Column::Timestamp {
                data: Vec::new(),
                nulls: NullBitmap::new(),
            },
        }
    }

    pub fn value_type(&self) -> ValueType {
        match self {
            Column::Int { .. } => ValueType::Int,
            Column::Float { .. } => ValueType::Float,
            Column::Bool { .. } => ValueType::Bool,
            Column::Str { .. } => ValueType::Str,
            Column::Timestamp { .. } => ValueType::Timestamp,
        }
    }

    pub fn len(&self) -> usize {
        self.nulls().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn null_count(&self) -> usize {
        self.nulls().null_count()
    }

    fn nulls(&self) -> &NullBitmap {
        match self {
            Column::Int { nulls, .. }
            | Column::Float { nulls, .. }
            | Column::Bool { nulls, .. }
            | Column::Str { nulls, .. }
            | Column::Timestamp { nulls, .. } => nulls,
        }
    }

    /// Append a value; `Null` is accepted by every column, `Int` widens into
    /// `Float` columns (mirroring [`Value::fits`]).
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (self, v) {
            (Column::Int { data, nulls }, Value::Int(i)) => {
                data.push(*i);
                nulls.push(true);
            }
            (Column::Float { data, nulls }, Value::Float(f)) => {
                data.push(*f);
                nulls.push(true);
            }
            (Column::Float { data, nulls }, Value::Int(i)) => {
                data.push(*i as f64);
                nulls.push(true);
            }
            (Column::Bool { data, nulls }, Value::Bool(b)) => {
                data.push(*b);
                nulls.push(true);
            }
            (Column::Str { data, nulls }, Value::Str(s)) => {
                data.push(s.clone());
                nulls.push(true);
            }
            (Column::Timestamp { data, nulls }, Value::Timestamp(t)) => {
                data.push(t.as_millis());
                nulls.push(true);
            }
            (col, Value::Null) => match col {
                Column::Int { data, nulls } => {
                    data.push(0);
                    nulls.push(false);
                }
                Column::Float { data, nulls } => {
                    data.push(0.0);
                    nulls.push(false);
                }
                Column::Bool { data, nulls } => {
                    data.push(false);
                    nulls.push(false);
                }
                Column::Str { data, nulls } => {
                    data.push(String::new());
                    nulls.push(false);
                }
                Column::Timestamp { data, nulls } => {
                    data.push(0);
                    nulls.push(false);
                }
            },
            (col, v) => {
                return Err(FsError::type_mismatch(
                    col.value_type().to_string(),
                    v.value_type().map(|t| t.to_string()).unwrap_or_default(),
                    "Column::push",
                ))
            }
        }
        Ok(())
    }

    /// Read row `i` back as a [`Value`].
    pub fn get(&self, i: usize) -> Value {
        if !self.nulls().is_valid(i) {
            return Value::Null;
        }
        match self {
            Column::Int { data, .. } => Value::Int(data[i]),
            Column::Float { data, .. } => Value::Float(data[i]),
            Column::Bool { data, .. } => Value::Bool(data[i]),
            Column::Str { data, .. } => Value::Str(data[i].clone()),
            Column::Timestamp { data, .. } => Value::Timestamp(Timestamp::millis(data[i])),
        }
    }

    /// Non-null numeric view of the column (Int/Float/Bool/Timestamp → f64),
    /// used by the profiler and drift monitors.
    pub fn numeric_values(&self) -> Vec<f64> {
        let nulls = self.nulls();
        let mut out = Vec::with_capacity(self.len() - self.null_count());
        match self {
            Column::Int { data, .. } => {
                for (i, &x) in data.iter().enumerate() {
                    if nulls.is_valid(i) {
                        out.push(x as f64);
                    }
                }
            }
            Column::Float { data, .. } => {
                for (i, &x) in data.iter().enumerate() {
                    if nulls.is_valid(i) {
                        out.push(x);
                    }
                }
            }
            Column::Bool { data, .. } => {
                for (i, &x) in data.iter().enumerate() {
                    if nulls.is_valid(i) {
                        out.push(if x { 1.0 } else { 0.0 });
                    }
                }
            }
            Column::Timestamp { data, .. } => {
                for (i, &x) in data.iter().enumerate() {
                    if nulls.is_valid(i) {
                        out.push(x as f64);
                    }
                }
            }
            Column::Str { .. } => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_packs_and_counts() {
        let mut b = NullBitmap::new();
        for i in 0..130 {
            b.push(i % 3 != 0);
        }
        assert_eq!(b.len(), 130);
        assert_eq!(b.null_count(), 44);
        assert!(!b.is_valid(0));
        assert!(b.is_valid(1));
        assert!(!b.is_valid(129));
        assert!(b.is_valid(128));
    }

    #[test]
    fn push_get_round_trip_all_types() {
        let cases = vec![
            (ValueType::Int, Value::Int(-7)),
            (ValueType::Float, Value::Float(2.5)),
            (ValueType::Bool, Value::Bool(true)),
            (ValueType::Str, Value::from("hey")),
            (
                ValueType::Timestamp,
                Value::Timestamp(Timestamp::millis(99)),
            ),
        ];
        for (ty, v) in cases {
            let mut c = Column::new(ty);
            c.push(&v).unwrap();
            c.push(&Value::Null).unwrap();
            assert_eq!(c.get(0), v, "{ty}");
            assert_eq!(c.get(1), Value::Null);
            assert_eq!(c.len(), 2);
            assert_eq!(c.null_count(), 1);
        }
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut c = Column::new(ValueType::Float);
        c.push(&Value::Int(3)).unwrap();
        assert_eq!(c.get(0), Value::Float(3.0));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut c = Column::new(ValueType::Int);
        let err = c.push(&Value::from("x")).unwrap_err();
        assert!(err.to_string().contains("Int"));
        assert_eq!(c.len(), 0, "failed push must not grow the column");
    }

    #[test]
    fn numeric_values_skip_nulls() {
        let mut c = Column::new(ValueType::Int);
        for v in [Value::Int(1), Value::Null, Value::Int(3)] {
            c.push(&v).unwrap();
        }
        assert_eq!(c.numeric_values(), vec![1.0, 3.0]);
    }

    #[test]
    fn numeric_values_empty_for_strings() {
        let mut c = Column::new(ValueType::Str);
        c.push(&Value::from("a")).unwrap();
        assert!(c.numeric_values().is_empty());
    }
}
