//! `OfflineDb`: the shared, epoch-versioned handle to the offline store.
//!
//! Splits the offline warehouse into the two roles the concurrency model
//! needs (DESIGN.md "Concurrency model"):
//!
//! * **readers** resolve one immutable snapshot `Arc` up front
//!   ([`OfflineDb::snapshot`] / [`OfflineDb::read`]) and then scan, join, and
//!   profile entirely lock-free — a concurrent publication never blocks them
//!   and never mutates the rows they are looking at;
//! * **writers** run inside [`OfflineDb::write`], which serializes them on a
//!   narrow mutex, applies the mutation to a private working copy, and
//!   publishes the result as the next snapshot (bumping the [`ReadEpoch`])
//!   only if it succeeded.
//!
//! Because [`OfflineStore`] shares its tables and sealed segments via `Arc`
//! internally, the publish step is O(#tables) pointer bumps — not a data
//! copy.

use crate::offline::OfflineStore;
use fstore_common::{ReadEpoch, Result, SnapshotCell, Versioned};
use parking_lot::Mutex;
use std::sync::Arc;

struct Inner {
    /// The writer's working copy. Mutations happen here first; the mutex
    /// serializes writers and is never held by readers.
    writer: Mutex<OfflineStore>,
    /// The published snapshot readers resolve from.
    cell: SnapshotCell<OfflineStore>,
}

/// Cheaply clonable shared handle to an epoch-versioned offline store.
#[derive(Clone)]
pub struct OfflineDb {
    inner: Arc<Inner>,
}

impl OfflineDb {
    /// An empty store at [`ReadEpoch::ZERO`].
    pub fn new() -> Self {
        OfflineDb::from_store(OfflineStore::new())
    }

    /// Adopt an existing store (e.g. one rebuilt from a durability snapshot)
    /// as epoch zero.
    pub fn from_store(store: OfflineStore) -> Self {
        OfflineDb {
            inner: Arc::new(Inner {
                cell: SnapshotCell::new(store.clone()),
                writer: Mutex::new(store),
            }),
        }
    }

    /// Resolve the current snapshot. Lock-free after one brief `Arc` clone;
    /// hold it for as long as the read needs a consistent view.
    pub fn snapshot(&self) -> Arc<OfflineStore> {
        self.inner.cell.load()
    }

    /// Resolve the current snapshot together with its publication epoch.
    pub fn read(&self) -> Versioned<OfflineStore> {
        self.inner.cell.read()
    }

    /// The epoch of the most recent publication.
    pub fn epoch(&self) -> ReadEpoch {
        self.inner.cell.epoch()
    }

    /// Run a mutation and publish the result as the next snapshot.
    ///
    /// The closure gets exclusive access to the writer's working copy; on
    /// `Ok` the copy is published (epoch bumps by one), on `Err` the working
    /// copy is rolled back to the last published snapshot so failed mutations
    /// are all-or-nothing and never leak into later publications.
    pub fn write<R>(&self, f: impl FnOnce(&mut OfflineStore) -> Result<R>) -> Result<R> {
        let mut store = self.inner.writer.lock();
        match f(&mut store) {
            Ok(out) => {
                self.inner.cell.publish(store.clone());
                Ok(out)
            }
            Err(e) => {
                *store = (*self.inner.cell.load()).clone();
                Err(e)
            }
        }
    }

    /// Observe every publication (replication taps in here; see
    /// [`fstore_common::snapshot::PublishHook`]). Replaces existing hooks.
    pub fn set_publish_hook(
        &self,
        hook: impl Fn(&Versioned<OfflineStore>) + Send + Sync + 'static,
    ) {
        self.inner.cell.set_publish_hook(hook);
    }

    /// Observe every publication *alongside* existing observers — lets
    /// replication and durability both tap the same publish path.
    pub fn add_publish_hook(
        &self,
        hook: impl Fn(&Versioned<OfflineStore>) + Send + Sync + 'static,
    ) {
        self.inner.cell.add_publish_hook(hook);
    }

    /// How many recent publications the handle retains for
    /// [`at_epoch`](Self::at_epoch) (default
    /// [`fstore_common::snapshot::DEFAULT_HISTORY_DEPTH`]).
    pub fn set_history_depth(&self, depth: usize) {
        self.inner.cell.set_history_depth(depth);
    }

    /// Recent publications, oldest to newest — lets a skew monitor diff the
    /// epoch a trainer saw against the one serving sees.
    pub fn history(&self) -> Vec<Versioned<OfflineStore>> {
        self.inner.cell.history()
    }

    /// The snapshot published at exactly `epoch`, if still retained.
    pub fn at_epoch(&self, epoch: ReadEpoch) -> Option<Versioned<OfflineStore>> {
        self.inner.cell.at_epoch(epoch)
    }

    /// Replication: run a mutation and publish the result at the explicit
    /// (leader-dictated) `epoch` instead of minting the next local one, so a
    /// follower's responses echo exactly the leader's epochs. On `Err` the
    /// working copy rolls back and nothing is published.
    pub fn apply_replica<R>(
        &self,
        epoch: ReadEpoch,
        f: impl FnOnce(&mut OfflineStore) -> Result<R>,
    ) -> Result<R> {
        let mut store = self.inner.writer.lock();
        match f(&mut store) {
            Ok(out) => {
                self.inner.cell.restore(store.clone(), epoch);
                Ok(out)
            }
            Err(e) => {
                *store = (*self.inner.cell.load()).clone();
                Err(e)
            }
        }
    }

    /// Replication: adopt `store` wholesale as the snapshot at `epoch`
    /// (follower bootstrap / full-snapshot fallback).
    pub fn restore(&self, store: OfflineStore, epoch: ReadEpoch) {
        let mut writer = self.inner.writer.lock();
        *writer = store.clone();
        self.inner.cell.restore(store, epoch);
    }
}

impl Default for OfflineDb {
    fn default() -> Self {
        OfflineDb::new()
    }
}

impl std::fmt::Debug for OfflineDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OfflineDb")
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{ScanRequest, TableConfig};
    use fstore_common::{FsError, Schema, Value, ValueType};
    use std::thread;

    fn int_table() -> TableConfig {
        TableConfig::new(Schema::of(&[("x", ValueType::Int)])).with_segment_rows(4)
    }

    #[test]
    fn writes_publish_new_epochs_and_readers_keep_old_snapshots() {
        let db = OfflineDb::new();
        assert_eq!(db.epoch(), ReadEpoch::ZERO);

        db.write(|s| s.create_table("t", int_table())).unwrap();
        assert_eq!(db.epoch(), ReadEpoch(1));

        let before = db.snapshot();
        db.write(|s| s.append("t", &[Value::Int(1)])).unwrap();
        assert_eq!(db.epoch(), ReadEpoch(2));

        // The pre-append snapshot is frozen; the new one sees the row.
        assert_eq!(before.num_rows("t").unwrap(), 0);
        assert_eq!(db.snapshot().num_rows("t").unwrap(), 1);
    }

    #[test]
    fn failed_write_publishes_nothing_and_rolls_back() {
        let db = OfflineDb::new();
        db.write(|s| s.create_table("t", int_table())).unwrap();
        let epoch = db.epoch();

        let err = db.write(|s| {
            s.append("t", &[Value::Int(7)])?; // partial mutation...
            Err::<(), _>(FsError::Storage("abort".into()))
        });
        assert!(err.is_err());
        assert_eq!(db.epoch(), epoch, "failed write must not bump the epoch");
        assert_eq!(db.snapshot().num_rows("t").unwrap(), 0);

        // The working copy was rolled back too: the next successful write
        // does not resurrect the aborted row.
        db.write(|s| s.append("t", &[Value::Int(8)])).unwrap();
        let vals = db
            .snapshot()
            .column_values("t", "x", &ScanRequest::all())
            .unwrap();
        assert_eq!(vals, vec![Value::Int(8)]);
    }

    #[test]
    fn replica_apply_installs_at_leader_epochs() {
        let db = OfflineDb::new();
        db.apply_replica(ReadEpoch(5), |s| s.create_table("t", int_table()))
            .unwrap();
        assert_eq!(db.epoch(), ReadEpoch(5));
        // Idempotent re-apply at the same epoch (at-least-once delivery).
        db.apply_replica(ReadEpoch(5), |s| {
            if !s.table_names().contains(&"t") {
                s.create_table("t", int_table())?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(db.epoch(), ReadEpoch(5));
        db.apply_replica(ReadEpoch(7), |s| s.append("t", &[Value::Int(1)]))
            .unwrap();
        assert_eq!(db.epoch(), ReadEpoch(7));
        assert_eq!(db.snapshot().num_rows("t").unwrap(), 1);

        // Full-state restore (bootstrap fallback) replaces everything.
        let other = OfflineDb::new();
        other.write(|s| s.create_table("u", int_table())).unwrap();
        db.restore((*other.snapshot()).clone(), ReadEpoch(9));
        assert_eq!(db.epoch(), ReadEpoch(9));
        assert!(db.snapshot().num_rows("t").is_err());
        assert_eq!(db.snapshot().num_rows("u").unwrap(), 0);
    }

    #[test]
    fn snapshot_isolation_under_concurrent_appends() {
        let db = OfflineDb::new();
        db.write(|s| s.create_table("t", int_table())).unwrap();

        let writer = {
            let db = db.clone();
            thread::spawn(move || {
                for i in 0..200i64 {
                    db.write(|s| s.append("t", &[Value::Int(i)])).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let db = db.clone();
                thread::spawn(move || {
                    for _ in 0..200 {
                        let v = db.read();
                        let res = v.value.scan("t", &ScanRequest::all()).unwrap();
                        // A snapshot is internally consistent: row count from
                        // the scan matches the store's own counter.
                        assert_eq!(res.rows.len(), v.value.num_rows("t").unwrap());
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(db.snapshot().num_rows("t").unwrap(), 200);
        assert_eq!(db.epoch(), ReadEpoch(201));
    }
}
