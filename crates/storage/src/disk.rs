//! The binary on-disk format for the offline store: columnar segments with
//! zone maps, CRC-guarded.
//!
//! [`OfflineStore::snapshot_json`] (see [`crate::snapshot`]) replays every
//! row through the append path on restore — correct, human-inspectable, and
//! slow, because it re-checks schemas, re-routes partitions, and recomputes
//! zone maps for data that was already validated when it was first written.
//! This module persists the *physical* layout instead: typed column vectors,
//! packed null bitmaps, and the sealed segments' zone maps, so a restore is
//! a straight memcpy-shaped decode plus `Arc` wrapping. The open (unsealed)
//! builder of each partition is the one part replayed through `push_row`,
//! bounded by `segment_rows`.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "FSTB" | version u32 | payload_len u64 | crc32(payload) u32 | payload
//! payload := table_count u32, then per table:
//!   name, schema, time_column?, segment_rows u64, rows u64,
//!   partition_count u32, then per partition:
//!     date_days i32, sealed_count u32, sealed segments..., open rows?
//! segment := rows u64, columns (data + null bitmap), zone maps (min/max/nulls)
//! ```
//!
//! Floats are stored as raw IEEE-754 bits, so round-trips are bit-exact by
//! construction — the property the JSON path needs `float_roundtrip` for.

use crate::column::{Column, NullBitmap};
use crate::offline::{OfflineStore, Partition, Table, TableConfig};
use crate::segment::{Segment, SegmentBuilder, ZoneMap};
use fstore_common::{crc32, Date, FieldDef, FsError, Result, Schema, Timestamp, Value, ValueType};
use std::collections::BTreeMap;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"FSTB";
const FORMAT_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Primitive writers / readers
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over the payload; every failure is a
/// [`FsError::Corruption`] naming the offset.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn corrupt(&self, what: &str) -> FsError {
        FsError::Corruption(format!(
            "segment file truncated reading {what} at byte {}",
            self.pos
        ))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(self.corrupt(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn i64(&mut self, what: &str) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn i32(&mut self, what: &str) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn str(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FsError::Corruption(format!("non-UTF-8 string in {what}")))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Values, schemas
// ---------------------------------------------------------------------------

fn type_tag(ty: ValueType) -> u8 {
    match ty {
        ValueType::Int => 1,
        ValueType::Float => 2,
        ValueType::Bool => 3,
        ValueType::Str => 4,
        ValueType::Timestamp => 5,
    }
}

fn tag_type(tag: u8) -> Result<ValueType> {
    Ok(match tag {
        1 => ValueType::Int,
        2 => ValueType::Float,
        3 => ValueType::Bool,
        4 => ValueType::Str,
        5 => ValueType::Timestamp,
        t => return Err(FsError::Corruption(format!("unknown value-type tag {t}"))),
    })
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Int(i) => {
            put_u8(out, 1);
            put_i64(out, *i);
        }
        Value::Float(f) => {
            put_u8(out, 2);
            put_f64(out, *f);
        }
        Value::Bool(b) => {
            put_u8(out, 3);
            put_u8(out, u8::from(*b));
        }
        Value::Str(s) => {
            put_u8(out, 4);
            put_str(out, s);
        }
        Value::Timestamp(t) => {
            put_u8(out, 5);
            put_i64(out, t.as_millis());
        }
    }
}

fn get_value(c: &mut Cursor<'_>) -> Result<Value> {
    Ok(match c.u8("value tag")? {
        0 => Value::Null,
        1 => Value::Int(c.i64("int value")?),
        2 => Value::Float(c.f64("float value")?),
        3 => Value::Bool(c.u8("bool value")? != 0),
        4 => Value::Str(c.str("string value")?),
        5 => Value::Timestamp(Timestamp::millis(c.i64("timestamp value")?)),
        t => return Err(FsError::Corruption(format!("unknown value tag {t}"))),
    })
}

fn put_opt_value(out: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        None => put_u8(out, 0),
        Some(v) => {
            put_u8(out, 1);
            put_value(out, v);
        }
    }
}

fn get_opt_value(c: &mut Cursor<'_>) -> Result<Option<Value>> {
    Ok(match c.u8("option flag")? {
        0 => None,
        1 => Some(get_value(c)?),
        t => return Err(FsError::Corruption(format!("bad option flag {t}"))),
    })
}

fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_u32(out, schema.len() as u32);
    for f in schema.fields() {
        put_str(out, &f.name);
        put_u8(out, type_tag(f.ty));
        put_u8(out, u8::from(f.nullable));
    }
}

fn get_schema(c: &mut Cursor<'_>) -> Result<Schema> {
    let n = c.u32("field count")? as usize;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = c.str("field name")?;
        let ty = tag_type(c.u8("field type")?)?;
        let nullable = c.u8("field nullable")? != 0;
        fields.push(FieldDef { name, ty, nullable });
    }
    Schema::new(fields)
}

// ---------------------------------------------------------------------------
// Columns, segments
// ---------------------------------------------------------------------------

fn put_bitmap(out: &mut Vec<u8>, b: &NullBitmap) {
    put_u64(out, b.len as u64);
    put_u64(out, b.null_count as u64);
    put_u32(out, b.words.len() as u32);
    for w in &b.words {
        put_u64(out, *w);
    }
}

fn get_bitmap(c: &mut Cursor<'_>) -> Result<NullBitmap> {
    let len = c.u64("bitmap len")? as usize;
    let null_count = c.u64("bitmap null count")? as usize;
    let n_words = c.u32("bitmap word count")? as usize;
    if n_words != len.div_ceil(64) || null_count > len {
        return Err(FsError::Corruption(format!(
            "bitmap claims {len} rows, {null_count} nulls in {n_words} words"
        )));
    }
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(c.u64("bitmap word")?);
    }
    Ok(NullBitmap {
        words,
        len,
        null_count,
    })
}

fn put_column(out: &mut Vec<u8>, col: &Column) {
    put_u8(out, type_tag(col.value_type()));
    match col {
        Column::Int { data, nulls } | Column::Timestamp { data, nulls } => {
            put_bitmap(out, nulls);
            for v in data {
                put_i64(out, *v);
            }
        }
        Column::Float { data, nulls } => {
            put_bitmap(out, nulls);
            for v in data {
                put_f64(out, *v);
            }
        }
        Column::Bool { data, nulls } => {
            put_bitmap(out, nulls);
            for v in data {
                put_u8(out, u8::from(*v));
            }
        }
        Column::Str { data, nulls } => {
            put_bitmap(out, nulls);
            for v in data {
                put_str(out, v);
            }
        }
    }
}

fn get_column(c: &mut Cursor<'_>, rows: usize) -> Result<Column> {
    let ty = tag_type(c.u8("column type")?)?;
    let nulls = get_bitmap(c)?;
    if nulls.len() != rows {
        return Err(FsError::Corruption(format!(
            "column bitmap has {} rows, segment claims {rows}",
            nulls.len()
        )));
    }
    Ok(match ty {
        ValueType::Int | ValueType::Timestamp => {
            let mut data = Vec::with_capacity(rows);
            for _ in 0..rows {
                data.push(c.i64("int cell")?);
            }
            if ty == ValueType::Int {
                Column::Int { data, nulls }
            } else {
                Column::Timestamp { data, nulls }
            }
        }
        ValueType::Float => {
            let mut data = Vec::with_capacity(rows);
            for _ in 0..rows {
                data.push(c.f64("float cell")?);
            }
            Column::Float { data, nulls }
        }
        ValueType::Bool => {
            let mut data = Vec::with_capacity(rows);
            for _ in 0..rows {
                data.push(c.u8("bool cell")? != 0);
            }
            Column::Bool { data, nulls }
        }
        ValueType::Str => {
            let mut data = Vec::with_capacity(rows);
            for _ in 0..rows {
                data.push(c.str("string cell")?);
            }
            Column::Str { data, nulls }
        }
    })
}

fn put_segment(out: &mut Vec<u8>, seg: &Segment) {
    put_u64(out, seg.rows as u64);
    for col in &seg.columns {
        put_column(out, col);
    }
    for zm in &seg.zone_maps {
        put_opt_value(out, &zm.min);
        put_opt_value(out, &zm.max);
        put_u64(out, zm.null_count as u64);
    }
}

fn get_segment(c: &mut Cursor<'_>, schema: &Schema) -> Result<Segment> {
    let rows = c.u64("segment row count")? as usize;
    if rows == 0 {
        return Err(FsError::Corruption("sealed segment with zero rows".into()));
    }
    let mut columns = Vec::with_capacity(schema.len());
    for field in schema.fields() {
        let col = get_column(c, rows)?;
        if col.value_type() != field.ty {
            return Err(FsError::Corruption(format!(
                "column `{}` decoded as {} but schema says {}",
                field.name,
                col.value_type(),
                field.ty
            )));
        }
        columns.push(col);
    }
    let mut zone_maps = Vec::with_capacity(schema.len());
    for _ in 0..schema.len() {
        zone_maps.push(ZoneMap {
            min: get_opt_value(c)?,
            max: get_opt_value(c)?,
            null_count: c.u64("zone map null count")? as usize,
        });
    }
    Ok(Segment {
        schema: schema.clone(),
        columns,
        zone_maps,
        rows,
    })
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

impl OfflineStore {
    /// Serialize the whole store in the binary columnar format.
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u32(&mut payload, self.tables.len() as u32);
        for (name, table) in &self.tables {
            put_str(&mut payload, name);
            put_schema(&mut payload, &table.config.schema);
            match &table.config.time_column {
                None => put_u8(&mut payload, 0),
                Some(col) => {
                    put_u8(&mut payload, 1);
                    put_str(&mut payload, col);
                }
            }
            put_u64(&mut payload, table.config.segment_rows as u64);
            put_u64(&mut payload, table.rows as u64);
            put_u32(&mut payload, table.partitions.len() as u32);
            for (date, part) in &table.partitions {
                put_i32(&mut payload, date.days_since_epoch());
                put_u32(&mut payload, part.sealed.len() as u32);
                for seg in &part.sealed {
                    put_segment(&mut payload, seg);
                }
                match &part.open {
                    None => put_u8(&mut payload, 0),
                    Some(open) => {
                        put_u8(&mut payload, 1);
                        put_u32(&mut payload, open.num_rows() as u32);
                        for r in 0..open.num_rows() {
                            for v in open.peek_row(r) {
                                put_value(&mut payload, &v);
                            }
                        }
                    }
                }
            }
        }

        let mut out = Vec::with_capacity(payload.len() + 20);
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u64(&mut out, payload.len() as u64);
        put_u32(&mut out, crc32(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Rebuild a store from [`Self::encode_binary`] bytes. Sealed segments
    /// are installed directly (columns, bitmaps, and zone maps come off the
    /// disk); only each partition's open builder is replayed through the
    /// validated append path.
    pub fn decode_binary(bytes: &[u8]) -> Result<OfflineStore> {
        if bytes.len() < 20 || &bytes[..4] != MAGIC {
            return Err(FsError::Corruption("bad magic in segment file".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(FsError::Storage(format!(
                "unsupported segment format v{version} (expected v{FORMAT_VERSION})"
            )));
        }
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
        let payload = &bytes[20..];
        if payload.len() != payload_len {
            return Err(FsError::Corruption(format!(
                "segment file payload is {} bytes, header claims {payload_len}",
                payload.len()
            )));
        }
        let got_crc = crc32(payload);
        if got_crc != want_crc {
            return Err(FsError::Corruption(format!(
                "segment file checksum mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"
            )));
        }

        let mut c = Cursor::new(payload);
        let table_count = c.u32("table count")? as usize;
        let mut tables = BTreeMap::new();
        for _ in 0..table_count {
            let name = c.str("table name")?;
            let schema = get_schema(&mut c)?;
            let time_column = match c.u8("time column flag")? {
                0 => None,
                _ => Some(c.str("time column")?),
            };
            let segment_rows = c.u64("segment rows")? as usize;
            let rows = c.u64("table row count")? as usize;

            let mut config = TableConfig::new(schema.clone()).with_segment_rows(segment_rows);
            let time_idx = match &time_column {
                Some(col) => {
                    let idx = schema.index_of(col).ok_or_else(|| {
                        FsError::Corruption(format!(
                            "table `{name}` names time column `{col}` missing from its schema"
                        ))
                    })?;
                    config = config.with_time_column(col.clone());
                    Some(idx)
                }
                None => None,
            };

            let partition_count = c.u32("partition count")? as usize;
            let mut partitions = BTreeMap::new();
            let mut decoded_rows = 0usize;
            for _ in 0..partition_count {
                let date = Date::from_days(c.i32("partition date")?);
                let sealed_count = c.u32("sealed segment count")? as usize;
                let mut part = Partition::default();
                for _ in 0..sealed_count {
                    let seg = get_segment(&mut c, &schema)?;
                    decoded_rows += seg.num_rows();
                    part.sealed.push(Arc::new(seg));
                }
                if c.u8("open builder flag")? != 0 {
                    let open_rows = c.u32("open row count")? as usize;
                    let mut builder = SegmentBuilder::new(schema.clone());
                    for _ in 0..open_rows {
                        let row: Vec<Value> = (0..schema.len())
                            .map(|_| get_value(&mut c))
                            .collect::<Result<_>>()?;
                        builder.push_row(&row)?;
                    }
                    decoded_rows += open_rows;
                    part.open = Some(Arc::new(builder));
                }
                partitions.insert(date, part);
            }
            if decoded_rows != rows {
                return Err(FsError::Corruption(format!(
                    "table `{name}` decoded {decoded_rows} rows, header claims {rows}"
                )));
            }
            tables.insert(
                name,
                Arc::new(Table {
                    config,
                    time_idx,
                    partitions,
                    rows,
                }),
            );
        }
        if !c.done() {
            return Err(FsError::Corruption(format!(
                "{} trailing bytes after the last table",
                payload.len() - c.pos
            )));
        }
        Ok(OfflineStore { tables })
    }

    /// Write the binary encoding to `path` (no atomicity — callers that
    /// need crash safety write a temp file and rename, as the checkpoint
    /// manifest in `fstore-durable` does).
    pub fn save_binary(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.encode_binary())
            .map_err(|e| FsError::Storage(format!("write segment file: {e}")))
    }

    /// Load a store from a [`Self::save_binary`] file.
    pub fn load_binary(path: &std::path::Path) -> Result<OfflineStore> {
        let bytes =
            std::fs::read(path).map_err(|e| FsError::Storage(format!("read segment file: {e}")))?;
        Self::decode_binary(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::ScanRequest;
    use crate::predicate::{CmpOp, Predicate};

    fn sample_store() -> OfflineStore {
        let mut s = OfflineStore::new();
        s.create_table(
            "trips",
            TableConfig::new(Schema::of(&[
                ("user", ValueType::Str),
                ("ts", ValueType::Timestamp),
                ("fare", ValueType::Float),
                ("ok", ValueType::Bool),
            ]))
            .with_time_column("ts")
            .with_segment_rows(4),
        )
        .unwrap();
        for i in 0..11i64 {
            s.append(
                "trips",
                &[
                    Value::from(format!("u{}", i % 3)),
                    Value::Timestamp(Timestamp::millis(i * 3_600_000)),
                    if i == 5 {
                        Value::Null
                    } else {
                        Value::Float(i as f64 + 0.25)
                    },
                    Value::Bool(i % 2 == 0),
                ],
            )
            .unwrap();
        }
        s.create_table(
            "plain",
            TableConfig::new(Schema::of(&[("x", ValueType::Int)])),
        )
        .unwrap();
        s.append("plain", &[Value::Int(7)]).unwrap();
        s.create_table(
            "empty",
            TableConfig::new(Schema::of(&[("y", ValueType::Int)])),
        )
        .unwrap();
        s
    }

    #[test]
    fn binary_round_trip_preserves_everything() {
        let original = sample_store();
        let restored = OfflineStore::decode_binary(&original.encode_binary()).unwrap();

        assert_eq!(restored.table_names(), original.table_names());
        for t in original.table_names() {
            assert_eq!(restored.num_rows(t).unwrap(), original.num_rows(t).unwrap());
            assert_eq!(restored.schema(t).unwrap(), original.schema(t).unwrap());
            assert_eq!(
                restored.partition_dates(t).unwrap(),
                original.partition_dates(t).unwrap()
            );
            assert_eq!(
                restored.time_column(t).unwrap(),
                original.time_column(t).unwrap()
            );
            assert_eq!(
                restored.segment_rows(t).unwrap(),
                original.segment_rows(t).unwrap()
            );
            let a = original.scan(t, &ScanRequest::all()).unwrap();
            let b = restored.scan(t, &ScanRequest::all()).unwrap();
            assert_eq!(a.rows, b.rows, "table {t}");
            // Same physical layout: identical segment/partition counts mean
            // identical pruning behaviour, not just identical answers.
            assert_eq!(a.stats, b.stats, "table {t}");
        }
    }

    #[test]
    fn zone_maps_survive_and_still_prune() {
        let mut s = OfflineStore::new();
        s.create_table(
            "t",
            TableConfig::new(Schema::of(&[("x", ValueType::Int)])).with_segment_rows(8),
        )
        .unwrap();
        for i in 0..32i64 {
            s.append("t", &[Value::Int(i)]).unwrap();
        }
        s.flush("t").unwrap();
        let restored = OfflineStore::decode_binary(&s.encode_binary()).unwrap();
        let req = ScanRequest::all().filter(Predicate::new("x", CmpOp::Ge, 24i64));
        let res = restored.scan("t", &req).unwrap();
        assert_eq!(res.rows.len(), 8);
        assert!(
            res.stats.segments_scanned < res.stats.segments_total,
            "persisted zone maps must keep pruning: {:?}",
            res.stats
        );
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let hostile = 27.912_789_275_389_894_f64;
        let mut s = OfflineStore::new();
        s.create_table(
            "t",
            TableConfig::new(Schema::of(&[("x", ValueType::Float)])),
        )
        .unwrap();
        s.append("t", &[Value::Float(hostile)]).unwrap();
        let restored = OfflineStore::decode_binary(&s.encode_binary()).unwrap();
        let rows = restored.scan("t", &ScanRequest::all()).unwrap().rows;
        assert_eq!(rows[0][0], Value::Float(hostile));
    }

    #[test]
    fn restored_store_accepts_further_appends() {
        let original = sample_store();
        let mut restored = OfflineStore::decode_binary(&original.encode_binary()).unwrap();
        // Partition routing, segment sealing, and schema checks must all
        // still work on reconstructed tables.
        restored
            .append(
                "trips",
                &[
                    Value::from("u9"),
                    Value::Timestamp(Timestamp::millis(99 * 3_600_000)),
                    Value::Float(1.0),
                    Value::Bool(true),
                ],
            )
            .unwrap();
        assert_eq!(restored.num_rows("trips").unwrap(), 12);
        assert!(restored.append("plain", &[Value::from("wrong")]).is_err());
    }

    #[test]
    fn corruption_is_detected() {
        let s = sample_store();
        let good = s.encode_binary();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            OfflineStore::decode_binary(&bad),
            Err(FsError::Corruption(_))
        ));

        // Any single corrupted payload byte fails the CRC.
        let mut bad = good.clone();
        let mid = 20 + (bad.len() - 20) / 2;
        bad[mid] ^= 0x01;
        let err = OfflineStore::decode_binary(&bad).unwrap_err();
        assert!(
            matches!(err, FsError::Corruption(ref m) if m.contains("checksum")),
            "{err}"
        );

        // Truncation fails the length check before any parsing.
        let err = OfflineStore::decode_binary(&good[..good.len() - 3]).unwrap_err();
        assert!(matches!(err, FsError::Corruption(_)), "{err}");

        // Unsupported version is an upgrade error, not corruption.
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            OfflineStore::decode_binary(&bad),
            Err(FsError::Storage(_))
        ));
    }

    #[test]
    fn empty_store_round_trips() {
        let s = OfflineStore::new();
        let restored = OfflineStore::decode_binary(&s.encode_binary()).unwrap();
        assert!(restored.table_names().is_empty());
    }

    #[test]
    fn file_round_trip() {
        let original = sample_store();
        let dir = std::env::temp_dir().join("fstore_disk_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.fstb");
        original.save_binary(&path).unwrap();
        let restored = OfflineStore::load_binary(&path).unwrap();
        assert_eq!(restored.num_rows("trips").unwrap(), 11);
        std::fs::remove_file(&path).ok();
    }
}
