//! The online store: a sharded in-memory feature KV with freshness tracking.
//!
//! Deployed models read feature vectors from here at point-lookup latency
//! (paper §2.2.2, "Online Feature Serving"). Every write records the
//! timestamp it happened at, so the serving layer can enforce staleness
//! policies and the monitors can measure feature freshness (§2.2.3).
//! Shards are guarded by `parking_lot::RwLock`, routed by a fast hash of
//! `(group, entity)`.

use fstore_common::hash::{fx_hash_one, FxHashMap};
use fstore_common::{Duration, EntityKey, Timestamp, Value};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// One stored feature value and the instant it was written.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineEntry {
    pub value: Value,
    pub written_at: Timestamp,
}

impl OnlineEntry {
    /// Age of this entry at `now`.
    pub fn age(&self, now: Timestamp) -> Duration {
        now - self.written_at
    }
}

type EntityRow = FxHashMap<String, OnlineEntry>;
type Shard = FxHashMap<(String, String), EntityRow>;

/// Hit/miss/write counters (monotonic, lock-free).
#[derive(Debug, Default)]
pub struct OnlineStoreStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub writes: AtomicU64,
    pub expired: AtomicU64,
}

impl OnlineStoreStats {
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
            self.expired.load(Ordering::Relaxed),
        )
    }
}

/// The sharded in-memory store. Keys are `(feature group, entity)`; each
/// entity row maps feature name → [`OnlineEntry`].
#[derive(Debug)]
pub struct OnlineStore {
    shards: Vec<RwLock<Shard>>,
    stats: OnlineStoreStats,
}

impl Default for OnlineStore {
    fn default() -> Self {
        OnlineStore::new(16)
    }
}

impl OnlineStore {
    /// `shards` is rounded up to a power of two so routing is a mask.
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        OnlineStore {
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            stats: OnlineStoreStats::default(),
        }
    }

    pub fn stats(&self) -> &OnlineStoreStats {
        &self.stats
    }

    #[inline]
    fn shard_for(&self, group: &str, entity: &EntityKey) -> &RwLock<Shard> {
        let h = fx_hash_one(&(group, entity.as_str()));
        &self.shards[(h as usize) & (self.shards.len() - 1)]
    }

    /// Write one feature value for an entity.
    pub fn put(
        &self,
        group: &str,
        entity: &EntityKey,
        feature: &str,
        value: Value,
        now: Timestamp,
    ) {
        let shard = self.shard_for(group, entity);
        let mut guard = shard.write();
        let row = guard
            .entry((group.to_string(), entity.as_str().to_string()))
            .or_default();
        row.insert(
            feature.to_string(),
            OnlineEntry {
                value,
                written_at: now,
            },
        );
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Write several features of one entity under a single shard lock.
    pub fn put_row(
        &self,
        group: &str,
        entity: &EntityKey,
        values: &[(&str, Value)],
        now: Timestamp,
    ) {
        let shard = self.shard_for(group, entity);
        let mut guard = shard.write();
        let row = guard
            .entry((group.to_string(), entity.as_str().to_string()))
            .or_default();
        for (feature, value) in values {
            row.insert(
                feature.to_string(),
                OnlineEntry {
                    value: value.clone(),
                    written_at: now,
                },
            );
        }
        self.stats
            .writes
            .fetch_add(values.len() as u64, Ordering::Relaxed);
    }

    /// Point lookup of one feature.
    pub fn get(&self, group: &str, entity: &EntityKey, feature: &str) -> Option<OnlineEntry> {
        let shard = self.shard_for(group, entity);
        let guard = shard.read();
        let found = guard
            .get(&(group.to_string(), entity.as_str().to_string()))
            .and_then(|row| row.get(feature))
            .cloned();
        match &found {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Fetch several features of one entity under a single shard lock.
    /// Missing features come back as `None` in the same positions.
    pub fn get_many(
        &self,
        group: &str,
        entity: &EntityKey,
        features: &[&str],
    ) -> Vec<Option<OnlineEntry>> {
        let shard = self.shard_for(group, entity);
        let guard = shard.read();
        let row = guard.get(&(group.to_string(), entity.as_str().to_string()));
        let out: Vec<Option<OnlineEntry>> = features
            .iter()
            .map(|f| row.and_then(|r| r.get(*f)).cloned())
            .collect();
        let hits = out.iter().filter(|e| e.is_some()).count() as u64;
        self.stats.hits.fetch_add(hits, Ordering::Relaxed);
        self.stats
            .misses
            .fetch_add(features.len() as u64 - hits, Ordering::Relaxed);
        out
    }

    /// All feature entries of an entity (for skew monitors and debugging).
    pub fn get_row(&self, group: &str, entity: &EntityKey) -> Option<Vec<(String, OnlineEntry)>> {
        let shard = self.shard_for(group, entity);
        let guard = shard.read();
        guard
            .get(&(group.to_string(), entity.as_str().to_string()))
            .map(|row| {
                let mut v: Vec<(String, OnlineEntry)> =
                    row.iter().map(|(k, e)| (k.clone(), e.clone())).collect();
                v.sort_by(|a, b| a.0.cmp(&b.0));
                v
            })
    }

    /// Delete entries written before `now - ttl`; returns how many were
    /// evicted. Called by the materialization scheduler's housekeeping tick.
    pub fn sweep_expired(&self, now: Timestamp, ttl: Duration) -> usize {
        let cutoff = now - ttl;
        let mut evicted = 0usize;
        for shard in &self.shards {
            let mut guard = shard.write();
            for row in guard.values_mut() {
                let before = row.len();
                row.retain(|_, e| e.written_at >= cutoff);
                evicted += before - row.len();
            }
            guard.retain(|_, row| !row.is_empty());
        }
        self.stats
            .expired
            .fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Total number of stored feature entries (O(entities); for tests/metrics).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(|r| r.len()).sum::<usize>())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Export every stored entry as `(group, entity, feature, entry)`,
    /// sorted, for replication bootstrap snapshots. Each shard is locked
    /// briefly in turn, so concurrent writes may land before or after the
    /// export — replication's delta replay makes that benign (puts are
    /// idempotent overwrites).
    pub fn export_rows(&self) -> Vec<(String, String, String, OnlineEntry)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            for ((group, entity), row) in guard.iter() {
                for (feature, entry) in row.iter() {
                    out.push((
                        group.clone(),
                        entity.clone(),
                        feature.clone(),
                        entry.clone(),
                    ));
                }
            }
        }
        out.sort_by(|a, b| (&a.0, &a.1, &a.2).cmp(&(&b.0, &b.1, &b.2)));
        out
    }

    /// Snapshot of all current values of one feature across entities in a
    /// group — the "live" side of training/serving-skew monitoring.
    pub fn feature_snapshot(&self, group: &str, feature: &str) -> Vec<(EntityKey, OnlineEntry)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            for ((g, entity), row) in guard.iter() {
                if g == group {
                    if let Some(e) = row.get(feature) {
                        out.push((EntityKey::new(entity.clone()), e.clone()));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> EntityKey {
        EntityKey::new(s)
    }

    #[test]
    fn put_get_round_trip() {
        let store = OnlineStore::new(4);
        store.put(
            "user",
            &k("u1"),
            "trips",
            Value::Int(5),
            Timestamp::millis(100),
        );
        let e = store.get("user", &k("u1"), "trips").unwrap();
        assert_eq!(e.value, Value::Int(5));
        assert_eq!(e.written_at, Timestamp::millis(100));
        assert!(store.get("user", &k("u1"), "ghost").is_none());
        assert!(store.get("user", &k("u2"), "trips").is_none());
        assert!(
            store.get("driver", &k("u1"), "trips").is_none(),
            "groups are namespaces"
        );
    }

    #[test]
    fn overwrite_updates_value_and_freshness() {
        let store = OnlineStore::new(1);
        store.put("g", &k("e"), "f", Value::Int(1), Timestamp::millis(10));
        store.put("g", &k("e"), "f", Value::Int(2), Timestamp::millis(20));
        let e = store.get("g", &k("e"), "f").unwrap();
        assert_eq!(e.value, Value::Int(2));
        assert_eq!(e.written_at, Timestamp::millis(20));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn put_row_and_get_many_align() {
        let store = OnlineStore::default();
        store.put_row(
            "g",
            &k("e"),
            &[("a", Value::Int(1)), ("b", Value::Float(2.0))],
            Timestamp::millis(5),
        );
        let got = store.get_many("g", &k("e"), &["b", "ghost", "a"]);
        assert_eq!(got[0].as_ref().unwrap().value, Value::Float(2.0));
        assert!(got[1].is_none());
        assert_eq!(got[2].as_ref().unwrap().value, Value::Int(1));
    }

    #[test]
    fn get_row_sorted() {
        let store = OnlineStore::default();
        store.put_row(
            "g",
            &k("e"),
            &[("z", Value::Int(1)), ("a", Value::Int(2))],
            Timestamp::EPOCH,
        );
        let row = store.get_row("g", &k("e")).unwrap();
        assert_eq!(row[0].0, "a");
        assert_eq!(row[1].0, "z");
        assert!(store.get_row("g", &k("nope")).is_none());
    }

    #[test]
    fn sweep_evicts_only_stale_entries() {
        let store = OnlineStore::new(2);
        store.put("g", &k("old"), "f", Value::Int(1), Timestamp::millis(0));
        store.put("g", &k("new"), "f", Value::Int(2), Timestamp::millis(900));
        let evicted = store.sweep_expired(Timestamp::millis(1000), Duration::millis(500));
        assert_eq!(evicted, 1);
        assert!(store.get("g", &k("old"), "f").is_none());
        assert!(store.get("g", &k("new"), "f").is_some());
        assert_eq!(store.stats().snapshot().3, 1);
    }

    #[test]
    fn entry_age() {
        let e = OnlineEntry {
            value: Value::Int(0),
            written_at: Timestamp::millis(100),
        };
        assert_eq!(e.age(Timestamp::millis(350)), Duration::millis(250));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let store = OnlineStore::default();
        store.put("g", &k("e"), "f", Value::Int(1), Timestamp::EPOCH);
        store.get("g", &k("e"), "f");
        store.get("g", &k("e"), "nope");
        store.get_many("g", &k("e"), &["f", "nope"]);
        let (hits, misses, writes, _) = store.stats().snapshot();
        assert_eq!(hits, 2);
        assert_eq!(misses, 2);
        assert_eq!(writes, 1);
    }

    #[test]
    fn feature_snapshot_filters_group_and_feature() {
        let store = OnlineStore::new(8);
        for i in 0..10 {
            store.put(
                "user",
                &k(&format!("u{i}")),
                "score",
                Value::Int(i),
                Timestamp::EPOCH,
            );
        }
        store.put(
            "driver",
            &k("d1"),
            "score",
            Value::Int(99),
            Timestamp::EPOCH,
        );
        store.put("user", &k("u0"), "other", Value::Int(5), Timestamp::EPOCH);
        let snap = store.feature_snapshot("user", "score");
        assert_eq!(snap.len(), 10);
        assert!(snap.iter().all(|(_, e)| e.value != Value::Int(99)));
    }

    #[test]
    fn export_rows_lists_every_entry_sorted() {
        let store = OnlineStore::new(4);
        store.put("g", &k("e2"), "f", Value::Int(2), Timestamp::millis(2));
        store.put("g", &k("e1"), "f", Value::Int(1), Timestamp::millis(1));
        store.put("h", &k("e1"), "g", Value::Int(3), Timestamp::millis(3));
        let rows = store.export_rows();
        assert_eq!(
            rows.iter()
                .map(|(g, e, f, _)| (g.as_str(), e.as_str(), f.as_str()))
                .collect::<Vec<_>>(),
            vec![("g", "e1", "f"), ("g", "e2", "f"), ("h", "e1", "g")]
        );
        assert_eq!(rows[1].3.written_at, Timestamp::millis(2));
    }

    #[test]
    fn concurrent_writers_and_readers() {
        use std::sync::Arc;
        let store = Arc::new(OnlineStore::new(8));
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let entity = k(&format!("e{}", i % 50));
                    s.put(
                        "g",
                        &entity,
                        &format!("f{t}"),
                        Value::Int(i),
                        Timestamp::millis(i),
                    );
                    s.get("g", &entity, &format!("f{t}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 50 entities × 4 features
        assert_eq!(store.len(), 200);
    }
}
