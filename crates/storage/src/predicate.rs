//! Scan predicates with zone-map pruning support.

use fstore_common::Value;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operator for a column predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// `column <op> literal`, SQL three-valued: a null cell never matches.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    pub column: String,
    pub op: CmpOp,
    pub value: Value,
}

impl Predicate {
    pub fn new(column: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    /// Row-level evaluation.
    pub fn matches(&self, cell: &Value) -> bool {
        if cell.is_null() || self.value.is_null() {
            return false;
        }
        let ord = cell.total_cmp(&self.value);
        match self.op {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// Segment-level pruning: can any value in `[min, max]` match?
    /// Conservative — returns `true` when unsure (e.g. `Ne`, or missing
    /// zone-map bounds).
    pub fn may_match_range(&self, min: Option<&Value>, max: Option<&Value>) -> bool {
        let (Some(min), Some(max)) = (min, max) else {
            return true;
        };
        if self.value.is_null() {
            return false;
        }
        let lo = self.value.total_cmp(min); // value vs min
        let hi = self.value.total_cmp(max); // value vs max
        match self.op {
            // value must fall inside [min, max]
            CmpOp::Eq => lo != Ordering::Less && hi != Ordering::Greater,
            CmpOp::Ne => true,
            // some cell < value ⇔ min < value
            CmpOp::Lt => lo == Ordering::Greater,
            CmpOp::Le => lo != Ordering::Less,
            // some cell > value ⇔ max > value
            CmpOp::Gt => hi == Ordering::Less,
            CmpOp::Ge => hi != Ordering::Greater,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.column, self.op, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_level_semantics() {
        let p = Predicate::new("x", CmpOp::Ge, 5i64);
        assert!(p.matches(&Value::Int(5)));
        assert!(p.matches(&Value::Float(5.5)));
        assert!(!p.matches(&Value::Int(4)));
        assert!(!p.matches(&Value::Null), "null never matches");
    }

    #[test]
    fn each_operator() {
        let v = Value::Int(3);
        assert!(Predicate::new("x", CmpOp::Eq, 3i64).matches(&v));
        assert!(Predicate::new("x", CmpOp::Ne, 4i64).matches(&v));
        assert!(Predicate::new("x", CmpOp::Lt, 4i64).matches(&v));
        assert!(Predicate::new("x", CmpOp::Le, 3i64).matches(&v));
        assert!(Predicate::new("x", CmpOp::Gt, 2i64).matches(&v));
        assert!(Predicate::new("x", CmpOp::Ge, 3i64).matches(&v));
        assert!(!Predicate::new("x", CmpOp::Gt, 3i64).matches(&v));
    }

    #[test]
    fn string_comparison() {
        let p = Predicate::new("city", CmpOp::Eq, "sf");
        assert!(p.matches(&Value::from("sf")));
        assert!(!p.matches(&Value::from("nyc")));
    }

    #[test]
    fn range_pruning_eq() {
        let p = Predicate::new("x", CmpOp::Eq, 10i64);
        let (min, max) = (Value::Int(0), Value::Int(5));
        assert!(
            !p.may_match_range(Some(&min), Some(&max)),
            "10 outside [0,5]"
        );
        let max2 = Value::Int(15);
        assert!(p.may_match_range(Some(&min), Some(&max2)));
    }

    #[test]
    fn range_pruning_inequalities() {
        let (min, max) = (Value::Int(10), Value::Int(20));
        // cells all >= 10, so `x < 5` cannot match
        assert!(!Predicate::new("x", CmpOp::Lt, 5i64).may_match_range(Some(&min), Some(&max)));
        assert!(Predicate::new("x", CmpOp::Lt, 11i64).may_match_range(Some(&min), Some(&max)));
        // cells all <= 20, so `x > 25` cannot match
        assert!(!Predicate::new("x", CmpOp::Gt, 25i64).may_match_range(Some(&min), Some(&max)));
        assert!(Predicate::new("x", CmpOp::Ge, 20i64).may_match_range(Some(&min), Some(&max)));
        assert!(!Predicate::new("x", CmpOp::Ge, 21i64).may_match_range(Some(&min), Some(&max)));
        assert!(Predicate::new("x", CmpOp::Le, 10i64).may_match_range(Some(&min), Some(&max)));
        assert!(!Predicate::new("x", CmpOp::Le, 9i64).may_match_range(Some(&min), Some(&max)));
    }

    #[test]
    fn pruning_is_conservative_without_bounds() {
        let p = Predicate::new("x", CmpOp::Eq, 10i64);
        assert!(p.may_match_range(None, None));
        assert!(p.may_match_range(Some(&Value::Int(0)), None));
    }

    #[test]
    fn ne_never_prunes() {
        let p = Predicate::new("x", CmpOp::Ne, 10i64);
        assert!(p.may_match_range(Some(&Value::Int(10)), Some(&Value::Int(10))));
    }
}
