//! Offline-store durability: JSON snapshots.
//!
//! The embedded warehouse is in-memory; snapshots give it a durable,
//! human-inspectable form (the same pragmatic choice the model store
//! makes). A snapshot captures every table's configuration and rows;
//! restoring replays them through the normal `create_table`/`append`
//! path, so all invariants (schema checks, partition routing, zone maps)
//! are re-established rather than trusted from the file.

use crate::offline::{OfflineStore, ScanRequest, TableConfig};
use fstore_common::{FieldDef, FsError, Result, Schema, Value, ValueType};
use serde::{Deserialize, Serialize};

#[derive(Debug, Serialize, Deserialize)]
struct FieldRepr {
    name: String,
    ty: ValueType,
    nullable: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct TableSnapshot {
    name: String,
    fields: Vec<FieldRepr>,
    time_column: Option<String>,
    segment_rows: usize,
    rows: Vec<Vec<Value>>,
}

#[derive(Debug, Serialize, Deserialize)]
struct StoreSnapshot {
    format_version: u32,
    tables: Vec<TableSnapshot>,
}

const FORMAT_VERSION: u32 = 1;

impl OfflineStore {
    /// Serialize the whole store (schemas + data) to JSON.
    pub fn snapshot_json(&self) -> Result<String> {
        let mut tables = Vec::new();
        for name in self.table_names() {
            let schema = self.schema(name)?;
            let fields = schema
                .fields()
                .iter()
                .map(|f| FieldRepr {
                    name: f.name.clone(),
                    ty: f.ty,
                    nullable: f.nullable,
                })
                .collect();
            let scan = self.scan(name, &ScanRequest::all())?;
            tables.push(TableSnapshot {
                name: name.to_string(),
                fields,
                time_column: self.time_column(name)?,
                segment_rows: self.segment_rows(name)?,
                rows: scan.rows,
            });
        }
        serde_json::to_string(&StoreSnapshot {
            format_version: FORMAT_VERSION,
            tables,
        })
        .map_err(|e| FsError::Serde(e.to_string()))
    }

    /// Rebuild a store from a snapshot produced by [`Self::snapshot_json`].
    /// Every row is re-validated through the normal append path.
    pub fn from_snapshot_json(json: &str) -> Result<OfflineStore> {
        let snap: StoreSnapshot =
            serde_json::from_str(json).map_err(|e| FsError::Serde(e.to_string()))?;
        if snap.format_version != FORMAT_VERSION {
            return Err(FsError::Storage(format!(
                "unsupported snapshot format v{} (expected v{FORMAT_VERSION})",
                snap.format_version
            )));
        }
        let mut store = OfflineStore::new();
        for t in snap.tables {
            let schema = Schema::new(
                t.fields
                    .into_iter()
                    .map(|f| FieldDef {
                        name: f.name,
                        ty: f.ty,
                        nullable: f.nullable,
                    })
                    .collect(),
            )?;
            let mut config = TableConfig::new(schema).with_segment_rows(t.segment_rows);
            if let Some(col) = t.time_column {
                config = config.with_time_column(col);
            }
            store.create_table(&t.name, config)?;
            for row in &t.rows {
                store.append(&t.name, row)?;
            }
        }
        Ok(store)
    }

    /// Write a snapshot to `path`.
    pub fn save_to_file(&self, path: &std::path::Path) -> Result<()> {
        let json = self.snapshot_json()?;
        std::fs::write(path, json).map_err(|e| FsError::Storage(format!("write snapshot: {e}")))
    }

    /// Load a store from a snapshot file.
    pub fn load_from_file(path: &std::path::Path) -> Result<OfflineStore> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| FsError::Storage(format!("read snapshot: {e}")))?;
        Self::from_snapshot_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::Timestamp;

    fn sample_store() -> OfflineStore {
        let mut s = OfflineStore::new();
        s.create_table(
            "trips",
            TableConfig::new(Schema::of(&[
                ("user", ValueType::Str),
                ("ts", ValueType::Timestamp),
                ("fare", ValueType::Float),
            ]))
            .with_time_column("ts")
            .with_segment_rows(4),
        )
        .unwrap();
        for i in 0..10i64 {
            s.append(
                "trips",
                &[
                    Value::from(format!("u{}", i % 3)),
                    Value::Timestamp(Timestamp::millis(i * 3_600_000)),
                    if i == 5 {
                        Value::Null
                    } else {
                        Value::Float(i as f64)
                    },
                ],
            )
            .unwrap();
        }
        s.create_table(
            "plain",
            TableConfig::new(Schema::of(&[("x", ValueType::Int)])),
        )
        .unwrap();
        s.append("plain", &[Value::Int(7)]).unwrap();
        s
    }

    #[test]
    fn snapshot_round_trip_preserves_everything() {
        let original = sample_store();
        let json = original.snapshot_json().unwrap();
        let restored = OfflineStore::from_snapshot_json(&json).unwrap();

        assert_eq!(restored.table_names(), original.table_names());
        for t in original.table_names() {
            assert_eq!(restored.num_rows(t).unwrap(), original.num_rows(t).unwrap());
            assert_eq!(restored.schema(t).unwrap(), original.schema(t).unwrap());
            assert_eq!(
                restored.partition_dates(t).unwrap(),
                original.partition_dates(t).unwrap()
            );
            let a = original.scan(t, &ScanRequest::all()).unwrap().rows;
            let b = restored.scan(t, &ScanRequest::all()).unwrap().rows;
            assert_eq!(a, b, "table {t}");
        }
    }

    #[test]
    fn file_round_trip() {
        let original = sample_store();
        let dir = std::env::temp_dir().join("fstore_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        original.save_to_file(&path).unwrap();
        let restored = OfflineStore::load_from_file(&path).unwrap();
        assert_eq!(restored.num_rows("trips").unwrap(), 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_input() {
        assert!(OfflineStore::from_snapshot_json("not json").is_err());
        assert!(OfflineStore::from_snapshot_json("{\"format_version\":99,\"tables\":[]}").is_err());
        assert!(OfflineStore::load_from_file(std::path::Path::new("/nonexistent/x.json")).is_err());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        // Regression: without serde_json's `float_roundtrip` feature, this
        // value came back as ...898 instead of ...894 — a silent corruption
        // a storage snapshot must never allow.
        let hostile = 27.912_789_275_389_894_f64;
        let mut s = OfflineStore::new();
        s.create_table(
            "t",
            TableConfig::new(Schema::of(&[("x", ValueType::Float)])),
        )
        .unwrap();
        s.append("t", &[Value::Float(hostile)]).unwrap();
        let restored = OfflineStore::from_snapshot_json(&s.snapshot_json().unwrap()).unwrap();
        let rows = restored.scan("t", &ScanRequest::all()).unwrap().rows;
        assert_eq!(
            rows[0][0],
            Value::Float(hostile),
            "bit-exact float persistence"
        );
    }

    #[test]
    fn empty_store_round_trips() {
        let s = OfflineStore::new();
        let restored = OfflineStore::from_snapshot_json(&s.snapshot_json().unwrap()).unwrap();
        assert!(restored.table_names().is_empty());
    }
}
