//! Criterion micro-benches for training-set construction (E2's micro
//! view): point-in-time join vs the naive join at several history sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fstore_bench::workloads::feature_history_schema;
use fstore_common::{Duration, Timestamp, Value};
use fstore_core::{naive_latest_join, point_in_time_join, LabelEvent, PitFeature};
use fstore_storage::{OfflineStore, TableConfig};
use std::hint::black_box;

fn build_history(entities: usize, points_per_entity: usize) -> OfflineStore {
    let mut off = OfflineStore::new();
    off.create_table(
        "feat__score_v1",
        TableConfig::new(feature_history_schema()).with_time_column("ts"),
    )
    .unwrap();
    for p in 0..points_per_entity {
        let ts = Timestamp::EPOCH + Duration::hours(p as i64);
        for e in 0..entities {
            off.append(
                "feat__score_v1",
                &[
                    Value::from(format!("u{e}")),
                    Value::Timestamp(ts),
                    Value::Float((p * entities + e) as f64),
                ],
            )
            .unwrap();
        }
    }
    off
}

fn pit_join_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pit_join");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for &(entities, history) in &[(200usize, 50usize), (1_000, 50), (1_000, 200)] {
        let off = build_history(entities, history);
        let labels: Vec<LabelEvent> = (0..entities)
            .map(|e| {
                LabelEvent::new(
                    format!("u{e}"),
                    Timestamp::EPOCH + Duration::hours((history / 2) as i64),
                    1.0,
                )
            })
            .collect();
        let feats = [PitFeature::materialized("score", 1)];
        g.throughput(Throughput::Elements(entities as u64));
        g.bench_with_input(
            BenchmarkId::new("point_in_time", format!("{entities}x{history}")),
            &(),
            |b, ()| b.iter(|| black_box(point_in_time_join(&off, &labels, &feats).unwrap())),
        );
        g.bench_with_input(
            BenchmarkId::new("naive_latest", format!("{entities}x{history}")),
            &(),
            |b, ()| b.iter(|| black_box(naive_latest_join(&off, &labels, &feats).unwrap())),
        );
    }
    g.finish();
}

criterion_group!(benches, pit_join_bench);
criterion_main!(benches);
