//! Criterion micro-benches for the expression engine and the streaming
//! window aggregator (E3's micro view).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fstore_common::{Duration, Schema, Timestamp, Value, ValueType};
use fstore_query::{AggFunc, Program};
use fstore_stream::{Event, StreamAggregator, WindowSpec};
use std::hint::black_box;

fn expression_eval(c: &mut Criterion) {
    let schema = Schema::of(&[
        ("fare", ValueType::Float),
        ("surge", ValueType::Float),
        ("city", ValueType::Str),
    ]);
    let simple = Program::compile("fare * 2 + 1", &schema).unwrap();
    let complex = Program::compile(
        "clip(fare * coalesce(surge, 1.0), 0, 100) + CASE WHEN city = 'sf' THEN 5 ELSE 0 END",
        &schema,
    )
    .unwrap();
    let row = vec![Value::Float(20.0), Value::Float(1.5), Value::from("sf")];

    c.bench_function("query/eval_simple", |b| {
        b.iter(|| black_box(simple.eval(&row).unwrap()))
    });
    c.bench_function("query/eval_complex", |b| {
        b.iter(|| black_box(complex.eval(&row).unwrap()))
    });
    c.bench_function("query/compile_complex", |b| {
        b.iter(|| {
            black_box(
                Program::compile(
                    "clip(fare * coalesce(surge, 1.0), 0, 100) + CASE WHEN city = 'sf' THEN 5 ELSE 0 END",
                    &schema,
                )
                .unwrap(),
            )
        })
    });
}

fn aggregates(c: &mut Criterion) {
    let values: Vec<Value> = (0..10_000).map(|i| Value::Float(i as f64)).collect();
    let mut g = c.benchmark_group("query/agg_10k");
    g.throughput(Throughput::Elements(10_000));
    for (name, f) in [
        ("sum", AggFunc::Sum),
        ("p95", AggFunc::Quantile(0.95)),
        ("count_distinct", AggFunc::CountDistinct),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(f.apply(&values))));
    }
    g.finish();
}

fn window_aggregation(c: &mut Criterion) {
    let events: Vec<Event> = (0..50_000)
        .map(|i| Event::new(format!("u{}", i % 100), Timestamp::millis(i * 20), 1.0))
        .collect();
    let mut g = c.benchmark_group("stream/ingest_50k_events");
    g.throughput(Throughput::Elements(50_000));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for (name, spec) in [
        ("tumbling_1m", WindowSpec::tumbling(Duration::minutes(1))),
        (
            "sliding_5m_1m",
            WindowSpec::sliding(Duration::minutes(5), Duration::minutes(1)),
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut agg =
                    StreamAggregator::new("f", AggFunc::Count, spec, Duration::ZERO).unwrap();
                let mut emitted = 0usize;
                for e in &events {
                    emitted += agg.push(e).len();
                }
                emitted += agg.flush().len();
                black_box(emitted)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, expression_eval, aggregates, window_aggregation);
criterion_main!(benches);
