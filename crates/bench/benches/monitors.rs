//! Criterion micro-benches for the monitoring layer (E10/E11 micro view):
//! tabular drift detectors, MMD, slice discovery, the label model.

use criterion::{criterion_group, criterion_main, Criterion};
use fstore_common::{Rng, Xoshiro256};
use fstore_monitor::drift::{DriftMonitor, DriftThresholds};
use fstore_monitor::slices::discover_slices;
use fstore_monitor::{mmd_rbf, LabelModel};
use std::hint::black_box;

fn drift_detectors(c: &mut Criterion) {
    let mut rng = Xoshiro256::seeded(1);
    let reference: Vec<f64> = (0..2_000).map(|_| rng.normal()).collect();
    let live: Vec<f64> = (0..2_000).map(|_| rng.normal() + 0.3).collect();
    let monitor = DriftMonitor::fit("f", &reference, DriftThresholds::default()).unwrap();
    c.bench_function("monitor/ks_psi_2k_vs_2k", |b| {
        b.iter(|| black_box(monitor.check(&live).unwrap()))
    });

    let emb_ref: Vec<Vec<f64>> = (0..200)
        .map(|_| (0..16).map(|_| rng.normal()).collect())
        .collect();
    let emb_live: Vec<Vec<f64>> = (0..200)
        .map(|_| (0..16).map(|_| rng.normal() + 0.5).collect())
        .collect();
    c.bench_function("monitor/mmd_rbf_200x16", |b| {
        b.iter(|| black_box(mmd_rbf(&emb_ref, &emb_live, None).unwrap()))
    });
}

fn slice_discovery(c: &mut Criterion) {
    let n = 5_000;
    let mut rng = Xoshiro256::seeded(2);
    let cities = ["sf", "nyc", "la", "chi"];
    let times = ["day", "night"];
    let devices = ["ios", "android", "web"];
    let meta = vec![
        (
            "city".to_string(),
            (0..n).map(|_| rng.choose(&cities).to_string()).collect(),
        ),
        (
            "time".to_string(),
            (0..n).map(|_| rng.choose(&times).to_string()).collect(),
        ),
        (
            "device".to_string(),
            (0..n).map(|_| rng.choose(&devices).to_string()).collect(),
        ),
    ];
    let truth: Vec<usize> = (0..n).map(|_| rng.below(2) as usize).collect();
    let preds: Vec<usize> = truth
        .iter()
        .map(|&t| if rng.chance(0.85) { t } else { 1 - t })
        .collect();
    c.bench_function("monitor/discover_slices_5k_3cols", |b| {
        b.iter(|| black_box(discover_slices(&meta, &truth, &preds, 50).unwrap().len()))
    });
}

fn label_model(c: &mut Criterion) {
    let mut rng = Xoshiro256::seeded(3);
    let truth: Vec<usize> = (0..2_000).map(|_| rng.below(2) as usize).collect();
    let votes: Vec<Vec<Option<usize>>> = (0..8)
        .map(|_| {
            truth
                .iter()
                .map(|&t| {
                    if rng.chance(0.2) {
                        None
                    } else if rng.chance(0.8) {
                        Some(t)
                    } else {
                        Some(1 - t)
                    }
                })
                .collect()
        })
        .collect();
    c.bench_function("monitor/label_model_fit_8x2k", |b| {
        b.iter(|| black_box(LabelModel::fit(&votes, 2, 5).unwrap().source_accuracy[0]))
    });
}

criterion_group!(benches, drift_detectors, slice_discovery, label_model);
criterion_main!(benches);
