//! Criterion micro-benches for the vector indexes (E9's micro view):
//! build cost and per-query latency of Flat / IVF / HNSW.

use criterion::{criterion_group, criterion_main, Criterion};
use fstore_bench::workloads::random_vectors;
use fstore_index::{
    FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, SearchParams, VectorIndex,
};
use std::hint::black_box;

const N: usize = 10_000;
const DIM: usize = 64;

/// This box is small; cap criterion's appetite so `cargo bench` finishes in
/// minutes, not hours.
fn quick_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g
}

fn search_latency(c: &mut Criterion) {
    let mut c = quick_group(c, "index");
    let c = &mut c;
    let data = random_vectors(N, DIM, 1);
    let queries = random_vectors(64, DIM, 2);
    let flat = FlatIndex::build(data.clone()).unwrap();
    let ivf = IvfIndex::build(
        data.clone(),
        IvfConfig {
            nlist: 128,
            nprobe: 8,
            ..IvfConfig::default()
        },
    )
    .unwrap();
    let hnsw = HnswIndex::build(
        data.clone(),
        HnswConfig {
            ef_construction: 32,
            ..HnswConfig::default()
        },
    )
    .unwrap();

    // All three go through the one generic trait entry point with default
    // params — each family falls back to its configured knobs.
    let params = SearchParams::default();
    let mut qi = 0usize;
    let mut next = move || {
        qi = (qi + 1) % 64;
        qi
    };
    c.bench_function("flat_search_k10_10k", |b| {
        b.iter(|| black_box(VectorIndex::search(&flat, &queries[next()], 10, &params).unwrap()))
    });
    let mut qi2 = 0usize;
    let mut next2 = move || {
        qi2 = (qi2 + 1) % 64;
        qi2
    };
    c.bench_function("ivf_nprobe8_k10_10k", |b| {
        b.iter(|| black_box(VectorIndex::search(&ivf, &queries[next2()], 10, &params).unwrap()))
    });
    let mut qi3 = 0usize;
    let mut next3 = move || {
        qi3 = (qi3 + 1) % 64;
        qi3
    };
    c.bench_function("hnsw_ef32_k10_10k", |b| {
        b.iter(|| black_box(VectorIndex::search(&hnsw, &queries[next3()], 10, &params).unwrap()))
    });
}

fn build_cost(c: &mut Criterion) {
    let mut c = quick_group(c, "index_build");
    let c = &mut c;
    let data = random_vectors(2_000, DIM, 3);
    c.bench_function("build_ivf_2k", |b| {
        b.iter(|| {
            black_box(
                IvfIndex::build(
                    data.clone(),
                    IvfConfig {
                        nlist: 64,
                        train_iters: 5,
                        ..IvfConfig::default()
                    },
                )
                .unwrap()
                .len(),
            )
        })
    });
    c.bench_function("build_hnsw_2k", |b| {
        b.iter(|| {
            black_box(
                HnswIndex::build(
                    data.clone(),
                    HnswConfig {
                        ef_construction: 32,
                        ..HnswConfig::default()
                    },
                )
                .unwrap()
                .len(),
            )
        })
    });
}

criterion_group!(benches, search_latency, build_cost);
criterion_main!(benches);
