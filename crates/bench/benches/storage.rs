//! Criterion micro-benches for the dual datastore (E1's micro view):
//! online put/get, offline append/scan, and zone-map pruning efficacy.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fstore_bench::workloads::{feature_history_schema, fill_online};
use fstore_common::{Duration, EntityKey, Timestamp, Value};
use fstore_storage::{CmpOp, OfflineStore, OnlineStore, Predicate, ScanRequest, TableConfig};
use std::hint::black_box;

fn online_store(c: &mut Criterion) {
    let store = OnlineStore::new(64);
    fill_online(&store, "user", 10_000, &["a", "b", "c"], 1);
    let key = EntityKey::new("u5000");

    c.bench_function("online/get_point", |b| {
        b.iter(|| black_box(store.get("user", &key, "b")))
    });
    c.bench_function("online/get_many_3", |b| {
        b.iter(|| black_box(store.get_many("user", &key, &["a", "b", "c"])))
    });
    c.bench_function("online/put", |b| {
        b.iter(|| store.put("user", &key, "a", Value::Float(1.0), Timestamp::EPOCH))
    });
}

fn offline_store(c: &mut Criterion) {
    // keep this file snappy on small machines

    let mut store = OfflineStore::new();
    store
        .create_table(
            "feat__score_v1",
            TableConfig::new(feature_history_schema()).with_time_column("ts"),
        )
        .unwrap();
    for day in 0..30i32 {
        let base = fstore_common::Date::from_days(day).start();
        for e in 0..1_000i64 {
            store
                .append(
                    "feat__score_v1",
                    &[
                        Value::from(format!("u{e}")),
                        Value::Timestamp(base + Duration::minutes(e % 60)),
                        Value::Float(e as f64),
                    ],
                )
                .unwrap();
        }
    }
    store.flush("feat__score_v1").unwrap();

    c.bench_function("offline/full_scan_30k", |b| {
        b.iter(|| {
            black_box(
                store
                    .scan("feat__score_v1", &ScanRequest::all())
                    .unwrap()
                    .rows
                    .len(),
            )
        })
    });
    c.bench_function("offline/date_pruned_scan_1_of_30", |b| {
        let req = ScanRequest::all().with_dates(
            fstore_common::Date::from_days(10),
            fstore_common::Date::from_days(10),
        );
        b.iter(|| black_box(store.scan("feat__score_v1", &req).unwrap().rows.len()))
    });
    c.bench_function("offline/zone_map_pruned_predicate", |b| {
        let req = ScanRequest::all().filter(Predicate::new("value", CmpOp::Ge, 990.0));
        b.iter(|| black_box(store.scan("feat__score_v1", &req).unwrap().rows.len()))
    });
    c.bench_function("offline/append_row", |b| {
        let mut fresh = OfflineStore::new();
        fresh
            .create_table(
                "t",
                TableConfig::new(feature_history_schema()).with_time_column("ts"),
            )
            .unwrap();
        let row = vec![
            Value::from("u1"),
            Value::Timestamp(Timestamp::EPOCH),
            Value::Float(1.0),
        ];
        b.iter_batched(
            || row.clone(),
            |r| fresh.append("t", &r).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, online_store, offline_store);
criterion_main!(benches);
