//! Criterion micro-benches for the embedding ecosystem (E5–E8 micro view):
//! trainer throughput, quality metrics, compression.

use criterion::{criterion_group, criterion_main, Criterion};
use fstore_bench::workloads::corpus_preset;
use fstore_embed::sgns::SgnsTrainer;
use fstore_embed::{
    eigenspace_overlap, knn_overlap, semantic_displacement, Corpus, PcaModel, QuantizedTable,
    SgnsConfig,
};
use std::hint::black_box;

fn trainers(c: &mut Criterion) {
    let corpus = Corpus::generate(corpus_preset(true, 1)).unwrap();
    let mut g = c.benchmark_group("embed_train");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.bench_function("sgns_epoch_300v_600s", |b| {
        b.iter(|| {
            let mut t = SgnsTrainer::new(
                &corpus,
                SgnsConfig {
                    dim: 32,
                    epochs: 1,
                    ..SgnsConfig::default()
                },
            )
            .unwrap();
            t.train(&corpus).unwrap();
            black_box(t.vector(0)[0])
        })
    });
    g.finish();
}

fn quality_metrics(c: &mut Criterion) {
    let corpus = Corpus::generate(corpus_preset(true, 2)).unwrap();
    // (metric benches are fast; default criterion settings are fine)
    let (a, _) = fstore_embed::sgns::train_sgns(
        &corpus,
        SgnsConfig {
            dim: 32,
            epochs: 1,
            seed: 1,
            ..SgnsConfig::default()
        },
    )
    .unwrap();
    let (bt, _) = fstore_embed::sgns::train_sgns(
        &corpus,
        SgnsConfig {
            dim: 32,
            epochs: 1,
            seed: 2,
            ..SgnsConfig::default()
        },
    )
    .unwrap();

    c.bench_function("embed/knn_overlap_300x32", |b| {
        b.iter(|| black_box(knn_overlap(&a, &bt, 10, None).unwrap()))
    });
    c.bench_function("embed/eigenspace_overlap_300x32", |b| {
        b.iter(|| black_box(eigenspace_overlap(&a, &bt).unwrap()))
    });
    c.bench_function("embed/semantic_displacement_300x32", |b| {
        b.iter(|| black_box(semantic_displacement(&a, &bt).unwrap()))
    });
}

fn compression(c: &mut Criterion) {
    let corpus = Corpus::generate(corpus_preset(true, 3)).unwrap();
    let (t, _) = fstore_embed::sgns::train_sgns(
        &corpus,
        SgnsConfig {
            dim: 32,
            epochs: 1,
            ..SgnsConfig::default()
        },
    )
    .unwrap();
    c.bench_function("embed/quantize_4bit_300x32", |b| {
        b.iter(|| black_box(QuantizedTable::quantize(&t, 4).unwrap().payload_bytes()))
    });
    c.bench_function("embed/pca_fit_r8_300x32", |b| {
        b.iter(|| black_box(PcaModel::fit(&t, 8).unwrap().explained_variance))
    });
}

criterion_group!(benches, trainers, quality_metrics, compression);
criterion_main!(benches);
