//! Runs the derived experiment suite E1–E23 (see DESIGN.md §3 and
//! EXPERIMENTS.md).
//!
//! ```text
//! experiments              # run everything at full size
//! experiments --quick      # smaller parameters, same shapes
//! experiments e5 e9        # run a subset by id
//! experiments --list       # list experiment ids and titles
//! ```
//!
//! There is also a hidden `e19-victim <dir> [--quick]` subcommand: E19
//! re-execs this binary as the crash victim it SIGKILLs mid-write-storm.

use fstore_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("e19-victim") {
        let Some(dir) = args.get(1) else {
            eprintln!("usage: experiments e19-victim <dir> [--quick]");
            std::process::exit(2);
        };
        let quick = args.iter().any(|a| a == "--quick" || a == "-q");
        // Runs until SIGKILLed; a clean return means something went wrong.
        if let Err(e) = experiments::e19_durability::victim(dir, quick) {
            eprintln!("victim failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    let mut quick = false;
    let mut ids: Vec<String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--list" | "-l" => {
                for e in experiments::all() {
                    println!("{:4}  {}", e.id, e.title);
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--quick] [--list] [ids…]\n\
                     ids: e1..e23 (default: all)"
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    let known: Vec<&str> = experiments::all().iter().map(|e| e.id).collect();
    for id in &ids {
        if !known.iter().any(|k| k.eq_ignore_ascii_case(id)) {
            eprintln!("unknown experiment id `{id}` (known: {})", known.join(", "));
            std::process::exit(2);
        }
    }
    if let Err(e) = experiments::run_selected(&ids, quick) {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}
