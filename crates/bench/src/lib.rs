//! # fstore-bench
//!
//! The experiment harness (DESIGN.md §3). The paper is a tutorial with no
//! evaluation tables, so this crate regenerates the **derived experiment
//! suite E1–E12** — one experiment per concrete claim/metric the paper
//! surveys — plus Criterion micro-benchmarks of every hot path.
//!
//! * `cargo run -p fstore-bench --release --bin experiments` — run all
//!   experiments and print their tables (EXPERIMENTS.md quotes this output).
//! * `cargo run -p fstore-bench --release --bin experiments -- --quick` —
//!   smaller parameters, same shapes.
//! * `cargo run -p fstore-bench --release --bin experiments -- e5 e9` —
//!   run a subset.
//! * `cargo bench` — Criterion micro-benches.

// Index-based loops are clearer than iterator chains in the dense
// numeric kernels below; silence the style lint crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod experiments;
pub mod table;
pub mod workloads;

pub use table::Table;
