//! Shared synthetic workload generators (the DESIGN.md substitutions for
//! the paper's proprietary production data).

use fstore_common::{
    Duration, EntityKey, FieldDef, Result, Rng, Schema, Timestamp, Value, ValueType, Xoshiro256,
    Zipf,
};
use fstore_embed::{Corpus, CorpusConfig, EmbeddingTable};
use fstore_storage::{OfflineStore, OnlineStore, TableConfig};

/// Schema of the synthetic ride-sharing trips table.
pub fn trips_schema() -> Schema {
    Schema::of(&[
        ("user_id", ValueType::Str),
        ("ts", ValueType::Timestamp),
        ("fare", ValueType::Float),
        ("distance_km", ValueType::Float),
        ("city", ValueType::Str),
    ])
}

/// Populate `trips` with `days` days × `per_day` trips over `users` users
/// (Zipf-skewed activity). Returns the number of rows.
pub fn load_trips(
    offline: &mut OfflineStore,
    users: usize,
    days: i32,
    per_day: usize,
    seed: u64,
) -> Result<usize> {
    offline.create_table(
        "trips",
        TableConfig::new(trips_schema()).with_time_column("ts"),
    )?;
    let mut rng = Xoshiro256::seeded(seed);
    let zipf = Zipf::new(users, 1.0);
    let cities = ["sf", "nyc", "la", "chi"];
    let mut rows = 0usize;
    for day in 0..days {
        let base = fstore_common::Date::from_days(day).start();
        for i in 0..per_day {
            let user = zipf.sample(&mut rng);
            let ts = base + Duration::millis(i as i64 * (86_400_000 / per_day as i64));
            let dist = 1.0 + rng.exponential(0.25);
            let fare = 2.5 + 1.6 * dist + rng.normal() * 0.8;
            offline.append(
                "trips",
                &[
                    Value::from(format!("u{user}")),
                    Value::Timestamp(ts),
                    Value::Float(fare),
                    Value::Float(dist),
                    Value::from(*rng.choose(&cities)),
                ],
            )?;
            rows += 1;
        }
    }
    Ok(rows)
}

/// Fill an online store with `entities × features` float values.
pub fn fill_online(
    online: &OnlineStore,
    group: &str,
    entities: usize,
    features: &[&str],
    seed: u64,
) {
    let mut rng = Xoshiro256::seeded(seed);
    for e in 0..entities {
        let key = EntityKey::new(format!("u{e}"));
        for f in features {
            online.put(group, &key, f, Value::Float(rng.normal()), Timestamp::EPOCH);
        }
    }
}

/// Schema used by hand-built feature history tables.
pub fn feature_history_schema() -> Schema {
    Schema::new(vec![
        FieldDef::not_null("entity", ValueType::Str),
        FieldDef::not_null("ts", ValueType::Timestamp),
        FieldDef::new("value", ValueType::Float),
    ])
    .expect("static schema")
}

/// Standard corpus presets for the embedding experiments.
pub fn corpus_preset(quick: bool, seed: u64) -> CorpusConfig {
    if quick {
        CorpusConfig {
            vocab: 300,
            topics: 8,
            sentences: 600,
            sentence_len: 10,
            zipf_alpha: 1.2,
            topic_coherence: 0.9,
            seed,
        }
    } else {
        CorpusConfig {
            vocab: 1_000,
            topics: 16,
            sentences: 3_000,
            sentence_len: 12,
            zipf_alpha: 1.2,
            topic_coherence: 0.9,
            seed,
        }
    }
}

/// A starved-tail corpus for the rare-entity experiments (E5, E8): few
/// sentences, strong skew.
pub fn starved_corpus(quick: bool, seed: u64) -> CorpusConfig {
    CorpusConfig {
        vocab: if quick { 300 } else { 600 },
        topics: 10,
        sentences: if quick { 250 } else { 500 },
        sentence_len: 8,
        zipf_alpha: 1.4,
        topic_coherence: 0.9,
        seed,
    }
}

// ---------------------------------------------------------------------
// The NED (named entity disambiguation) task used by E5 and the
// entity_disambiguation example.
// ---------------------------------------------------------------------

/// A disambiguation mention: context entity ids, candidates, gold index.
#[derive(Debug, Clone)]
pub struct Mention {
    pub context: Vec<usize>,
    pub candidates: Vec<usize>,
    pub gold: usize,
}

/// Generate `n` mentions over `corpus` (gold sampled by popularity).
pub fn make_mentions(corpus: &Corpus, n: usize, seed: u64) -> Vec<Mention> {
    let mut rng = Xoshiro256::seeded(seed);
    let zipf = Zipf::new(corpus.config.vocab, corpus.config.zipf_alpha);
    let vocab = corpus.config.vocab;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let gold_entity = zipf.sample(&mut rng);
        let topic = corpus.topic_of[gold_entity];
        let peers: Vec<usize> = (0..vocab)
            .filter(|&e| corpus.topic_of[e] == topic && e != gold_entity)
            .collect();
        if peers.len() < 4 {
            continue;
        }
        let context: Vec<usize> = (0..4).map(|_| *rng.choose(&peers)).collect();
        let mut candidates = vec![gold_entity];
        while candidates.len() < 5 {
            let d = rng.below(vocab as u64) as usize;
            if corpus.topic_of[d] != topic {
                candidates.push(d);
            }
        }
        rng.shuffle(&mut candidates);
        let gold = candidates.iter().position(|&c| c == gold_entity).unwrap();
        out.push(Mention {
            context,
            candidates,
            gold,
        });
    }
    out
}

/// Disambiguate by cosine(candidate, mean context); returns
/// `(per-band accuracy, overall accuracy)` with `bands` popularity bands
/// (band 0 = head).
pub fn ned_accuracy(
    table: &EmbeddingTable,
    corpus: &Corpus,
    mentions: &[Mention],
    bands: usize,
) -> (Vec<f64>, f64) {
    let band_of = {
        let popularity = corpus.popularity_bands(bands);
        let mut map = vec![0usize; corpus.config.vocab];
        for (b, members) in popularity.iter().enumerate() {
            for &e in members {
                map[e] = b;
            }
        }
        map
    };
    let dim = table.dim();
    let mut hit = vec![0usize; bands];
    let mut tot = vec![0usize; bands];
    for m in mentions {
        let mut ctx = vec![0.0f64; dim];
        for &c in &m.context {
            for (x, &v) in ctx
                .iter_mut()
                .zip(table.get(&Corpus::entity_name(c)).unwrap())
            {
                *x += f64::from(v);
            }
        }
        let score = |e: usize| {
            let v = table.get(&Corpus::entity_name(e)).unwrap();
            let (mut dot, mut nv, mut nc) = (0.0f64, 0.0f64, 0.0f64);
            for (&x, &c) in v.iter().zip(&ctx) {
                dot += f64::from(x) * c;
                nv += f64::from(x) * f64::from(x);
                nc += c * c;
            }
            if nv == 0.0 || nc == 0.0 {
                0.0
            } else {
                dot / (nv.sqrt() * nc.sqrt())
            }
        };
        let best = m
            .candidates
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| score(a).total_cmp(&score(b)))
            .map(|(i, _)| i)
            .unwrap();
        let band = band_of[m.candidates[m.gold]];
        tot[band] += 1;
        if best == m.gold {
            hit[band] += 1;
        }
    }
    let per_band = hit
        .iter()
        .zip(&tot)
        .map(|(&h, &t)| {
            if t == 0 {
                f64::NAN
            } else {
                h as f64 / t as f64
            }
        })
        .collect();
    let overall = hit.iter().sum::<usize>() as f64 / tot.iter().sum::<usize>().max(1) as f64;
    (per_band, overall)
}

/// Entity→topic classification features from an embedding table.
pub fn topic_features(table: &EmbeddingTable, corpus: &Corpus) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for e in 0..corpus.config.vocab {
        xs.push(table.get_f64(&Corpus::entity_name(e)).unwrap());
        ys.push(corpus.topic_of[e]);
    }
    (xs, ys)
}

/// Random unit-ish f32 vectors for index benchmarks.
pub fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Xoshiro256::seeded(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.normal() as f32).collect())
        .collect()
}

/// Clustered vectors (mixture of Gaussians) — the shape real embedding
/// tables have, and the structure IVF's coarse quantizer exploits.
pub fn clustered_vectors(
    n: usize,
    dim: usize,
    centers: usize,
    sigma: f64,
    seed: u64,
) -> Vec<Vec<f32>> {
    let mut rng = Xoshiro256::seeded(seed);
    let centroids: Vec<Vec<f64>> = (0..centers)
        .map(|_| (0..dim).map(|_| rng.normal() * 2.0).collect())
        .collect();
    (0..n)
        .map(|_| {
            let c = &centroids[rng.below(centers as u64) as usize];
            c.iter()
                .map(|&m| (m + rng.normal() * sigma) as f32)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_embed::sgns::train_sgns;
    use fstore_embed::SgnsConfig;
    use fstore_storage::ScanRequest;

    #[test]
    fn trips_load_and_scan() {
        let mut off = OfflineStore::new();
        let n = load_trips(&mut off, 20, 3, 100, 1).unwrap();
        assert_eq!(n, 300);
        assert_eq!(off.num_rows("trips").unwrap(), 300);
        assert_eq!(off.partition_dates("trips").unwrap().len(), 3);
        let res = off.scan("trips", &ScanRequest::all()).unwrap();
        assert_eq!(res.rows.len(), 300);
    }

    #[test]
    fn online_fill() {
        let online = OnlineStore::default();
        fill_online(&online, "g", 10, &["a", "b"], 2);
        assert_eq!(online.len(), 20);
    }

    #[test]
    fn mentions_are_well_formed() {
        let corpus = Corpus::generate(starved_corpus(true, 3)).unwrap();
        let ms = make_mentions(&corpus, 100, 4);
        assert_eq!(ms.len(), 100);
        for m in &ms {
            assert_eq!(m.candidates.len(), 5);
            assert_eq!(m.context.len(), 4);
            let gold_entity = m.candidates[m.gold];
            // distractors are cross-topic
            for (i, &c) in m.candidates.iter().enumerate() {
                if i != m.gold {
                    assert_ne!(corpus.topic_of[c], corpus.topic_of[gold_entity]);
                }
            }
        }
    }

    #[test]
    fn ned_evaluator_scores_perfect_oracle() {
        // an "oracle" table: entity e gets one-hot of its topic → context
        // mean matches gold exactly, distractors orthogonal
        let corpus = Corpus::generate(starved_corpus(true, 5)).unwrap();
        let mut table = EmbeddingTable::new(corpus.kg.num_types()).unwrap();
        for e in 0..corpus.config.vocab {
            let mut v = vec![0.0f32; corpus.kg.num_types()];
            v[corpus.topic_of[e]] = 1.0;
            table.insert(Corpus::entity_name(e), v).unwrap();
        }
        let ms = make_mentions(&corpus, 200, 6);
        let (_, overall) = ned_accuracy(&table, &corpus, &ms, 5);
        assert!(
            (overall - 1.0).abs() < 1e-12,
            "oracle must score 1.0, got {overall}"
        );
    }

    #[test]
    fn topic_features_shapes() {
        let corpus = Corpus::generate(corpus_preset(true, 7)).unwrap();
        let (t, _) = train_sgns(
            &corpus,
            SgnsConfig {
                dim: 8,
                epochs: 1,
                ..SgnsConfig::default()
            },
        )
        .unwrap();
        let (xs, ys) = topic_features(&t, &corpus);
        assert_eq!(xs.len(), corpus.config.vocab);
        assert_eq!(ys.len(), corpus.config.vocab);
        assert!(xs.iter().all(|x| x.len() == 8));
    }
}
