//! Minimal aligned text-table printer for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned table. All cells are strings; numeric helpers
/// format consistently across experiments.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment (first column left, rest right).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format helpers shared by the experiments.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

pub fn us(duration: std::time::Duration) -> String {
    format!("{:.1}", duration.as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["much_longer_name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(f1(2.0), "2.0");
    }
}
