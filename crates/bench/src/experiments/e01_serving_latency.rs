//! E1 — the dual-datastore latency contrast (paper §2.2.2).
//!
//! Claim: deployed models need an online store because point lookups from
//! the offline warehouse are orders of magnitude slower; conversely the
//! offline store wins for full scans (training). We measure point-read and
//! scan paths over the same logical data in both stores.

use crate::table::{f1, Table};
use crate::workloads::{feature_history_schema, fill_online};
use fstore_common::{Duration, EntityKey, Result, Rng, Value, Xoshiro256};
use fstore_storage::{CmpOp, OfflineStore, OnlineStore, Predicate, ScanRequest, TableConfig};
use std::time::Instant;

pub fn run(quick: bool) -> Result<()> {
    let entities = if quick { 5_000 } else { 20_000 };
    let history_per_entity = if quick { 10 } else { 50 };
    let lookups = if quick { 2_000 } else { 10_000 };

    // Offline: full feature history, date partitioned.
    let mut offline = OfflineStore::new();
    offline.create_table(
        "feat__score_v1",
        TableConfig::new(feature_history_schema()).with_time_column("ts"),
    )?;
    let mut rng = Xoshiro256::seeded(11);
    for day in 0..history_per_entity {
        let ts = fstore_common::Date::from_days(day as i32).start();
        for e in 0..entities {
            offline.append(
                "feat__score_v1",
                &[
                    Value::from(format!("u{e}")),
                    Value::Timestamp(ts + Duration::minutes(e as i64 % 60)),
                    Value::Float(rng.normal()),
                ],
            )?;
        }
    }
    offline.flush("feat__score_v1")?;
    let total_rows = entities * history_per_entity;

    // Online: latest value per entity.
    let online = OnlineStore::new(64);
    fill_online(&online, "user", entities, &["score"], 12);

    let as_of = fstore_common::Date::from_days(history_per_entity as i32).start();
    let mut table = Table::new(&[
        "read path",
        "batch",
        "total ms",
        "per-read µs",
        "rows touched",
    ]);

    for &batch in &[1usize, 32, 256] {
        // --- online point reads ---
        let start = Instant::now();
        let mut reads = 0usize;
        while reads < lookups {
            for i in 0..batch {
                let key = EntityKey::new(format!("u{}", (reads + i) % entities));
                let _ = online.get("user", &key, "score");
            }
            reads += batch;
        }
        let online_elapsed = start.elapsed();
        table.row(vec![
            "online point get".into(),
            batch.to_string(),
            f1(online_elapsed.as_secs_f64() * 1e3),
            f1(online_elapsed.as_secs_f64() * 1e6 / reads as f64),
            reads.to_string(),
        ]);

        // --- offline as-of point reads (per-entity predicate scan) ---
        let per_read_cap = lookups.min(if quick { 100 } else { 200 }); // offline reads are slow; sample
        let start = Instant::now();
        let mut scanned = 0usize;
        for i in 0..per_read_cap {
            let req = ScanRequest::all().as_of(as_of).filter(Predicate::new(
                "entity",
                CmpOp::Eq,
                format!("u{}", i % entities),
            ));
            let res = offline.scan("feat__score_v1", &req)?;
            scanned += res.stats.rows_scanned;
        }
        let offline_elapsed = start.elapsed();
        table.row(vec![
            "offline as-of scan".into(),
            batch.to_string(),
            f1(offline_elapsed.as_secs_f64() * 1e3 * (reads as f64 / per_read_cap as f64)),
            f1(offline_elapsed.as_secs_f64() * 1e6 / per_read_cap as f64),
            format!("{}", scanned / per_read_cap),
        ]);
    }

    // --- full scan: the offline store's home turf ---
    let start = Instant::now();
    let res = offline.scan("feat__score_v1", &ScanRequest::all())?;
    let scan_elapsed = start.elapsed();
    let start = Instant::now();
    let mut online_rows = 0usize;
    for e in 0..entities {
        if online
            .get_row("user", &EntityKey::new(format!("u{e}")))
            .is_some()
        {
            online_rows += 1;
        }
    }
    let online_scan = start.elapsed();
    table.row(vec![
        "offline full scan".into(),
        "-".into(),
        f1(scan_elapsed.as_secs_f64() * 1e3),
        f1(scan_elapsed.as_secs_f64() * 1e6 / res.rows.len() as f64),
        res.rows.len().to_string(),
    ]);
    table.row(vec![
        "online full sweep".into(),
        "-".into(),
        f1(online_scan.as_secs_f64() * 1e3),
        f1(online_scan.as_secs_f64() * 1e6 / online_rows as f64),
        online_rows.to_string(),
    ]);

    println!("{entities} entities, {total_rows} offline history rows\n");
    table.print();
    println!(
        "\nShape check: online per-read latency ≪ offline as-of per-read latency\n\
         (the dual-datastore argument); offline wins on full-history scans."
    );
    Ok(())
}
