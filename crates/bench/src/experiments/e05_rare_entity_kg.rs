//! E5 — structured data rescues rare entities (paper §3.1.1).
//!
//! Orr et al. (Bootleg) report that adding entity-type and KG-relation
//! signals to self-supervised pretraining "boosts performance over rare
//! entities by 40 F1 points". We reproduce the *shape* on the synthetic
//! NED task: the KG-augmented trainer's lift concentrates overwhelmingly
//! in the rare popularity bands.

use crate::table::{f3, Table};
use crate::workloads::{make_mentions, ned_accuracy, starved_corpus};
use fstore_common::Result;
use fstore_embed::kg::train_kg_sgns;
use fstore_embed::sgns::train_sgns;
use fstore_embed::{Corpus, KgSgnsConfig, SgnsConfig};

pub fn run(quick: bool) -> Result<()> {
    let corpus = Corpus::generate(starved_corpus(quick, 51))?;
    let mentions = make_mentions(&corpus, if quick { 1_500 } else { 5_000 }, 52);
    let bands = 5;

    let base = SgnsConfig {
        dim: 32,
        epochs: 4,
        seed: 3,
        ..SgnsConfig::default()
    };
    let (plain, _) = train_sgns(&corpus, base.clone())?;
    let (kg_full, _) = train_kg_sgns(
        &corpus,
        KgSgnsConfig {
            base: base.clone(),
            kg_pairs_per_entity: 8,
            ..KgSgnsConfig::default()
        },
    )?;
    // ablations: types only / relations only
    let (kg_types, _) = train_kg_sgns(
        &corpus,
        KgSgnsConfig {
            base: base.clone(),
            kg_pairs_per_entity: 8,
            use_types: true,
            use_relations: false,
            ..KgSgnsConfig::default()
        },
    )?;
    let (kg_rels, _) = train_kg_sgns(
        &corpus,
        KgSgnsConfig {
            base,
            kg_pairs_per_entity: 8,
            use_types: false,
            use_relations: true,
            ..KgSgnsConfig::default()
        },
    )?;

    let (acc_plain, ov_plain) = ned_accuracy(&plain, &corpus, &mentions, bands);
    let (acc_kg, ov_kg) = ned_accuracy(&kg_full, &corpus, &mentions, bands);
    let (acc_ty, ov_ty) = ned_accuracy(&kg_types, &corpus, &mentions, bands);
    let (acc_re, ov_re) = ned_accuracy(&kg_rels, &corpus, &mentions, bands);

    let mut table = Table::new(&[
        "popularity band",
        "SGNS",
        "KG(types)",
        "KG(rels)",
        "KG(full)",
        "full lift",
    ]);
    for b in 0..bands {
        let name = match b {
            0 => "0 (head)".to_string(),
            b if b == bands - 1 => format!("{b} (tail)"),
            b => b.to_string(),
        };
        table.row(vec![
            name,
            f3(acc_plain[b]),
            f3(acc_ty[b]),
            f3(acc_re[b]),
            f3(acc_kg[b]),
            format!("{:+.3}", acc_kg[b] - acc_plain[b]),
        ]);
    }
    table.row(vec![
        "overall".into(),
        f3(ov_plain),
        f3(ov_ty),
        f3(ov_re),
        f3(ov_kg),
        format!("{:+.3}", ov_kg - ov_plain),
    ]);

    println!(
        "NED task: {} mentions, 5 candidates, corpus vocab {} / {} sentences (starved tail)\n",
        mentions.len(),
        corpus.config.vocab,
        corpus.config.sentences
    );
    table.print();
    println!(
        "\nShape check (Bootleg): tail-band lift is tens of points while the head\n\
         barely moves; both structured signals contribute, types most."
    );
    Ok(())
}
