//! E8 — k-NN neighborhoods are unstable across retrains; rare entities are
//! least stable and more data stabilizes everything (paper §3.1.2;
//! Wendlandt et al., "Factors influencing the surprising instability of
//! word embeddings"; Hellrich & Hahn).

use crate::table::{f3, Table};
use fstore_common::Result;
use fstore_embed::sgns::train_sgns;
use fstore_embed::{knn_overlap, Corpus, CorpusConfig, SgnsConfig};

pub fn run(quick: bool) -> Result<()> {
    let bands = 5;
    let sentence_counts: &[usize] = if quick {
        &[200, 800]
    } else {
        &[200, 800, 3_000]
    };

    let mut table = Table::new(&[
        "corpus sentences",
        "band 0 (head)",
        "band 1",
        "band 2",
        "band 3",
        "band 4 (tail)",
        "overall",
    ]);

    for &sentences in sentence_counts {
        let corpus = Corpus::generate(CorpusConfig {
            vocab: if quick { 250 } else { 500 },
            topics: 10,
            sentences,
            sentence_len: 10,
            zipf_alpha: 1.2,
            topic_coherence: 0.9,
            seed: 81,
        })?;
        let cfg = SgnsConfig {
            dim: 32,
            epochs: 3,
            ..SgnsConfig::default()
        };
        let (a, _) = train_sgns(
            &corpus,
            SgnsConfig {
                seed: 1,
                ..cfg.clone()
            },
        )?;
        let (b, _) = train_sgns(&corpus, SgnsConfig { seed: 2, ..cfg })?;

        let popularity = corpus.popularity_bands(bands);
        let mut cells = vec![sentences.to_string()];
        for band in &popularity {
            let keys: Vec<String> = band.iter().map(|&e| Corpus::entity_name(e)).collect();
            cells.push(f3(knn_overlap(&a, &b, 10, Some(&keys))?));
        }
        cells.push(f3(knn_overlap(&a, &b, 10, None)?));
        table.row(cells);
    }

    println!("knn-overlap@10 between two SGNS retrains (seeds 1 vs 2), by popularity band\n");
    table.print();
    println!(
        "\nShape check (Wendlandt): overlap decreases from head to tail within every\n\
         row (rare entities are least stable), and every band stabilizes as the\n\
         corpus grows down the column."
    );
    Ok(())
}
