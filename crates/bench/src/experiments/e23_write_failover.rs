//! E23 — routed writes under leader failure: fencing and automatic
//! failover (DESIGN.md §2.18).
//!
//! Claim: a write path is only as good as its failure story. This
//! experiment storms a 3-shard cluster with mixed open-loop reads and
//! writes, kills one shard's leader mid-storm, lets the control plane
//! promote the follower (map-level *and* data-plane, over the wire), then
//! revives the dead leader as a zombie and watches the fence land.
//! Four properties are asserted:
//!
//! 1. **Zero lost acknowledged writes** — after the storm, every entity
//!    reads back a value at least as new as its last acknowledged write.
//!    (Writers pause briefly and the cluster converges before the kill,
//!    so every pre-kill ack is on the follower; post-kill acks come from
//!    the promoted leader directly. Acks in the async-replication gap are
//!    the WAL's problem — E19 — not the router's.)
//! 2. **Zero zombie-accepted writes** — per entity, the term carried on
//!    successive acks never goes backwards: once the promoted leader
//!    acks at term t+1, no ack at term t appears again.
//! 3. **Bounded write unavailability** — for every entity on the victim
//!    shard, the gap from the kill to its first post-kill ack is bounded
//!    (probe cadence + promotion + router refresh, not minutes).
//! 4. **The revived zombie is fenced** — after revival the control
//!    plane's pending fence lands, and a stale-term write sent straight
//!    at the old leader (bypassing the router) is refused with the
//!    current term.
//!
//! Results are written to `BENCH_failover.json`.

use crate::table::{f1, Table};
use fstore_common::{EntityKey, Result, Timestamp, Value};
use fstore_serve::{fixed_clock, ClientError, FeatureClient, StoreApi};
use fstore_shard::{ClusterConfig, ShardCluster, ShardId};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const NOW: Timestamp = Timestamp(60_000);
const SHARDS: usize = 3;
/// Storm entities; each belongs to exactly one writer thread, so per-
/// entity ack sequences are totally ordered without cross-thread races.
const ENTITIES: usize = 24;
const WRITERS: usize = 3;
const READERS: usize = 3;

/// Value scheme: `entity * SEQ_BASE + seq`. Exact in f64 far beyond this
/// experiment's write counts, decodes back to (entity, seq) so a reader
/// can detect cross-entity routing mixups and the final audit can compare
/// sequence numbers.
const SEQ_BASE: u64 = 1_000_000;

fn encode(entity: usize, seq: u64) -> Value {
    Value::Float((entity as u64 * SEQ_BASE + seq) as f64)
}

fn decode(value: &Value) -> Option<(usize, u64)> {
    let Value::Float(f) = value else { return None };
    let raw = *f as u64;
    Some(((raw / SEQ_BASE) as usize, raw % SEQ_BASE))
}

#[derive(Default)]
struct WriterTotals {
    acked: u64,
    refused: u64,
    unknown: u64,
    failed: u64,
    term_regressions: u64,
}

#[derive(Default)]
struct ReaderTotals {
    ok: u64,
    wrong: u64,
    errors: u64,
}

#[derive(Serialize)]
struct Artifact {
    experiment: String,
    shards: usize,
    followers: usize,
    entities: usize,
    writer_threads: usize,
    reader_threads: usize,
    writes_acked: u64,
    writes_refused: u64,
    writes_outcome_unknown: u64,
    writes_failed: u64,
    reads_ok: u64,
    reads_wrong: u64,
    reads_errors: u64,
    lost_acked_writes: u64,
    zombie_acked_writes: u64,
    write_unavailability_ms: f64,
    promotion_term: u64,
    promotion_map_version: u64,
    probe_rounds: u64,
    zombie_refused_after_fence: bool,
    zombie_refusal_names_term: u64,
}

pub fn run(quick: bool) -> Result<()> {
    let pre_kill = Duration::from_millis(if quick { 250 } else { 600 });
    let post_promote = Duration::from_millis(if quick { 300 } else { 800 });
    let write_rps = if quick { 120.0 } else { 200.0 };
    let read_rps = if quick { 250.0 } else { 400.0 };
    let probe_every = Duration::from_millis(20);
    let unavailability_bound = Duration::from_secs(if quick { 5 } else { 3 });

    println!(
        "storm: {WRITERS} writers x {write_rps:.0} wps + {READERS} readers x {read_rps:.0} rps\n\
         over {SHARDS} shards (1 follower each), {ENTITIES} entities;\n\
         kill one leader mid-storm, probe every {probe_every:?}, then revive the zombie\n"
    );

    let mut cluster = ShardCluster::start(
        ClusterConfig {
            shards: SHARDS,
            followers: 1,
            ..ClusterConfig::default()
        },
        fixed_clock(NOW),
    )?;
    let control = cluster.control();

    // Seed every entity at seq 0 and wait for the followers to hold it.
    for u in 0..ENTITIES {
        cluster.put_online(
            "user",
            &EntityKey::new(format!("w{u}")),
            &[("score", encode(u, 0))],
            NOW,
        )?;
    }
    assert!(
        cluster.wait_converged(Duration::from_secs(10)),
        "followers never converged after seeding"
    );

    let victim = ShardId(0);
    let victim_entities: Vec<usize> = (0..ENTITIES)
        .filter(|u| cluster.shard_for(&format!("w{u}")) == victim)
        .collect();
    assert!(
        !victim_entities.is_empty(),
        "the victim shard must own at least one storm entity"
    );

    // Shared storm state. `attempts[u]` is bumped *before* each send so a
    // concurrent reader never sees a sequence above it; `last_acked[u]`
    // is the newest acknowledged sequence; `kill_at`/`first_ack_after`
    // measure the per-entity write-unavailability window.
    let stop = Arc::new(AtomicBool::new(false));
    let writes_enabled = Arc::new(AtomicBool::new(true));
    let attempts: Arc<Vec<AtomicU64>> =
        Arc::new((0..ENTITIES).map(|_| AtomicU64::new(0)).collect());
    let last_acked: Arc<Vec<AtomicU64>> =
        Arc::new((0..ENTITIES).map(|_| AtomicU64::new(0)).collect());
    let kill_at: Arc<Mutex<Option<Instant>>> = Arc::new(Mutex::new(None));
    let first_ack_after: Arc<Mutex<Vec<Option<Instant>>>> =
        Arc::new(Mutex::new(vec![None; ENTITIES]));

    let writer_joins: Vec<_> = (0..WRITERS)
        .map(|w| {
            let mut router = cluster.router();
            let stop = Arc::clone(&stop);
            let writes_enabled = Arc::clone(&writes_enabled);
            let attempts = Arc::clone(&attempts);
            let last_acked = Arc::clone(&last_acked);
            let kill_at = Arc::clone(&kill_at);
            let first_ack_after = Arc::clone(&first_ack_after);
            std::thread::spawn(move || -> WriterTotals {
                let mine: Vec<usize> = (0..ENTITIES).filter(|u| u % WRITERS == w).collect();
                let interval = Duration::from_secs_f64(1.0 / write_rps);
                let mut last_term: Vec<u64> = vec![0; ENTITIES];
                let mut totals = WriterTotals::default();
                let mut tick = 0usize;
                let begin = Instant::now();
                while !stop.load(Ordering::Acquire) {
                    let due = interval.mul_f64(tick as f64);
                    if let Some(sleep) = due.checked_sub(begin.elapsed()) {
                        std::thread::sleep(sleep);
                    }
                    tick += 1;
                    if !writes_enabled.load(Ordering::Acquire) {
                        continue;
                    }
                    let u = mine[tick % mine.len()];
                    let seq = attempts[u].fetch_add(1, Ordering::AcqRel) + 1;
                    let entity = format!("w{u}");
                    match router.put_online("user", &entity, &[("score", encode(u, seq))], 0) {
                        Ok(ack) => {
                            totals.acked += 1;
                            if ack.term < last_term[u] {
                                // A dead term acked after a newer one: a
                                // zombie took a routed write.
                                totals.term_regressions += 1;
                            }
                            last_term[u] = last_term[u].max(ack.term);
                            last_acked[u].fetch_max(seq, Ordering::AcqRel);
                            let killed = *kill_at.lock().unwrap();
                            if killed.is_some() {
                                let mut firsts = first_ack_after.lock().unwrap();
                                if firsts[u].is_none() {
                                    firsts[u] = Some(Instant::now());
                                }
                            }
                        }
                        // A typed refusal proves non-application.
                        Err(ClientError::NotLeader { .. }) | Err(ClientError::Server { .. }) => {
                            totals.refused += 1
                        }
                        Err(ClientError::WriteFailed { applied, .. }) => {
                            if applied == Some(false) {
                                totals.refused += 1;
                            } else {
                                totals.unknown += 1;
                            }
                        }
                        Err(_) => totals.failed += 1,
                    }
                }
                totals
            })
        })
        .collect();

    let reader_joins: Vec<_> = (0..READERS)
        .map(|r| {
            let mut router = cluster.router();
            let stop = Arc::clone(&stop);
            let attempts = Arc::clone(&attempts);
            std::thread::spawn(move || -> ReaderTotals {
                let interval = Duration::from_secs_f64(1.0 / read_rps);
                let mut totals = ReaderTotals::default();
                let mut tick = r * 7;
                let begin = Instant::now();
                while !stop.load(Ordering::Acquire) {
                    let due = interval.mul_f64((tick - r * 7) as f64);
                    if let Some(sleep) = due.checked_sub(begin.elapsed()) {
                        std::thread::sleep(sleep);
                    }
                    tick += 1;
                    let u = (tick * 13) % ENTITIES;
                    match router.get_features("user", &format!("w{u}"), &["score"]) {
                        Ok(v) => match decode(&v.values[0]) {
                            // The upper bound is read *after* the value,
                            // so attempts can only be ahead of it.
                            Some((owner, seq))
                                if owner == u && seq <= attempts[u].load(Ordering::Acquire) =>
                            {
                                totals.ok += 1
                            }
                            _ => totals.wrong += 1,
                        },
                        Err(_) => totals.errors += 1,
                    }
                }
                totals
            })
        })
        .collect();

    // Phase A: healthy storm, then a short write pause so every ack is
    // replicated before the kill (see module docs, property 1).
    std::thread::sleep(pre_kill);
    writes_enabled.store(false, Ordering::Release);
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        cluster.wait_converged(Duration::from_secs(10)),
        "followers never converged before the kill"
    );

    // Phase B: kill the leader with writes flowing again, and probe until
    // the control plane promotes (map-level + wire-level in one round).
    *kill_at.lock().unwrap() = Some(Instant::now());
    cluster.kill_leader(victim);
    writes_enabled.store(true, Ordering::Release);
    let (promotion_term, promotion_map_version) = loop {
        let events = control.probe_once();
        if let Some(event) = events.iter().find(|e| e.shard == victim) {
            break (event.term, event.map_version);
        }
        std::thread::sleep(probe_every);
    };
    println!(
        "promotion: {victim} -> term {promotion_term}, map v{promotion_map_version} \
         ({} entities on the victim shard)",
        victim_entities.len()
    );

    // Phase C: keep storming, revive the zombie mid-storm, and keep
    // probing so the pending fence reaches it.
    std::thread::sleep(post_promote / 2);
    let zombie_addr = cluster.revive_leader(victim)?;
    let fence_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        control.probe_once();
        if control.snapshot().pending_fences == 0 {
            break;
        }
        assert!(
            Instant::now() < fence_deadline,
            "the pending fence never reached the revived leader"
        );
        std::thread::sleep(probe_every);
    }
    std::thread::sleep(post_promote / 2);

    stop.store(true, Ordering::Release);
    let mut writes = WriterTotals::default();
    for j in writer_joins {
        let t = j.join().expect("writer thread panicked");
        writes.acked += t.acked;
        writes.refused += t.refused;
        writes.unknown += t.unknown;
        writes.failed += t.failed;
        writes.term_regressions += t.term_regressions;
    }
    let mut reads = ReaderTotals::default();
    for j in reader_joins {
        let t = j.join().expect("reader thread panicked");
        reads.ok += t.ok;
        reads.wrong += t.wrong;
        reads.errors += t.errors;
    }

    // Audit 1: no acknowledged write lost. Every entity must read back a
    // sequence >= its newest ack (monotone values make this sufficient).
    let mut router = cluster.router();
    let mut lost_acked_writes = 0u64;
    for u in 0..ENTITIES {
        let v = router
            .get_features("user", &format!("w{u}"), &["score"])
            .map_err(|e| fstore_common::FsError::Storage(format!("final read w{u}: {e}")))?;
        let acked = last_acked[u].load(Ordering::Acquire);
        match decode(&v.values[0]) {
            Some((owner, seq)) if owner == u && seq >= acked => {}
            other => {
                lost_acked_writes += 1;
                println!("LOST: w{u} acked seq {acked}, reads back {other:?}");
            }
        }
    }

    // Audit 2: write unavailability on the victim shard.
    let kill_instant = kill_at.lock().unwrap().expect("kill recorded");
    let firsts = first_ack_after.lock().unwrap();
    let mut write_unavailability = Duration::ZERO;
    for &u in &victim_entities {
        let first = firsts[u].unwrap_or_else(|| {
            panic!("w{u} on the victim shard never acked a write after the kill")
        });
        write_unavailability = write_unavailability.max(first - kill_instant);
    }
    drop(firsts);

    // Audit 3: the fenced zombie refuses its old term, naming the new one.
    let mut zombie = FeatureClient::connect(zombie_addr)
        .map_err(|e| fstore_common::FsError::Storage(format!("connect zombie: {e}")))?;
    let refusal = zombie.put_online("user", "w-zombie-probe", &[("score", encode(0, 1))], 1);
    let (zombie_refused_after_fence, zombie_refusal_names_term) = match refusal {
        Err(ClientError::NotLeader { current_term }) => (true, current_term),
        other => {
            println!("zombie answered a stale-term write with {other:?}");
            (false, 0)
        }
    };

    let snapshot = cluster.control_metrics();
    cluster.shutdown();

    let mut table = Table::new(&["metric", "value"]);
    table.row(vec!["writes acked".into(), writes.acked.to_string()]);
    table.row(vec![
        "writes refused (typed)".into(),
        writes.refused.to_string(),
    ]);
    table.row(vec![
        "writes outcome-unknown".into(),
        writes.unknown.to_string(),
    ]);
    table.row(vec![
        "writes failed (transport)".into(),
        writes.failed.to_string(),
    ]);
    table.row(vec!["reads ok".into(), reads.ok.to_string()]);
    table.row(vec!["reads wrong".into(), reads.wrong.to_string()]);
    table.row(vec!["reads errors".into(), reads.errors.to_string()]);
    table.row(vec![
        "lost acked writes".into(),
        lost_acked_writes.to_string(),
    ]);
    table.row(vec![
        "zombie-acked writes".into(),
        writes.term_regressions.to_string(),
    ]);
    table.row(vec![
        "write unavailability (ms)".into(),
        f1(write_unavailability.as_secs_f64() * 1e3),
    ]);
    table.row(vec![
        "zombie fenced + refuses".into(),
        format!("{zombie_refused_after_fence} (current_term={zombie_refusal_names_term})"),
    ]);
    table.print();

    assert!(writes.acked > 0, "the storm acked no writes at all");
    assert!(reads.ok > 0, "the storm completed no reads at all");
    assert_eq!(
        reads.wrong, 0,
        "a read returned another entity's (or a future) value"
    );
    assert_eq!(lost_acked_writes, 0, "an acknowledged write was lost");
    assert_eq!(
        writes.term_regressions, 0,
        "an ack's term went backwards: a zombie accepted a routed write"
    );
    assert!(
        write_unavailability <= unavailability_bound,
        "write unavailability {write_unavailability:?} exceeded {unavailability_bound:?}"
    );
    assert!(
        zombie_refused_after_fence,
        "the revived zombie accepted a stale-term write after the fence"
    );
    assert_eq!(
        zombie_refusal_names_term, promotion_term,
        "the zombie's refusal must name the fencing term"
    );

    let artifact = Artifact {
        experiment: "e23_write_failover".to_string(),
        shards: SHARDS,
        followers: 1,
        entities: ENTITIES,
        writer_threads: WRITERS,
        reader_threads: READERS,
        writes_acked: writes.acked,
        writes_refused: writes.refused,
        writes_outcome_unknown: writes.unknown,
        writes_failed: writes.failed,
        reads_ok: reads.ok,
        reads_wrong: reads.wrong,
        reads_errors: reads.errors,
        lost_acked_writes,
        zombie_acked_writes: writes.term_regressions,
        write_unavailability_ms: write_unavailability.as_secs_f64() * 1e3,
        promotion_term,
        promotion_map_version,
        probe_rounds: snapshot.probe_rounds,
        zombie_refused_after_fence,
        zombie_refusal_names_term,
    };
    let path = "BENCH_failover.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .map_err(|e| fstore_common::FsError::Storage(format!("write {path}: {e}")))?;
    println!("\nwrote {path}");
    println!(
        "\nShape check: acked writes survive the leader's death because the\n\
         kill finds them replicated; the outage window is probe cadence +\n\
         one wire promotion + a router refresh; and the revived leader is\n\
         a spectator — fenced by term before it can accept anything stale."
    );
    Ok(())
}
