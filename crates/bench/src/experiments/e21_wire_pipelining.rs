//! E21 — zero-copy wire stack: pipelined connections vs request-per-RTT
//! (paper §2.2.2).
//!
//! Claim: a blocking request/response client spends most of a serving
//! tier's budget waiting — one request in flight per connection means one
//! round trip *and* one worker claim per request, so the server's batcher
//! never sees more than a connection's single job. Pipelining keeps N
//! requests in flight on the same socket (responses return in order; no
//! correlation IDs needed), which both amortizes round trips and lets the
//! worker claim a whole burst as one batch.
//!
//! We drive the TCP server with an open-loop generator (bursts are due on
//! a fixed schedule, independent of response times, so falling behind
//! shows up as latency instead of being self-throttled away) at pipeline
//! depths 1, 8, and 32, and report achieved throughput, client-observed
//! latency percentiles (measured from each request's *scheduled* time —
//! no coordinated omission), and the server's wire counters. A warmed-up
//! steady-state window checks the zero-copy claim directly: the read
//! path's payload-allocation counter must not move once every
//! connection's frame buffer has grown to size.
//!
//! Results are also written to `BENCH_wire.json` for tracking.

use fstore_common::{EntityKey, Result, Rng, Timestamp, Value, Xoshiro256};
use fstore_core::FeatureServer;
use fstore_serve::{
    fixed_clock, start, FeatureClient, Request, Response, ServeConfig, ServeEngine, WireSnapshot,
};
use fstore_storage::OnlineStore;
use serde::Serialize;
use std::sync::{Arc, Barrier};
use std::time::{Duration as StdDuration, Instant};

use crate::table::{f1, Table};

const ENTITIES: usize = 5_000;
const FEATURES: [&str; 2] = ["score", "clicks"];
const NOW: Timestamp = Timestamp(60_000);
/// Injected per-claim store latency: expensive enough that a depth-1
/// client is visibly round-trip-and-claim bound, cheap enough that the
/// pipelined levels stay comfortably on schedule.
const STORE_DELAY: StdDuration = StdDuration::from_micros(200);

#[derive(Serialize)]
struct LevelResult {
    depth: usize,
    offered_rps: u64,
    client_threads: usize,
    achieved_rps: f64,
    duration_s: f64,
    requests: u64,
    ok: u64,
    errors: u64,
    /// Client-observed latency from each request's scheduled send time.
    p50_ms: Option<f64>,
    p95_ms: Option<f64>,
    p99_ms: Option<f64>,
    /// Server-side payload allocations during the measured (post-warmup)
    /// window — the zero-copy claim is that this is 0.
    steady_payload_allocs: u64,
    batches: u64,
    batched_requests: u64,
    wire: WireSnapshot,
}

#[derive(Serialize)]
struct Artifact {
    experiment: String,
    entities: usize,
    store_delay_us: u64,
    levels: Vec<LevelResult>,
    /// Achieved-throughput ratios vs the depth-1 level.
    speedup_depth8: f64,
    speedup_depth32: f64,
}

fn populated_store() -> Arc<OnlineStore> {
    let online = Arc::new(OnlineStore::new(64));
    let mut rng = Xoshiro256::seeded(21);
    for i in 0..ENTITIES {
        let key = EntityKey::new(format!("u{i}"));
        online.put(
            "user",
            &key,
            "score",
            Value::Float(rng.normal()),
            Timestamp::millis(50_000),
        );
        online.put(
            "user",
            &key,
            "clicks",
            Value::Int(i as i64 % 100),
            Timestamp::millis(55_000),
        );
    }
    online
}

fn request_for(thread: usize, seq: u64) -> Request {
    let id = (thread * 7919 + seq as usize * 13) % ENTITIES;
    Request::GetFeatures {
        group: "user".to_string(),
        entity: format!("u{id}"),
        features: FEATURES.iter().map(|f| f.to_string()).collect(),
    }
}

fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    Some(sorted[idx])
}

/// Drive one pipeline depth for `duration`; returns the level summary.
fn run_level(
    depth: usize,
    offered_rps: u64,
    threads: usize,
    duration: StdDuration,
) -> Result<LevelResult> {
    let engine = ServeEngine::new(FeatureServer::new(populated_store()), fixed_clock(NOW));
    let handle = start(
        engine,
        ServeConfig {
            workers: 2,
            queue_depth: 512,
            max_batch: 32,
            handler_delay: Some(STORE_DELAY),
            ..ServeConfig::default()
        },
    )
    .map_err(|e| fstore_common::FsError::Storage(format!("bind loopback: {e}")))?;
    let addr = handle.addr();
    let metrics = handle.metrics();

    // Threads warm up (connections established, frame buffers grown),
    // then everyone meets at the barrier; the measured window — and the
    // steady-state allocation check — starts there.
    let steady = Arc::new(Barrier::new(threads + 1));
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let steady = Arc::clone(&steady);
            let per_thread_rps = offered_rps as f64 / threads as f64;
            let interval = StdDuration::from_secs_f64(1.0 / per_thread_rps);
            std::thread::spawn(move || -> (u64, u64, u64, Vec<f64>) {
                let mut client = match FeatureClient::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        steady.wait();
                        return (0, 0, 0, Vec::new());
                    }
                };
                for i in 0..8 {
                    let burst: Vec<Request> = (0..depth)
                        .map(|j| request_for(t, (i * depth + j) as u64))
                        .collect();
                    if client.call_many(&burst).is_err() {
                        break;
                    }
                }
                steady.wait();

                let begin = Instant::now();
                let (mut sent, mut ok, mut errors) = (0u64, 0u64, 0u64);
                let mut latencies: Vec<f64> = Vec::new();
                // Open loop: burst i (requests i·depth .. i·depth+depth)
                // is due at begin + i·depth·interval no matter how long
                // earlier bursts took.
                loop {
                    let due = interval.mul_f64(sent as f64);
                    if due >= duration {
                        break;
                    }
                    if let Some(sleep) = due.checked_sub(begin.elapsed()) {
                        std::thread::sleep(sleep);
                    }
                    let burst: Vec<Request> = (0..depth)
                        .map(|j| request_for(t, sent + j as u64))
                        .collect();
                    let first_seq = sent;
                    sent += depth as u64;
                    match client.call_many(&burst) {
                        Ok(responses) => {
                            let done = begin.elapsed();
                            for (j, response) in responses.iter().enumerate() {
                                // Latency from the request's *scheduled*
                                // time, so queueing behind a late burst
                                // counts against us.
                                let scheduled = interval.mul_f64((first_seq + j as u64) as f64);
                                latencies.push(done.saturating_sub(scheduled).as_secs_f64() * 1e3);
                                match response {
                                    Response::Features(_) => ok += 1,
                                    _ => errors += 1,
                                }
                            }
                        }
                        Err(_) => break, // connection failure; stop this thread
                    }
                }
                (sent, ok, errors, latencies)
            })
        })
        .collect();

    steady.wait();
    let allocs_at_steady = metrics.wire_payload_allocs();
    let measured_from = Instant::now();

    let (mut sent, mut ok, mut errors) = (0u64, 0u64, 0u64);
    let mut latencies: Vec<f64> = Vec::new();
    for j in joins {
        let (s, o, e, l) = j.join().expect("load thread panicked");
        sent += s;
        ok += o;
        errors += e;
        latencies.extend(l);
    }
    let elapsed = measured_from.elapsed().as_secs_f64();
    let steady_payload_allocs = metrics.wire_payload_allocs() - allocs_at_steady;

    let snapshot = metrics.snapshot();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let result = LevelResult {
        depth,
        offered_rps,
        client_threads: threads,
        achieved_rps: ok as f64 / elapsed,
        duration_s: elapsed,
        requests: sent,
        ok,
        errors,
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        steady_payload_allocs,
        batches: snapshot.batches,
        batched_requests: snapshot.batched_requests,
        wire: snapshot.wire,
    };
    handle.shutdown();
    Ok(result)
}

pub fn run(quick: bool) -> Result<()> {
    let duration = StdDuration::from_millis(if quick { 400 } else { 1_500 });
    let threads = 4;
    let offered_rps = if quick { 24_000 } else { 32_000 };
    let depths = [1usize, 8, 32];

    let mut table = Table::new(&[
        "depth",
        "offered rps",
        "achieved rps",
        "ok",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "batched",
        "steady allocs",
        "pool hit rate",
    ]);
    let mut results = Vec::new();
    for &depth in &depths {
        let r = run_level(depth, offered_rps, threads, duration)?;
        table.row(vec![
            depth.to_string(),
            r.offered_rps.to_string(),
            f1(r.achieved_rps),
            r.ok.to_string(),
            r.p50_ms.map_or("-".into(), f1),
            r.p95_ms.map_or("-".into(), f1),
            r.p99_ms.map_or("-".into(), f1),
            r.batched_requests.to_string(),
            r.steady_payload_allocs.to_string(),
            r.wire
                .pool_hit_rate
                .map_or("-".into(), |h| format!("{h:.3}")),
        ]);
        results.push(r);
    }
    table.print();

    // The zero-copy claim is structural, not statistical: once the frame
    // buffers are grown, the steady-state read path must not allocate.
    for r in &results {
        if r.steady_payload_allocs > 0 {
            return Err(fstore_common::FsError::Storage(format!(
                "depth {} allocated {} payload buffers at steady state (want 0)",
                r.depth, r.steady_payload_allocs
            )));
        }
    }

    let base = results[0].achieved_rps.max(1.0);
    let speedup_depth8 = results[1].achieved_rps / base;
    let speedup_depth32 = results[2].achieved_rps / base;
    let artifact = Artifact {
        experiment: "e21_wire_pipelining".to_string(),
        entities: ENTITIES,
        store_delay_us: STORE_DELAY.as_micros() as u64,
        levels: results,
        speedup_depth8,
        speedup_depth32,
    };
    let path = "BENCH_wire.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .map_err(|e| fstore_common::FsError::Storage(format!("write {path}: {e}")))?;
    println!("\nwrote {path}");
    println!(
        "\nspeedup vs depth 1: {speedup_depth8:.2}x at depth 8, {speedup_depth32:.2}x at depth 32"
    );
    if speedup_depth8 < 1.5 && speedup_depth32 < 1.5 {
        println!("WARNING: expected ≥1.5x from pipelining; this machine did not show it");
    }
    println!(
        "\nShape check: at depth 1 every request pays its own round trip and\n\
         its own worker claim (the batcher never sees more than one job per\n\
         connection), so the open-loop schedule slips and latency grows. At\n\
         depth 8/32 a burst shares one write, one claim, and one batched\n\
         store pass — throughput reaches the offered rate at flat p99, the\n\
         encode path recycles pooled buffers (hit rate ≈ 1), and the read\n\
         path's payload-allocation counter stays exactly flat."
    );
    Ok(())
}
