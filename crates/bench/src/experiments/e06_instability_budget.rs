//! E6 — downstream instability shrinks with the embedding memory budget
//! (paper §3.1.2; Leszczynski et al., "Understanding the downstream
//! instability of word embeddings").
//!
//! Instability = % of downstream predictions that flip when the model is
//! retrained on a *re-trained* embedding (different pretraining seed).
//! The memory budget is `dim × bits/dimension`. Leszczynski et al. found
//! instability decreases monotonically as either axis grows; we sweep the
//! same grid.

use crate::table::{pct, Table};
use crate::workloads::{corpus_preset, topic_features};
use fstore_common::Result;
use fstore_embed::sgns::train_sgns;
use fstore_embed::{Corpus, QuantizedTable, SgnsConfig};
use fstore_models::{prediction_flips, Classifier, SoftmaxRegression, TrainConfig};

pub fn run(quick: bool) -> Result<()> {
    let corpus = Corpus::generate(corpus_preset(quick, 61))?;
    let dims: &[usize] = if quick {
        &[8, 16, 32]
    } else {
        &[8, 16, 32, 64]
    };
    let bits: &[u8] = &[2, 4, 8];
    let topics = corpus.kg.num_types();

    let mut table = Table::new(&["dim", "bits", "budget B/ent", "instability", "mean acc"]);

    for &dim in dims {
        // two independently pretrained versions of the same embedding
        let cfg = SgnsConfig {
            dim,
            epochs: 2,
            ..SgnsConfig::default()
        };
        let (v1, _) = train_sgns(
            &corpus,
            SgnsConfig {
                seed: 101,
                ..cfg.clone()
            },
        )?;
        let (v2, _) = train_sgns(&corpus, SgnsConfig { seed: 202, ..cfg })?;

        for &b in bits {
            let t1 = QuantizedTable::quantize(&v1, b)?.dequantize()?;
            let t2 = QuantizedTable::quantize(&v2, b)?.dequantize()?;
            let (x1, ys) = topic_features(&t1, &corpus);
            let (x2, _) = topic_features(&t2, &corpus);
            let m1 = SoftmaxRegression::train(&x1, &ys, topics, &TrainConfig::default())?;
            let m2 = SoftmaxRegression::train(&x2, &ys, topics, &TrainConfig::default())?;
            let p1 = m1.predict_batch(&x1)?;
            let p2 = m2.predict_batch(&x2)?;
            let instability = prediction_flips(&p1, &p2)?;
            let acc = (m1.accuracy(&x1, &ys)? + m2.accuracy(&x2, &ys)?) / 2.0;
            table.row(vec![
                dim.to_string(),
                b.to_string(),
                format!("{}", dim * b as usize / 8),
                pct(instability),
                pct(acc),
            ]);
        }

        // full precision row (32-bit float)
        let (x1, ys) = topic_features(&v1, &corpus);
        let (x2, _) = topic_features(&v2, &corpus);
        let m1 = SoftmaxRegression::train(&x1, &ys, topics, &TrainConfig::default())?;
        let m2 = SoftmaxRegression::train(&x2, &ys, topics, &TrainConfig::default())?;
        let instability = prediction_flips(&m1.predict_batch(&x1)?, &m2.predict_batch(&x2)?)?;
        let acc = (m1.accuracy(&x1, &ys)? + m2.accuracy(&x2, &ys)?) / 2.0;
        table.row(vec![
            dim.to_string(),
            "32 (f32)".into(),
            format!("{}", dim * 4),
            pct(instability),
            pct(acc),
        ]);
    }

    // baseline: seed-only noise of the downstream trainer (same embedding)
    let cfg = SgnsConfig {
        dim: 32,
        epochs: 2,
        seed: 101,
        ..SgnsConfig::default()
    };
    let (v, _) = train_sgns(&corpus, cfg)?;
    let (x, ys) = topic_features(&v, &corpus);
    let ma = SoftmaxRegression::train(&x, &ys, topics, &TrainConfig::default().with_seed(1))?;
    let mb = SoftmaxRegression::train(&x, &ys, topics, &TrainConfig::default().with_seed(2))?;
    let seed_noise = prediction_flips(&ma.predict_batch(&x)?, &mb.predict_batch(&x)?)?;

    println!(
        "{} entities, downstream task = {topics}-way topic classification,\n\
         instability between embeddings pretrained with different seeds\n",
        corpus.config.vocab
    );
    table.print();
    println!(
        "\ndownstream-trainer seed-only noise (same embedding): {}\n\
         Shape check (Leszczynski): instability falls as dim and precision grow,\n\
         and embedding retrains dominate trainer seed noise.",
        pct(seed_noise)
    );
    Ok(())
}
