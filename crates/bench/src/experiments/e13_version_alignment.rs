//! E13 — version alignment keeps deployed models working across embedding
//! updates (paper §4: "if an embedding gets updated but a model that uses
//! it does not, the dot product of the embedding with model parameters can
//! lose meaning which leads to incorrect model predictions").
//!
//! A downstream head is trained on `ent@v1` and *frozen* (deployed). The
//! embedding is then retrained several times with different seeds. We serve
//! the frozen head three ways: still on v1 (stale embedding), on the raw
//! retrain (the §4 failure mode), and on the retrain aligned back into
//! v1's coordinate system with orthogonal Procrustes.

use crate::table::{f3, Table};
use crate::workloads::{corpus_preset, topic_features};
use fstore_common::Result;
use fstore_embed::sgns::train_sgns;
use fstore_embed::{align_to_reference, Corpus, SgnsConfig};
use fstore_models::{Classifier, SoftmaxRegression, TrainConfig};

pub fn run(quick: bool) -> Result<()> {
    let corpus = Corpus::generate(corpus_preset(quick, 131))?;
    let topics = corpus.kg.num_types();
    let cfg = SgnsConfig {
        dim: 32,
        epochs: if quick { 2 } else { 3 },
        ..SgnsConfig::default()
    };

    // v1 and the frozen downstream head.
    let (v1, _) = train_sgns(
        &corpus,
        SgnsConfig {
            seed: 1,
            ..cfg.clone()
        },
    )?;
    let (x1, ys) = topic_features(&v1, &corpus);
    let head = SoftmaxRegression::train(&x1, &ys, topics, &TrainConfig::default())?;
    let v1_acc = head.accuracy(&x1, &ys)?;

    let mut table = Table::new(&[
        "retrain",
        "frozen head on v1",
        "on raw retrain",
        "on aligned retrain",
        "alignment MSD before→after",
    ]);

    let seeds: &[u64] = if quick { &[2, 3, 4] } else { &[2, 3, 4, 5, 6] };
    for &seed in seeds {
        let (vn, _) = train_sgns(
            &corpus,
            SgnsConfig {
                seed,
                ..cfg.clone()
            },
        )?;
        let (xn, _) = topic_features(&vn, &corpus);
        let raw_acc = head.accuracy(&xn, &ys)?;
        let (aligned, report) = align_to_reference(&vn, &v1)?;
        let (xa, _) = topic_features(&aligned, &corpus);
        let aligned_acc = head.accuracy(&xa, &ys)?;
        table.row(vec![
            format!("seed {seed}"),
            f3(v1_acc),
            f3(raw_acc),
            f3(aligned_acc),
            format!("{:.2}→{:.2}", report.msd_before, report.msd_after),
        ]);
    }

    println!(
        "{} entities, frozen {topics}-way head trained on ent@v1; retrains with new seeds\n",
        corpus.config.vocab
    );
    table.print();
    println!(
        "\nShape check (§4): swapping a raw retrain under a frozen head destroys its\n\
         accuracy (the dot products lose meaning); Procrustes-aligning the new\n\
         version back into the old coordinate system restores most of it without\n\
         retraining the head — buying time until the consumer's own release."
    );
    Ok(())
}
