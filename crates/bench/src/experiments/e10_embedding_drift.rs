//! E10 — standard tabular metrics miss embedding drift; embedding-aware
//! monitors catch it (paper §3.1: "existing FS metrics such as null value
//! count do not capture drifts or changes in embeddings with respect to
//! [dot-product similarity]").
//!
//! We inject four kinds of change into a stream of embedding vectors:
//! (a) none, (b) a *semantic rotation* in a correlated subspace crafted to
//! leave every per-dimension marginal unchanged, (c) a mean-direction flip,
//! and (d) a uniform mean shift. Tabular monitors (per-dim KS/PSI with
//! Bonferroni correction, plus the null counter) are compared against the
//! embedding monitors (mean-cosine + MMD).

use crate::table::Table;
use fstore_common::{Result, Rng, Xoshiro256};
use fstore_monitor::drift::{
    DriftAlert, DriftMonitor, DriftThresholds, EmbeddingDriftMonitor, EmbeddingDriftThresholds,
};

const DIMS: usize = 8;

/// Embedding vectors with (i) a strong nonzero mean direction on dims 2..8
/// (real embedding tables are anisotropic) and (ii) a correlated pair in
/// dims (0,1) whose rotation preserves both marginals.
fn sample(n: usize, rotate: bool, flip_mean: bool, shift: f64, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Xoshiro256::seeded(seed);
    (0..n)
        .map(|_| {
            let a = rng.normal();
            let b = rng.normal() * 0.05;
            // dims (0,1): along (1,1), or along (1,−1) when rotated —
            // x and y are exchangeable, so both marginals are unchanged.
            let (x, y) = if rotate {
                (a + b, -(a - b))
            } else {
                (a + b, a - b)
            };
            let mut v = vec![x + shift, y + shift];
            let sign = if flip_mean { -1.0 } else { 1.0 };
            for _ in 2..DIMS {
                v.push(sign * 2.0 + rng.normal() * 0.3 + shift);
            }
            v
        })
        .collect()
}

pub fn run(quick: bool) -> Result<()> {
    let n = if quick { 300 } else { 1_000 };
    let reference = sample(n, false, false, 0.0, 1);

    // Per-dimension tabular monitors with Bonferroni-adjusted thresholds
    // (8 tests per window; without the correction the family-wise false
    // positive rate alone would swamp the comparison).
    let adjusted = DriftThresholds {
        ks_warn_p: 0.05 / DIMS as f64,
        ks_critical_p: 0.001 / DIMS as f64,
        // PSI is a point statistic, not a p-value; widen the warn band to
        // keep its per-window false-positive rate comparable post-correction.
        psi_warn: 0.15,
        psi_critical: 0.3,
    };
    let tabular: Vec<DriftMonitor> = (0..DIMS)
        .map(|d| {
            let col: Vec<f64> = reference.iter().map(|v| v[d]).collect();
            DriftMonitor::fit(format!("dim{d}"), &col, adjusted)
        })
        .collect::<Result<_>>()?;
    let embedding =
        EmbeddingDriftMonitor::fit("emb", &reference, EmbeddingDriftThresholds::default())?;

    let scenarios: Vec<(&str, Vec<Vec<f64>>)> = vec![
        ("no drift (null case)", sample(n, false, false, 0.0, 2)),
        ("semantic rotation", sample(n, true, false, 0.0, 3)),
        ("mean-direction flip", sample(n, false, true, 0.0, 4)),
        ("uniform shift +1.0", sample(n, false, false, 1.0, 5)),
    ];

    let mut table = Table::new(&[
        "injected change",
        "null-count",
        "per-dim KS/PSI (worst)",
        "mean-cosine",
        "MMD",
    ]);

    for (name, live) in &scenarios {
        let mut worst = DriftAlert::Ok;
        for (d, m) in tabular.iter().enumerate() {
            let col: Vec<f64> = live.iter().map(|v| v[d]).collect();
            worst = worst.max(m.alert_level(&col)?);
        }
        let reports = embedding.check(live)?;
        let cos = reports
            .iter()
            .find(|r| r.detector == "mean_cosine")
            .unwrap();
        let mmd = reports.iter().find(|r| r.detector == "mmd").unwrap();
        table.row(vec![
            name.to_string(),
            "Ok (0 nulls)".into(),
            format!("{worst:?}"),
            format!("{:?} ({:.3})", cos.alert, cos.statistic),
            format!("{:?} ({:.4})", mmd.alert, mmd.statistic),
        ]);
    }

    println!(
        "{n}-vector windows, {DIMS}-dim embeddings, monitors fitted on a clean reference\n\
         (per-dim tests Bonferroni-corrected across {DIMS} dimensions)\n"
    );
    table.print();
    println!(
        "\nShape check: the rotation row is the paper's point — null counts and every\n\
         per-dimension test stay quiet while the embedding-aware MMD alarms. The\n\
         mean-direction flip is caught instantly by mean-cosine; the uniform shift\n\
         is the easy case every detector sees."
    );
    Ok(())
}
