//! E4 — feature-quality metrics detect feature errors (paper §2.2.2:
//! freshness, null counts, mutual information).
//!
//! We inject three fault classes into otherwise healthy features — null
//! storms, frozen feeds, duplicated columns — across many trials, and
//! report detection rate and false-positive rate for each detector.

use crate::table::{pct, Table};
use fstore_common::{Duration, EntityKey, Result, Rng, Timestamp, Value, Xoshiro256};
use fstore_core::quality::{ColumnProfile, FeatureQualityReport, QualityIssue, QualityThresholds};
use fstore_storage::OnlineStore;

pub fn run(quick: bool) -> Result<()> {
    let trials = if quick { 40 } else { 200 };
    let rows = 400;
    let thresholds = QualityThresholds::default();
    let mut rng = Xoshiro256::seeded(41);

    let mut table = Table::new(&[
        "detector",
        "fault injected",
        "detection rate",
        "false-positive rate",
    ]);

    // ---------------- null spike ----------------
    let mut hits = 0;
    let mut false_pos = 0;
    for _ in 0..trials {
        let healthy: Vec<Value> = (0..rows)
            .map(|_| {
                if rng.chance(0.02) {
                    Value::Null
                } else {
                    Value::Float(rng.normal())
                }
            })
            .collect();
        let reference = vec![ColumnProfile::of_values("f", &healthy)];

        // faulty window: 30% nulls
        let faulty: Vec<Value> = (0..rows)
            .map(|_| {
                if rng.chance(0.30) {
                    Value::Null
                } else {
                    Value::Float(rng.normal())
                }
            })
            .collect();
        let mut issues = Vec::new();
        FeatureQualityReport::check_null_spikes(
            &reference,
            &[ColumnProfile::of_values("f", &faulty)],
            &thresholds,
            &mut issues,
        );
        hits += usize::from(!issues.is_empty());

        // healthy window again: should stay quiet
        let quiet: Vec<Value> = (0..rows)
            .map(|_| {
                if rng.chance(0.02) {
                    Value::Null
                } else {
                    Value::Float(rng.normal())
                }
            })
            .collect();
        let mut issues = Vec::new();
        FeatureQualityReport::check_null_spikes(
            &reference,
            &[ColumnProfile::of_values("f", &quiet)],
            &thresholds,
            &mut issues,
        );
        false_pos += usize::from(!issues.is_empty());
    }
    table.row(vec![
        "null-rate spike".into(),
        "2% → 30% nulls".into(),
        pct(hits as f64 / trials as f64),
        pct(false_pos as f64 / trials as f64),
    ]);

    // ---------------- frozen feed ----------------
    let mut hits = 0;
    let mut false_pos = 0;
    for trial in 0..trials {
        let online = OnlineStore::default();
        let now = Timestamp::EPOCH + Duration::hours(100);
        let cadence = Duration::hours(1);
        // fresh feature updated within cadence; frozen one stuck for 8h
        let jitter = Duration::minutes(trial as i64 % 50);
        online.put(
            "g",
            &EntityKey::new("e"),
            "fresh",
            Value::Int(1),
            now - jitter,
        );
        online.put(
            "g",
            &EntityKey::new("e"),
            "stuck",
            Value::Int(1),
            now - Duration::hours(8),
        );
        let mut issues = Vec::new();
        FeatureQualityReport::check_frozen_feeds(
            &online,
            "g",
            &[("fresh", cadence), ("stuck", cadence)],
            now,
            &thresholds,
            &mut issues,
        );
        hits +=
            usize::from(issues.iter().any(
                |i| matches!(i, QualityIssue::FrozenFeed { feature, .. } if feature == "stuck"),
            ));
        false_pos +=
            usize::from(issues.iter().any(
                |i| matches!(i, QualityIssue::FrozenFeed { feature, .. } if feature == "fresh"),
            ));
    }
    table.row(vec![
        "frozen feed (freshness)".into(),
        "8h stale @ 1h cadence".into(),
        pct(hits as f64 / trials as f64),
        pct(false_pos as f64 / trials as f64),
    ]);

    // ---------------- duplicated feature (MI) ----------------
    let mut hits = 0;
    let mut false_pos = 0;
    for _ in 0..trials {
        let a: Vec<f64> = (0..rows).map(|_| rng.normal()).collect();
        let dup: Vec<f64> = a.iter().map(|x| 2.0 * x + 0.5).collect(); // affine copy
        let indep: Vec<f64> = (0..rows).map(|_| rng.normal()).collect();
        let mut issues = Vec::new();
        FeatureQualityReport::check_redundancy(
            &[
                ("a".into(), a.clone()),
                ("dup".into(), dup),
                ("indep".into(), indep),
            ],
            &thresholds,
            &mut issues,
        )?;
        hits += usize::from(issues.iter().any(
            |i| matches!(i, QualityIssue::RedundantPair { a, b, .. } if a == "a" && b == "dup"),
        ));
        false_pos += usize::from(issues.iter().any(
            |i| matches!(i, QualityIssue::RedundantPair { a, b, .. } if a == "indep" || b == "indep"),
        ));
    }
    table.row(vec![
        "redundant pair (NMI)".into(),
        "affine duplicate column".into(),
        pct(hits as f64 / trials as f64),
        pct(false_pos as f64 / trials as f64),
    ]);

    println!("{trials} trials per fault class, {rows} rows per window\n");
    table.print();
    println!("\nShape check: ≥95% detection on every fault class with ~0% false positives.");
    Ok(())
}
