//! E18 — chaos: client-side failover under fault injection (DESIGN.md
//! §2.13).
//!
//! Claim: the resilience stack — deadlines on every socket, retry with
//! jittered backoff, an ordered endpoint list behind per-endpoint circuit
//! breakers — turns individual process and network failures into latency,
//! not errors and never wrong answers. A leader and two converged
//! followers serve identical static data while a deterministic fault
//! schedule runs against them:
//!
//! 1. **clean** — baseline window, everything healthy.
//! 2. **corrupt** — half of the leader's response frames have their
//!    payloads replaced with seeded random bytes (framing intact).
//! 3. **stall** — the leader's link freezes mid-stream; only client-side
//!    read deadlines get anyone out.
//! 4. **leader+follower down** — the leader refuses connections AND one
//!    follower is killed outright; reads must land on the survivor. The
//!    killed follower is then restarted on the same port.
//! 5. **recovered** — all faults cleared, the restarted follower back.
//!
//! Two clients run the same closed-loop read mix through every window: a
//! bare `FeatureClient` (reconnects between requests, no retries, no
//! failover) and a `FailoverClient` over [leader, follower1, follower2].
//! Assertions:
//!
//! * FailoverClient availability ≥ 99% across the whole schedule, while
//!   the bare client measurably degrades (≥ 5 points worse).
//! * Zero wrong answers from either client: every successful response is
//!   byte-identical to an unfaulted oracle captured before the chaos.
//! * Bounded recovery: after the faults clear, the failover client is
//!   back to 20 consecutive successes within 5 s.
//!
//! Results are written to `BENCH_chaos.json`.

use crate::table::Table;
use fstore_common::{EntityKey, FsError, Result, Schema, Timestamp, Value, ValueType};
use fstore_embed::{EmbeddingProvenance, EmbeddingTable};
use fstore_repl::{Follower, LeaderParts, ReplLeader};
use fstore_serve::fault::FaultyProxy;
use fstore_serve::{
    fixed_clock, start, BreakerConfig, ClientConfig, ClientError, FailoverClient, FeatureClient,
    IndexSpec, Request, Response, RetryPolicy, ServeConfig, ServeEngine, ServerHandle,
};
use fstore_storage::TableConfig;
use serde::Serialize;
use std::time::{Duration, Instant};

const NOW: Timestamp = Timestamp(60_000);
const EMB_DIM: usize = 8;
const SEED: u64 = 0xe18c_4a05;

#[derive(Serialize)]
struct WindowRow {
    window: String,
    fault: String,
    failover_ok: u64,
    failover_total: u64,
    bare_ok: u64,
    bare_total: u64,
}

#[derive(Serialize)]
struct Artifact {
    experiment: String,
    seed: u64,
    windows: Vec<WindowRow>,
    failover_availability: f64,
    bare_availability: f64,
    wrong_answers: u64,
    failed_over_calls: u64,
    frames_corrupted: u64,
    connections_refused: u64,
    recovery_ms: f64,
    recovery_bound_ms: f64,
}

fn serve_config(addr: &str) -> ServeConfig {
    ServeConfig::builder()
        .addr(addr)
        .workers(2)
        .queue_depth(64)
        .max_batch(8)
        .build()
        .expect("static serve config")
}

fn start_server(engine: ServeEngine, addr: &str) -> Result<ServerHandle> {
    start(engine, serve_config(addr)).map_err(|e| FsError::Storage(format!("start {addr}: {e}")))
}

/// The read mix both clients replay, round-robin.
fn request_mix() -> Vec<Request> {
    vec![
        Request::GetFeatures {
            group: "user".into(),
            entity: "u1".into(),
            features: vec!["score".into()],
        },
        Request::GetEmbedding {
            table: "emb".into(),
            key: "e0002".into(),
        },
        Request::SearchNearest {
            table: "emb".into(),
            query: vec![1.0; EMB_DIM],
            k: 5,
            options: Default::default(),
        },
        Request::GetFeatures {
            group: "user".into(),
            entity: "u3".into(),
            features: vec!["score".into()],
        },
    ]
}

/// Short client deadlines: faults must cost milliseconds, not the OS
/// defaults' minutes.
fn chaos_client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_millis(150)),
        read_timeout: Some(Duration::from_millis(150)),
        write_timeout: Some(Duration::from_millis(150)),
        deadline_budget: None,
        ..ClientConfig::default()
    }
}

fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base_backoff: Duration::from_millis(5),
        multiplier: 2.0,
        max_backoff: Duration::from_millis(100),
        jitter: 0.25,
    }
}

fn chaos_breakers() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: 2,
        open_cooldown: Duration::from_millis(300),
    }
}

/// A bare client that reconnects between requests but never retries a
/// request — the degradation baseline failover is measured against.
struct BareReader {
    addr: String,
    conn: Option<FeatureClient>,
}

impl BareReader {
    fn call(&mut self, request: &Request) -> std::result::Result<Response, ClientError> {
        if self.conn.is_none() {
            self.conn = Some(
                FeatureClient::connect_with(self.addr.as_str(), &chaos_client_config())
                    .map_err(ClientError::Io)?,
            );
        }
        let result = self.conn.as_mut().expect("just connected").call(request);
        if result.is_err() {
            self.conn = None;
        }
        result
    }
}

/// Score one answer against the oracle: `Some(true)` = correct success,
/// `Some(false)` = WRONG ANSWER, `None` = unavailable (error of any
/// kind — those hit availability, not correctness).
fn score(
    outcome: &std::result::Result<Response, ClientError>,
    oracle_bytes: &[u8],
) -> Option<bool> {
    match outcome {
        Ok(Response::Error { .. }) | Err(_) => None,
        Ok(response) => Some(response.encode().as_ref() == oracle_bytes),
    }
}

pub fn run(quick: bool) -> Result<()> {
    let window = Duration::from_millis(if quick { 300 } else { 800 });
    let recovery_bound = Duration::from_secs(5);

    println!(
        "1 leader + 2 converged followers, static data; fault windows of {window:?};\n\
         failover client: 150ms socket deadlines, 6 attempts, breakers (2 failures,\n\
         300ms cooldown); bare client: same deadlines, no retries, no failover\n"
    );

    // ------------------------------------------------------------------
    // Topology: leader behind a fault proxy; two followers bootstrapped
    // directly and converged BEFORE any traffic, so all three serve
    // byte-identical answers for the (static) measurement data.
    // ------------------------------------------------------------------
    let leader = ReplLeader::with_retention(LeaderParts::new(), 256);
    leader.parts().offline.write(|s| {
        s.create_table(
            "events",
            TableConfig::new(Schema::of(&[("n", ValueType::Int)])),
        )
    })?;
    let mut emb = EmbeddingTable::new(EMB_DIM)?;
    for i in 0..64 {
        let v: Vec<f32> = (0..EMB_DIM)
            .map(|d| (i * EMB_DIM + d) as f32 * 0.125)
            .collect();
        emb.insert(format!("e{i:04}"), v)?;
    }
    leader
        .parts()
        .embeddings
        .publish("emb", emb, EmbeddingProvenance::default(), NOW)?;
    leader.parts().indexes.build("emb", &IndexSpec::Flat)?;
    for u in 0..5 {
        leader.put_online(
            "user",
            &EntityKey::new(format!("u{u}")),
            &[("score", Value::Float(u as f64 * 0.25))],
            NOW,
        )?;
    }

    let leader_handle = start_server(leader.engine(fixed_clock(NOW)), "127.0.0.1:0")?;
    let leader_addr = leader_handle.addr();

    let follower1 = Follower::bootstrap(leader_addr.to_string())
        .map_err(|e| FsError::Storage(format!("bootstrap follower 1: {e}")))?;
    let follower2 = Follower::bootstrap(leader_addr.to_string())
        .map_err(|e| FsError::Storage(format!("bootstrap follower 2: {e}")))?;
    let f1_handle = start_server(follower1.engine(fixed_clock(NOW)), "127.0.0.1:0")?;
    let f2_handle = start_server(follower2.engine(fixed_clock(NOW)), "127.0.0.1:0")?;
    let f1_addr = f1_handle.addr().to_string();
    // Follower 1's handle moves through kill/restart; Some = currently up.
    let mut f1_current: Option<ServerHandle> = Some(f1_handle);

    let proxy = FaultyProxy::start(leader_addr, SEED)
        .map_err(|e| FsError::Storage(format!("start fault proxy: {e}")))?;
    let faults = proxy.faults();

    // ------------------------------------------------------------------
    // Oracle: the unfaulted leader's exact bytes for every request in
    // the mix, captured over a direct (proxy-free) connection.
    // ------------------------------------------------------------------
    let mix = request_mix();
    let mut direct = FeatureClient::connect(leader_addr)
        .map_err(|e| FsError::Storage(format!("oracle connect: {e}")))?;
    let oracle: Vec<Vec<u8>> = mix
        .iter()
        .map(|request| {
            let response = direct
                .call(request)
                .map_err(|e| FsError::Storage(format!("oracle call: {e}")))?;
            assert!(
                !matches!(response, Response::Error { .. }),
                "oracle request failed: {response:?}"
            );
            Ok(response.encode().to_vec())
        })
        .collect::<Result<_>>()?;
    drop(direct);

    // Both measured clients route leader traffic through the proxy.
    let proxy_addr = proxy.addr().to_string();
    let mut failover = FailoverClient::connect(
        &[
            proxy_addr.as_str(),
            f1_addr.as_str(),
            &f2_handle.addr().to_string(),
        ],
        chaos_client_config(),
        chaos_retry(),
        chaos_breakers(),
    );
    let mut bare = BareReader {
        addr: proxy_addr.clone(),
        conn: None,
    };

    // ------------------------------------------------------------------
    // The fault schedule. Each window drives both clients through the
    // mix until the window closes, scoring every answer.
    // ------------------------------------------------------------------
    let mut windows: Vec<WindowRow> = Vec::new();
    let mut wrong_answers = 0u64;

    let schedule: [(&str, &str); 5] = [
        ("clean", "none"),
        ("corrupt", "50% of leader response payloads randomized"),
        ("stall", "leader link frozen"),
        ("dark", "leader refuses connections; follower 1 killed"),
        ("recovered", "all faults cleared; follower 1 restarted"),
    ];
    for (name, fault) in schedule {
        // Arm this window's faults.
        match name {
            "clean" => {}
            "corrupt" => faults.set_corrupt_probability(0.5),
            "stall" => {
                faults.clear();
                faults.set_stall(true);
            }
            "dark" => {
                faults.clear();
                faults.set_refuse_connections(true);
                // Kill follower 1 outright: its clients see hard refusals.
                if let Some(h) = f1_current.take() {
                    h.shutdown();
                }
            }
            "recovered" => {
                faults.clear();
            }
            _ => unreachable!(),
        }
        let (mut fo_ok, mut fo_total) = (0u64, 0u64);
        let (mut bare_ok, mut bare_total) = (0u64, 0u64);
        let until = Instant::now() + window;
        let mut i = 0usize;
        while Instant::now() < until {
            let request = &mix[i % mix.len()];
            let oracle_bytes = &oracle[i % mix.len()];
            i += 1;

            fo_total += 1;
            match score(&failover.call(request), oracle_bytes) {
                Some(true) => fo_ok += 1,
                Some(false) => wrong_answers += 1,
                None => {}
            }
            bare_total += 1;
            match score(&bare.call(request), oracle_bytes) {
                Some(true) => bare_ok += 1,
                Some(false) => wrong_answers += 1,
                None => {}
            }
        }
        if name == "dark" {
            // Restart the killed follower on its old port before the
            // recovery window measures.
            f1_current = Some(start_server(follower1.engine(fixed_clock(NOW)), &f1_addr)?);
        }
        windows.push(WindowRow {
            window: name.to_string(),
            fault: fault.to_string(),
            failover_ok: fo_ok,
            failover_total: fo_total,
            bare_ok,
            bare_total,
        });
    }

    // ------------------------------------------------------------------
    // Recovery: from the moment all faults are clear, how long until the
    // failover client strings together 20 consecutive oracle-correct
    // answers?
    // ------------------------------------------------------------------
    let recovery_started = Instant::now();
    let mut streak = 0usize;
    let mut i = 0usize;
    while streak < 20 {
        if recovery_started.elapsed() > recovery_bound {
            break;
        }
        let request = &mix[i % mix.len()];
        let oracle_bytes = &oracle[i % mix.len()];
        i += 1;
        match score(&failover.call(request), oracle_bytes) {
            Some(true) => streak += 1,
            Some(false) => {
                wrong_answers += 1;
                streak = 0;
            }
            None => streak = 0,
        }
    }
    let recovery_ms = recovery_started.elapsed().as_secs_f64() * 1e3;

    // ------------------------------------------------------------------
    // Report and assert.
    // ------------------------------------------------------------------
    let mut table = Table::new(&["window", "fault", "failover ok/total", "bare ok/total"]);
    for w in &windows {
        table.row(vec![
            w.window.clone(),
            w.fault.clone(),
            format!("{}/{}", w.failover_ok, w.failover_total),
            format!("{}/{}", w.bare_ok, w.bare_total),
        ]);
    }
    table.print();

    let fo_ok: u64 = windows.iter().map(|w| w.failover_ok).sum();
    let fo_total: u64 = windows.iter().map(|w| w.failover_total).sum();
    let b_ok: u64 = windows.iter().map(|w| w.bare_ok).sum();
    let b_total: u64 = windows.iter().map(|w| w.bare_total).sum();
    let failover_availability = fo_ok as f64 / fo_total.max(1) as f64;
    let bare_availability = b_ok as f64 / b_total.max(1) as f64;
    let stats = failover.stats();

    println!(
        "\navailability: failover {:.2}% ({fo_ok}/{fo_total}), bare {:.2}% ({b_ok}/{b_total})\n\
         wrong answers: {wrong_answers}; failed-over calls: {}; frames corrupted: {};\n\
         connections refused: {}; recovery to 20-streak: {recovery_ms:.0} ms",
        failover_availability * 100.0,
        bare_availability * 100.0,
        stats.failed_over_calls,
        faults.frames_corrupted(),
        faults.connections_refused(),
    );

    assert!(
        failover_availability >= 0.99,
        "failover availability {failover_availability:.4} below the 99% floor"
    );
    assert!(
        bare_availability <= failover_availability - 0.05,
        "the bare client should measurably degrade under faults \
         (bare {bare_availability:.4} vs failover {failover_availability:.4})"
    );
    assert_eq!(
        wrong_answers, 0,
        "a fault produced a wrong answer — corruption or failover broke correctness"
    );
    assert!(
        stats.failed_over_calls > 0,
        "the schedule must actually force reads onto the followers"
    );
    assert!(
        faults.frames_corrupted() > 0 && faults.connections_refused() > 0,
        "fault injection never fired; the experiment is vacuous"
    );
    assert!(
        streak >= 20 && recovery_ms <= recovery_bound.as_secs_f64() * 1e3,
        "failover client did not recover within {recovery_bound:?} (streak {streak})"
    );

    let artifact = Artifact {
        experiment: "e18_chaos".to_string(),
        seed: SEED,
        windows,
        failover_availability,
        bare_availability,
        wrong_answers,
        failed_over_calls: stats.failed_over_calls,
        frames_corrupted: faults.frames_corrupted(),
        connections_refused: faults.connections_refused(),
        recovery_ms,
        recovery_bound_ms: recovery_bound.as_secs_f64() * 1e3,
    };
    let path = "BENCH_chaos.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .map_err(|e| FsError::Storage(format!("write {path}: {e}")))?;
    println!("\nwrote {path}");

    proxy.shutdown();
    if let Some(h) = f1_current {
        h.shutdown();
    }
    f2_handle.shutdown();
    leader_handle.shutdown();
    println!(
        "\nShape check: the failover client turns every injected fault into\n\
         retries and endpoint walks — availability stays above 99% while the\n\
         bare client eats every fault as an error. Nothing ever returns bytes\n\
         that differ from the unfaulted oracle: corruption is caught by the\n\
         total decoder, and followers serve byte-identical snapshots."
    );
    Ok(())
}
