//! E9 — embedding serving at scale needs ANN indexes (paper §4: "users
//! need tools for searching and querying these embeddings … performing
//! these operations at industrial scale will be non-trivial").
//!
//! The classic recall/latency frontier: Flat (exact) vs IVF (nprobe sweep)
//! vs HNSW (ef sweep) on one vector set.

use crate::table::{f1, f3, Table};
use crate::workloads::clustered_vectors;
use fstore_common::Result;
use fstore_index::{
    recall_at_k, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, VectorIndex,
};
use std::time::Instant;

pub fn run(quick: bool) -> Result<()> {
    let n = if quick { 20_000 } else { 100_000 };
    let dim = 32;
    let clusters = 64;
    let n_queries = if quick { 100 } else { 300 };
    let k = 10;

    // Clustered vectors: the distributional shape of real embedding tables
    // (and the structure a coarse quantizer exploits).
    let mut data = clustered_vectors(n + n_queries, dim, clusters, 0.4, 91);
    let queries = data.split_off(n);

    println!(
        "{n} vectors × {dim} dims ({clusters} latent clusters), {n_queries} queries, recall@{k}\n"
    );

    let build_start = Instant::now();
    let flat = FlatIndex::build(data.clone())?;
    let flat_build = build_start.elapsed();

    let build_start = Instant::now();
    let ivf = IvfIndex::build(
        data.clone(),
        IvfConfig {
            nlist: (n as f64).sqrt() as usize,
            train_iters: 10,
            ..IvfConfig::default()
        },
    )?;
    let ivf_build = build_start.elapsed();

    let build_start = Instant::now();
    let hnsw = HnswIndex::build(
        data.clone(),
        HnswConfig {
            m: 16,
            ef_construction: if quick { 64 } else { 100 },
            ..HnswConfig::default()
        },
    )?;
    let hnsw_build = build_start.elapsed();

    let mut table = Table::new(&[
        "index",
        "param",
        "recall@10",
        "query µs",
        "speedup",
        "build s",
    ]);

    // exact baseline latency
    let start = Instant::now();
    for q in &queries {
        flat.search(q, k)?;
    }
    let flat_us = start.elapsed().as_secs_f64() * 1e6 / n_queries as f64;
    table.row(vec![
        "flat (exact)".into(),
        "-".into(),
        f3(1.0),
        f1(flat_us),
        "1.0x".into(),
        f1(flat_build.as_secs_f64()),
    ]);

    for nprobe in [1usize, 2, 4, 8, 16, 32] {
        let start = Instant::now();
        for q in &queries {
            ivf.search_with_probes(q, k, nprobe)?;
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / n_queries as f64;
        // recall measured via a thin adapter running the probe setting
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let truth = flat.search(q, k)?;
            let got = ivf.search_with_probes(q, k, nprobe)?;
            let ids: Vec<usize> = got.iter().map(|h| h.0).collect();
            hit += truth.iter().filter(|(id, _)| ids.contains(id)).count();
            total += truth.len();
        }
        table.row(vec![
            "ivf".into(),
            format!("nprobe={nprobe}"),
            f3(hit as f64 / total as f64),
            f1(us),
            format!("{:.1}x", flat_us / us),
            f1(ivf_build.as_secs_f64()),
        ]);
    }

    for ef in [16usize, 32, 64, 128, 256] {
        let start = Instant::now();
        for q in &queries {
            hnsw.search_with_ef(q, k, ef)?;
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / n_queries as f64;
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let truth = flat.search(q, k)?;
            let got = hnsw.search_with_ef(q, k, ef)?;
            let ids: Vec<usize> = got.iter().map(|h| h.0).collect();
            hit += truth.iter().filter(|(id, _)| ids.contains(id)).count();
            total += truth.len();
        }
        table.row(vec![
            "hnsw".into(),
            format!("ef={ef}"),
            f3(hit as f64 / total as f64),
            f1(us),
            format!("{:.1}x", flat_us / us),
            f1(hnsw_build.as_secs_f64()),
        ]);
    }

    table.print();
    let _ = recall_at_k(&hnsw, &flat, &queries, k)?; // exported API smoke-use
    println!(
        "\nShape check: both ANN families sweep out a recall/latency frontier —\n\
         ~0.9+ recall at a large speedup over exact scan; recall → 1 as\n\
         nprobe/ef grow; HNSW pays its cost at build time."
    );
    Ok(())
}
