//! E9 — embedding serving at scale needs ANN indexes (paper §4: "users
//! need tools for searching and querying these embeddings … performing
//! these operations at industrial scale will be non-trivial").
//!
//! The classic recall/latency frontier: Flat (exact) vs IVF (nprobe sweep)
//! vs HNSW (ef sweep) on one vector set. Every sweep point goes through
//! the one generic entry point — `VectorIndex::search` with
//! [`SearchParams`] — so the harness below never names a concrete index
//! type after construction.

use crate::table::{f1, f3, Table};
use crate::workloads::clustered_vectors;
use fstore_common::Result;
use fstore_index::{
    recall_at_k, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, SearchParams, VectorIndex,
};
use std::time::Instant;

/// Mean per-query latency (µs) of one `(index, params)` sweep point.
fn mean_query_us(
    index: &dyn VectorIndex,
    queries: &[Vec<f32>],
    k: usize,
    params: &SearchParams,
) -> Result<f64> {
    let start = Instant::now();
    for q in queries {
        index.search(q, k, params)?;
    }
    Ok(start.elapsed().as_secs_f64() * 1e6 / queries.len() as f64)
}

pub fn run(quick: bool) -> Result<()> {
    let n = if quick { 20_000 } else { 100_000 };
    let dim = 32;
    let clusters = 64;
    let n_queries = if quick { 100 } else { 300 };
    let k = 10;

    // Clustered vectors: the distributional shape of real embedding tables
    // (and the structure a coarse quantizer exploits).
    let mut data = clustered_vectors(n + n_queries, dim, clusters, 0.4, 91);
    let queries = data.split_off(n);

    println!(
        "{n} vectors × {dim} dims ({clusters} latent clusters), {n_queries} queries, recall@{k}\n"
    );

    let build_start = Instant::now();
    let flat = FlatIndex::build(data.clone())?;
    let flat_build = build_start.elapsed();

    let build_start = Instant::now();
    let ivf = IvfIndex::build(
        data.clone(),
        IvfConfig {
            nlist: (n as f64).sqrt() as usize,
            train_iters: 10,
            ..IvfConfig::default()
        },
    )?;
    let ivf_build = build_start.elapsed();

    let build_start = Instant::now();
    let hnsw = HnswIndex::build(
        data.clone(),
        HnswConfig {
            m: 16,
            ef_construction: if quick { 64 } else { 100 },
            ..HnswConfig::default()
        },
    )?;
    let hnsw_build = build_start.elapsed();

    let mut table = Table::new(&[
        "index",
        "param",
        "recall@10",
        "query µs",
        "speedup",
        "build s",
    ]);

    // exact baseline latency
    let flat_us = mean_query_us(&flat, &queries, k, &SearchParams::default())?;
    table.row(vec![
        "flat (exact)".into(),
        "-".into(),
        f3(1.0),
        f1(flat_us),
        "1.0x".into(),
        f1(flat_build.as_secs_f64()),
    ]);

    // Every sweep point is the same generic (index, params) pair; only the
    // knob differs. Label and build time ride along per family.
    let mut sweep: Vec<(&dyn VectorIndex, SearchParams, String, f64)> = Vec::new();
    for nprobe in [1usize, 2, 4, 8, 16, 32] {
        sweep.push((
            &ivf,
            SearchParams::with_nprobe(nprobe),
            format!("nprobe={nprobe}"),
            ivf_build.as_secs_f64(),
        ));
    }
    for ef in [16usize, 32, 64, 128, 256] {
        sweep.push((
            &hnsw,
            SearchParams::with_ef(ef),
            format!("ef={ef}"),
            hnsw_build.as_secs_f64(),
        ));
    }

    for (index, params, label, build_s) in sweep {
        let us = mean_query_us(index, &queries, k, &params)?;
        let recall = recall_at_k(index, &flat, &queries, k, &params)?;
        let family = if label.starts_with("nprobe") {
            "ivf"
        } else {
            "hnsw"
        };
        table.row(vec![
            family.into(),
            label,
            f3(recall),
            f1(us),
            format!("{:.1}x", flat_us / us),
            f1(build_s),
        ]);
    }

    table.print();
    println!(
        "\nShape check: both ANN families sweep out a recall/latency frontier —\n\
         ~0.9+ recall at a large speedup over exact scan; recall → 1 as\n\
         nprobe/ef grow; HNSW pays its cost at build time."
    );
    Ok(())
}
