//! E22 — larger-than-RAM embedding serving through the tier (paper §4's
//! "entire embedding ecosystems" scale claim).
//!
//! Claim: embedding versions accumulate — every retrain adds one — and
//! pinning them all in RAM makes version history a luxury. The tier keeps
//! the hot (latest, index-referenced) versions resident and spills cold
//! history to block-aligned segments served through a bounded hot-block
//! cache, so a working set several times the RAM budget serves correctly
//! with bounded memory.
//!
//! Setup: publish a version history whose total vector payload is ≥4× the
//! tier's RAM budget, demote, and drive `GetEmbedding` over a real TCP
//! socket with a skewed version mix (hot latest, cold tail). Every
//! response is compared byte-for-byte against a fully-resident oracle
//! built at publish time. Acceptance is structural, not statistical:
//!
//! * working set ≥ 4× budget (checked, or the run is meaningless),
//! * peak resident embedding bytes ≤ budget,
//! * every vector byte-identical to the oracle,
//! * embedding responses never copy vectors (the E21 steady-state
//!   allocation discipline, extended to the embedding path),
//!
//! and the cache hit rate plus fault latency p50/p99 are reported in the
//! table and in `BENCH_tier.json`.

use fstore_common::{Result, Rng, Timestamp, Xoshiro256};
use fstore_core::FeatureServer;
use fstore_embed::{EmbeddingDb, EmbeddingProvenance, EmbeddingTable};
use fstore_serve::{fixed_clock, start, ServeConfig, ServeEngine, StoreApi, TierSnapshot};
use fstore_storage::OnlineStore;
use fstore_tier::{TierConfig, TieredEmbeddings};
use serde::Serialize;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use crate::table::{f1, f3, Table};

const DIM: usize = 64;
const NOW: Timestamp = Timestamp(60_000);

#[derive(Serialize)]
struct Artifact {
    experiment: String,
    dim: usize,
    rows_per_version: usize,
    versions: u32,
    budget_bytes: u64,
    working_set_bytes: u64,
    working_set_over_budget: f64,
    requests: u64,
    byte_identical: bool,
    client_p50_ms: Option<f64>,
    client_p99_ms: Option<f64>,
    embed_copies: u64,
    tier: TierSnapshot,
}

fn vector_for(version: u32, row: usize) -> Vec<f32> {
    (0..DIM)
        .map(|j| (u64::from(version) * 1_000_003 + (row * DIM + j) as u64) as f32 * 0.0625)
        .collect()
}

fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    Some(sorted[idx])
}

fn tier_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fstore_e22_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

pub fn run(quick: bool) -> Result<()> {
    let versions: u32 = if quick { 8 } else { 16 };
    let rows: usize = if quick { 128 } else { 256 };
    let requests: u64 = if quick { 4_000 } else { 20_000 };
    let version_bytes = (rows * DIM * 4) as u64;
    let working_set = u64::from(versions) * version_bytes;
    // The budget is a quarter of the working set — the tier serves 4× RAM.
    let budget = working_set / 4;

    // Publish the version history; the oracle stays fully resident here.
    let db = EmbeddingDb::new();
    let mut oracle: HashMap<(u32, String), Vec<f32>> = HashMap::new();
    for version in 1..=versions {
        let mut t = EmbeddingTable::new(DIM)?;
        for row in 0..rows {
            let key = format!("k{row:04}");
            let v = vector_for(version, row);
            oracle.insert((version, key.clone()), v.clone());
            t.insert(key, v)?;
        }
        db.publish(
            "emb",
            t,
            EmbeddingProvenance::default(),
            Timestamp::millis(i64::from(version)),
        )?;
    }

    let mut config = TierConfig::new(tier_dir(), budget);
    config.block_bytes = 16 * 1024;
    let tier = TieredEmbeddings::attach(&db, config)?;
    tier.demote_now()?;

    let engine = ServeEngine::new(
        FeatureServer::new(Arc::new(OnlineStore::default())),
        fixed_clock(NOW),
    )
    .with_embeddings(db.clone());
    let handle = start(engine, ServeConfig::default())
        .map_err(|e| fstore_common::FsError::Storage(format!("bind loopback: {e}")))?;
    tier.attach_metrics(&handle.metrics());

    // Skewed access over the wire: most reads hit the latest (resident)
    // version, the tail sweeps cold history so the pager earns its keep.
    let mut client = fstore_serve::FeatureClient::connect(handle.addr())
        .map_err(|e| fstore_common::FsError::Storage(format!("connect: {e}")))?;
    let mut rng = Xoshiro256::seeded(22);
    let mut latencies: Vec<f64> = Vec::with_capacity(requests as usize);
    let mut byte_identical = true;
    for _ in 0..requests {
        let version = if rng.next_u64() % 100 < 40 {
            versions // hot: the pinned latest
        } else {
            (rng.next_u64() % u64::from(versions)) as u32 + 1
        };
        let row = (rng.next_u64() as usize) % rows;
        let key = format!("k{row:04}");
        let table = format!("emb@v{version}");
        let t0 = Instant::now();
        let read = client
            .get_embedding(&table, &key)
            .map_err(|e| fstore_common::FsError::Storage(format!("read {table}/{key}: {e}")))?;
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        if read.vector != oracle[&(version, key)] {
            byte_identical = false;
        }
    }
    latencies.sort_by(|a, b| a.total_cmp(b));

    let snapshot = handle.metrics().snapshot();
    let tier_section = snapshot
        .tier
        .expect("tier metrics provider wired into the server");
    let embed_copies = snapshot.wire.embed_copies;

    let mut table = Table::new(&["metric", "value"]);
    table
        .row(vec![
            "working set / budget".into(),
            format!(
                "{} KiB / {} KiB ({:.1}x)",
                working_set / 1024,
                budget / 1024,
                working_set as f64 / budget as f64
            ),
        ])
        .row(vec![
            "peak resident".into(),
            format!("{} KiB", tier_section.peak_resident_bytes / 1024),
        ])
        .row(vec![
            "spilled".into(),
            format!(
                "{} versions, {} KiB",
                tier_section.spilled_versions,
                tier_section.spilled_bytes / 1024
            ),
        ])
        .row(vec![
            "cache hit rate".into(),
            tier_section.hit_rate.map_or("-".into(), f3),
        ])
        .row(vec![
            "faults (p50 / p99 ms)".into(),
            format!(
                "{} ({} / {})",
                tier_section.faults,
                tier_section.fault_p50_ms.map_or("-".into(), f3),
                tier_section.fault_p99_ms.map_or("-".into(), f3)
            ),
        ])
        .row(vec![
            "client p50 / p99 ms".into(),
            format!(
                "{} / {}",
                percentile(&latencies, 0.50).map_or("-".into(), f1),
                percentile(&latencies, 0.99).map_or("-".into(), f1)
            ),
        ])
        .row(vec![
            "demotions / evictions".into(),
            format!("{} / {}", tier_section.demotions, tier_section.evictions),
        ])
        .row(vec!["embed copies".into(), embed_copies.to_string()])
        .row(vec!["byte identical".into(), byte_identical.to_string()]);
    table.print();

    // Acceptance — structural, loud failures.
    if working_set < 4 * budget {
        return Err(fstore_common::FsError::Storage(format!(
            "working set {working_set} under 4x budget {budget}; the run proves nothing"
        )));
    }
    if tier_section.peak_resident_bytes > budget {
        return Err(fstore_common::FsError::Storage(format!(
            "peak resident {} exceeded the {budget}-byte budget",
            tier_section.peak_resident_bytes
        )));
    }
    if !byte_identical {
        return Err(fstore_common::FsError::Storage(
            "a tiered read diverged from the fully-resident oracle".into(),
        ));
    }
    if embed_copies > 0 {
        return Err(fstore_common::FsError::Storage(format!(
            "{embed_copies} embedding responses copied their vector (want 0)"
        )));
    }

    let artifact = Artifact {
        experiment: "e22_tiered_embeddings".to_string(),
        dim: DIM,
        rows_per_version: rows,
        versions,
        budget_bytes: budget,
        working_set_bytes: working_set,
        working_set_over_budget: working_set as f64 / budget as f64,
        requests,
        byte_identical,
        client_p50_ms: percentile(&latencies, 0.50),
        client_p99_ms: percentile(&latencies, 0.99),
        embed_copies,
        tier: tier_section,
    };
    let path = "BENCH_tier.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .map_err(|e| fstore_common::FsError::Storage(format!("write {path}: {e}")))?;
    println!("\nwrote {path}");
    println!(
        "\nShape check: a working set {:.1}x the RAM budget served entirely\n\
         over TCP with resident embedding bytes bounded by the budget, every\n\
         vector byte-identical to the resident oracle, and zero per-response\n\
         vector copies. Cold-version reads pay a block fault (p99 above);\n\
         re-reads hit the cache at the rate reported.",
        working_set as f64 / budget as f64
    );

    handle.shutdown();
    tier.shutdown();
    Ok(())
}
