//! E3 — streaming aggregation keeps online features fresh (paper §2.2.1).
//!
//! The same event stream is served two ways: a sliding-window streaming
//! pipeline (windows close continuously) vs batch materialization on a
//! fixed cadence. We measure the *staleness* of the online value at random
//! probe instants — the gap between "now" and the data the value reflects —
//! plus end-to-end throughput of the streaming path.

use crate::table::{f1, Table};
use fstore_common::{Duration, EntityKey, Result, Rng, Timestamp, Value, Xoshiro256};
use fstore_query::AggFunc;
use fstore_storage::{OfflineDb, OnlineStore};
use fstore_stream::{Event, StreamAggregator, StreamPipeline, WindowSpec};
use std::sync::Arc;
use std::time::Instant;

pub fn run(quick: bool) -> Result<()> {
    let horizon_hours = if quick { 6 } else { 24 };
    let events_per_sec = 2.0;
    let mut rng = Xoshiro256::seeded(31);

    // One Poisson event stream over `horizon_hours`.
    let mut events = Vec::new();
    let mut t = Timestamp::EPOCH;
    let end = Timestamp::EPOCH + Duration::hours(horizon_hours);
    while t < end {
        t += Duration::millis((rng.exponential(events_per_sec) * 1_000.0) as i64 + 1);
        let user = format!("u{}", rng.below(50));
        events.push(Event::new(user, t, 1.0));
    }

    let mut table = Table::new(&[
        "serving path",
        "updates",
        "mean staleness s",
        "p95 staleness s",
        "throughput kev/s",
    ]);

    // --- streaming path: sliding 15m window, 1m slide ---
    let online = Arc::new(OnlineStore::default());
    let offline = OfflineDb::new();
    let agg = StreamAggregator::new(
        "events_15m",
        AggFunc::Count,
        WindowSpec::sliding(Duration::minutes(15), Duration::minutes(1)),
        Duration::seconds(30),
    )?;
    let mut pipeline = StreamPipeline::new(agg, "user", Arc::clone(&online), offline)?;
    let start = Instant::now();
    // track per-probe staleness: when an event arrives we know "now"; the
    // online value's freshness stamp is its window end.
    let mut staleness = Vec::new();
    let probe_every = events.len() / 500;
    for (i, ev) in events.iter().enumerate() {
        pipeline.push(ev)?;
        if probe_every > 0 && i % probe_every == 0 {
            if let Some(e) = online.get("user", &EntityKey::new("u0"), "events_15m") {
                staleness.push((ev.event_time - e.written_at).as_millis() as f64 / 1_000.0);
            }
        }
    }
    let elapsed = start.elapsed();
    let report = pipeline.report();
    push_row(
        &mut table,
        "streaming (1m slide)",
        report.online_writes,
        &staleness,
        events.len(),
        elapsed,
    );

    // --- batch path: recompute every `cadence` ---
    for cadence_min in [15i64, 60, 240] {
        let online = OnlineStore::default();
        let cadence = Duration::minutes(cadence_min);
        let mut next_run = Timestamp::EPOCH + cadence;
        let mut staleness = Vec::new();
        let mut updates = 0u64;
        // batch job: at each cadence tick, write the count of the last 15m
        // (same feature semantics, stale data)
        let mut window_events: Vec<&Event> = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            window_events.push(ev);
            while ev.event_time >= next_run {
                // materialize: count per user over (next_run-15m, next_run]
                let lo = next_run - Duration::minutes(15);
                let mut counts = std::collections::HashMap::new();
                for e in &window_events {
                    if e.event_time > lo && e.event_time <= next_run {
                        *counts.entry(e.entity.as_str().to_string()).or_insert(0i64) += 1;
                    }
                }
                for (user, c) in counts {
                    online.put(
                        "user",
                        &EntityKey::new(user),
                        "events_15m",
                        Value::Int(c),
                        next_run,
                    );
                    updates += 1;
                }
                next_run += cadence;
            }
            if probe_every > 0 && i % probe_every == 0 {
                if let Some(e) = online.get("user", &EntityKey::new("u0"), "events_15m") {
                    staleness.push((ev.event_time - e.written_at).as_millis() as f64 / 1_000.0);
                }
            }
        }
        push_row(
            &mut table,
            &format!("batch (cadence {cadence_min}m)"),
            updates,
            &staleness,
            0,
            std::time::Duration::ZERO,
        );
    }

    println!(
        "{} events over {horizon_hours}h, feature = 15-minute event count, probe entity u0\n",
        events.len()
    );
    table.print();
    println!(
        "\nShape check: streaming staleness ≈ the slide (1m) regardless of cadence;\n\
         batch staleness grows linearly with the materialization cadence."
    );
    Ok(())
}

fn push_row(
    table: &mut Table,
    name: &str,
    updates: u64,
    staleness: &[f64],
    events: usize,
    elapsed: std::time::Duration,
) {
    let mean = staleness.iter().sum::<f64>() / staleness.len().max(1) as f64;
    let p95 = fstore_common::stats::exact_quantile(staleness, 0.95).unwrap_or(f64::NAN);
    let throughput = if events > 0 {
        format!("{:.0}", events as f64 / elapsed.as_secs_f64() / 1_000.0)
    } else {
        "-".to_string()
    };
    table.row(vec![
        name.into(),
        updates.to_string(),
        f1(mean),
        f1(p95),
        throughput,
    ]);
}
