//! E19 — durability: SIGKILL mid-write-storm, restart into the last
//! published epoch (DESIGN.md §2.14).
//!
//! Claim: the WAL + checkpoint stack turns a hard process kill into a
//! bounded restart with **zero wrong answers**. A victim process (this
//! same binary, re-exec'd with a hidden `e19-victim` subcommand) opens a
//! `DurableLeader`, seeds a deterministic base (offline rows, embeddings,
//! an index, online rows), checkpoints, then storms batched offline
//! appends of consecutive integers until the parent SIGKILLs it — on
//! purpose mid-batch, with no chance to flush or say goodbye.
//!
//! The parent then recovers **in-process** from the victim's directory and
//! asserts:
//!
//! * **exact committed prefix** — the recovered table holds exactly the
//!   integers `0..n` in order: every acknowledged batch survived whole,
//!   and nothing torn, duplicated, or invented got in;
//! * **zero wrong answers** — `GetEmbedding` / `SearchNearest` answers are
//!   byte-identical to an independently built oracle, online rows match
//!   the seeded values, and a *second* restart answers every probe
//!   byte-identically to the first (recovery is deterministic);
//! * **disk bootstrap beats re-materialization** — `DurableLeader::open`
//!   (binary checkpoint + WAL tail replay) is measurably faster than
//!   rebuilding the same state through the ordinary publish path.
//!
//! Results are written to `BENCH_durable.json`.

use crate::table::Table;
use fstore_common::{EntityKey, FsError, Result, Schema, Timestamp, Value, ValueType};
use fstore_core::FeatureServer;
use fstore_durable::{DurableConfig, DurableLeader, FsyncPolicy};
use fstore_embed::{EmbeddingDb, EmbeddingProvenance, EmbeddingTable};
use fstore_serve::{
    fixed_clock, start, FeatureClient, IndexCatalog, IndexSpec, Request, Response, ServeConfig,
    ServeEngine,
};
use fstore_storage::{OfflineDb, OnlineStore, ScanRequest, TableConfig};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NOW: Timestamp = Timestamp(60_000);
const EMB_DIM: usize = 8;
const BATCH: usize = 64;

fn base_rows(quick: bool) -> usize {
    if quick {
        50_000
    } else {
        200_000
    }
}

fn durable_config() -> DurableConfig {
    DurableConfig {
        // Batched fsync: commits still land in the OS page cache in order,
        // which a SIGKILL cannot lose — only power loss can, and that is
        // what `FsyncPolicy::Always` is for.
        fsync: FsyncPolicy::EveryN(16),
    }
}

#[derive(Serialize)]
struct Artifact {
    experiment: String,
    base_rows: usize,
    rows_recovered: usize,
    storm_batches_committed: usize,
    checkpoint_epoch: u64,
    recovered_epoch: u64,
    replayed_wal_records: usize,
    dropped_uncommitted: usize,
    truncated_bytes: u64,
    wrong_answers: u64,
    probes: usize,
    recovery_ms: f64,
    rematerialize_ms: f64,
    speedup: f64,
}

/// Deterministic static seed shared by the victim and the oracle: the
/// embedding table, its index, and the online rows. (The offline rows are
/// seeded separately — the victim streams them, the oracle replays them.)
fn seed_static(
    embeddings: &EmbeddingDb,
    indexes: &IndexCatalog,
    mut put_online: impl FnMut(&str, &EntityKey, &[(&str, Value)]),
) -> Result<()> {
    let mut emb = EmbeddingTable::new(EMB_DIM)?;
    for i in 0..64 {
        let v: Vec<f32> = (0..EMB_DIM)
            .map(|d| (i * EMB_DIM + d) as f32 * 0.125)
            .collect();
        emb.insert(format!("e{i:04}"), v)?;
    }
    embeddings.publish("emb", emb, EmbeddingProvenance::default(), NOW)?;
    indexes
        .build("emb", &IndexSpec::Flat)
        .map_err(|e| FsError::Storage(format!("build index: {e}")))?;
    for u in 0..5 {
        put_online(
            "user",
            &EntityKey::new(format!("u{u}")),
            &[("score", Value::Float(u as f64 * 0.25))],
        );
    }
    Ok(())
}

fn events_config() -> TableConfig {
    TableConfig::new(Schema::of(&[("n", ValueType::Int)]))
}

/// Append `rows` consecutive integers starting at `from`, in `BATCH`-row
/// publications — the one write shape both the victim and the oracle use.
fn append_batches(offline: &OfflineDb, from: usize, rows: usize) -> Result<()> {
    let mut next = from;
    let end = from + rows;
    while next < end {
        let stop = (next + BATCH).min(end);
        offline.write(|s| {
            for i in next..stop {
                s.append("events", &[Value::Int(i as i64)])?;
            }
            Ok(())
        })?;
        next = stop;
    }
    Ok(())
}

/// The victim half: runs in a child process and never returns — it storms
/// appends until the parent SIGKILLs it. Invoked via the hidden
/// `e19-victim <dir> [--quick]` subcommand of the `experiments` binary.
pub fn victim(dir: &str, quick: bool) -> Result<()> {
    let (leader, _) = DurableLeader::open(dir, durable_config())?;
    leader
        .offline()
        .write(|s| s.create_table("events", events_config()))?;
    seed_static(leader.embeddings(), leader.indexes(), |g, e, v| {
        leader.put_online(g, e, v, NOW).expect("seed online write");
    })?;
    append_batches(leader.offline(), 0, base_rows(quick))?;
    leader.checkpoint()?;

    // Tell the parent the storm is on, then write until killed.
    std::fs::write(Path::new(dir).join("STORMING"), b"1")
        .map_err(|e| FsError::Storage(format!("write storm marker: {e}")))?;
    let mut next = base_rows(quick);
    loop {
        append_batches(leader.offline(), next, BATCH)?;
        next += BATCH;
    }
}

fn probe_requests() -> Vec<Request> {
    vec![
        Request::GetEmbedding {
            table: "emb".into(),
            key: "e0002".into(),
        },
        Request::SearchNearest {
            table: "emb".into(),
            query: vec![1.0; EMB_DIM],
            k: 5,
            options: Default::default(),
        },
        Request::GetFeatures {
            group: "user".into(),
            entity: "u1".into(),
            features: vec!["score".into()],
        },
    ]
}

/// Serve `engine` on a loopback socket and capture each probe's bytes.
fn capture_engine(engine: ServeEngine) -> Result<Vec<Vec<u8>>> {
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .queue_depth(64)
        .max_batch(8)
        .build()
        .map_err(|e| FsError::Storage(format!("serve config: {e}")))?;
    let handle =
        start(engine, config).map_err(|e| FsError::Storage(format!("start server: {e}")))?;
    let mut client = FeatureClient::connect(handle.addr())
        .map_err(|e| FsError::Storage(format!("connect: {e}")))?;
    let captures = probe_requests()
        .iter()
        .map(|request| {
            let response = client
                .call(request)
                .map_err(|e| FsError::Storage(format!("probe: {e}")))?;
            assert!(
                !matches!(response, Response::Error { .. }),
                "probe errored: {response:?}"
            );
            Ok(response.encode().to_vec())
        })
        .collect::<Result<Vec<_>>>()?;
    drop(client);
    handle.shutdown();
    Ok(captures)
}

fn capture(leader: &Arc<DurableLeader>) -> Result<Vec<Vec<u8>>> {
    capture_engine(leader.engine(fixed_clock(NOW)))
}

pub fn run(quick: bool) -> Result<()> {
    let storm = Duration::from_millis(if quick { 300 } else { 800 });
    let dir = std::env::temp_dir().join(format!("fstore_e19_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).map_err(|e| FsError::Storage(format!("mkdir: {e}")))?;

    println!(
        "victim child seeds {} base rows + embeddings/index/online, checkpoints,\n\
         then storms {BATCH}-row appends; parent SIGKILLs it after {storm:?} of storm\n\
         and recovers from its directory in-process\n",
        base_rows(quick)
    );

    // ------------------------------------------------------------------
    // Spawn the victim (this same binary) and kill it mid-storm.
    // ------------------------------------------------------------------
    let exe = std::env::current_exe().map_err(|e| FsError::Storage(format!("current_exe: {e}")))?;
    let mut cmd = std::process::Command::new(&exe);
    cmd.arg("e19-victim").arg(&dir);
    if quick {
        cmd.arg("--quick");
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| FsError::Storage(format!("spawn victim: {e}")))?;

    let marker: PathBuf = dir.join("STORMING");
    let seeding_deadline = Instant::now() + Duration::from_secs(120);
    while !marker.exists() {
        if let Some(status) = child
            .try_wait()
            .map_err(|e| FsError::Storage(format!("poll victim: {e}")))?
        {
            return Err(FsError::Storage(format!(
                "victim exited before storming: {status}"
            )));
        }
        if Instant::now() > seeding_deadline {
            let _ = child.kill();
            return Err(FsError::Storage("victim never started storming".into()));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(storm);
    child
        .kill() // SIGKILL: no handlers, no flush, no goodbye
        .map_err(|e| FsError::Storage(format!("kill victim: {e}")))?;
    child
        .wait()
        .map_err(|e| FsError::Storage(format!("reap victim: {e}")))?;

    // ------------------------------------------------------------------
    // Recover in-process and check what survived.
    // ------------------------------------------------------------------
    let open_started = Instant::now();
    let (revived, report) = DurableLeader::open(&dir, durable_config())?;
    let recovery_ms = open_started.elapsed().as_secs_f64() * 1e3;
    assert!(!report.cold_start, "victim left nothing behind");

    let rows_recovered = revived.offline().read().value.num_rows("events")?;
    assert!(
        rows_recovered >= base_rows(quick),
        "checkpointed base lost: {rows_recovered} < {}",
        base_rows(quick)
    );
    let storm_batches_committed = (rows_recovered - base_rows(quick)) / BATCH;

    // Exact committed prefix: the integers 0..n, in order, nothing else.
    let values =
        revived
            .offline()
            .read()
            .value
            .column_values("events", "n", &ScanRequest::all())?;
    assert_eq!(values.len(), rows_recovered);
    let mut wrong_answers = 0u64;
    for (i, v) in values.iter().enumerate() {
        if *v != Value::Int(i as i64) {
            wrong_answers += 1;
        }
    }
    assert_eq!(
        wrong_answers, 0,
        "recovered rows are not the exact committed prefix"
    );

    // Zero wrong answers over the wire: embedding and search answers are
    // byte-identical to an oracle built from the same static seed, and the
    // seeded online rows read back exactly. (The `GetFeatures` probe
    // stamps the offline epoch — which legitimately differs between the
    // stormed victim and the storm-free oracle — so its bytes are held to
    // the recovery-determinism check below instead.)
    let oracle_embeddings = EmbeddingDb::new();
    let oracle_indexes = Arc::new(IndexCatalog::new(oracle_embeddings.clone()));
    let oracle_online = Arc::new(OnlineStore::default());
    seed_static(&oracle_embeddings, &oracle_indexes, |g, e, v| {
        oracle_online.put_row(g, e, v, NOW)
    })?;
    let answers = capture(&revived)?;
    let probes = answers.len();
    let oracle_engine = ServeEngine::new(
        FeatureServer::new(Arc::clone(&oracle_online)),
        fixed_clock(NOW),
    )
    .with_embeddings(oracle_embeddings.clone())
    .with_index_catalog(Arc::clone(&oracle_indexes));
    let oracle_answers = capture_engine(oracle_engine)?;
    assert_eq!(
        &answers[..2],
        &oracle_answers[..2],
        "recovered embedding/search answers diverged from the oracle"
    );
    for u in 0..5 {
        let entity = EntityKey::new(format!("u{u}"));
        let got = revived
            .online()
            .get("user", &entity, "score")
            .map(|e| e.value.clone());
        let want = oracle_online
            .get("user", &entity, "score")
            .map(|e| e.value.clone());
        assert_eq!(got, want, "online row u{u} diverged after recovery");
    }

    // Determinism: a second restart answers every probe byte-identically.
    drop(revived);
    let (again, second_report) = DurableLeader::open(&dir, durable_config())?;
    assert_eq!(second_report.replayed, 0, "first recovery left WAL debt");
    assert_eq!(second_report.recovered_epoch, report.recovered_epoch);
    let answers_again = capture(&again)?;
    assert_eq!(
        answers, answers_again,
        "two recoveries of the same directory answered differently"
    );

    // ------------------------------------------------------------------
    // Disk bootstrap vs full re-materialization of the same state. The
    // alternative to recovering is re-ingesting everything into a fresh
    // durable leader — the end state must be just as durable, so the
    // rebuild pays the same per-publication WAL costs the victim did.
    // ------------------------------------------------------------------
    let remat_dir = std::env::temp_dir().join(format!("fstore_e19_remat_{}", std::process::id()));
    std::fs::remove_dir_all(&remat_dir).ok();
    let remat_started = Instant::now();
    let (remat, _) = DurableLeader::open(&remat_dir, durable_config())?;
    remat
        .offline()
        .write(|s| s.create_table("events", events_config()))?;
    seed_static(remat.embeddings(), remat.indexes(), |g, e, v| {
        remat.put_online(g, e, v, NOW).expect("seed online write");
    })?;
    append_batches(remat.offline(), 0, rows_recovered)?;
    remat.checkpoint()?;
    let rematerialize_ms = remat_started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        remat.offline().read().value.num_rows("events")?,
        rows_recovered
    );
    drop(remat);
    std::fs::remove_dir_all(&remat_dir).ok();

    let speedup = rematerialize_ms / recovery_ms.max(1e-6);

    // ------------------------------------------------------------------
    // Report and assert.
    // ------------------------------------------------------------------
    let mut table = Table::new(&["metric", "value"]);
    table
        .row(vec!["rows recovered".into(), rows_recovered.to_string()])
        .row(vec![
            "storm batches committed".into(),
            storm_batches_committed.to_string(),
        ])
        .row(vec![
            "checkpoint epoch".into(),
            report.checkpoint_epoch.to_string(),
        ])
        .row(vec![
            "recovered epoch".into(),
            report.recovered_epoch.to_string(),
        ])
        .row(vec![
            "WAL records replayed".into(),
            report.replayed.to_string(),
        ])
        .row(vec![
            "uncommitted dropped".into(),
            report.dropped_uncommitted.to_string(),
        ])
        .row(vec![
            "torn bytes truncated".into(),
            report.truncated_bytes.to_string(),
        ])
        .row(vec!["wrong answers".into(), wrong_answers.to_string()])
        .row(vec!["recovery".into(), format!("{recovery_ms:.1} ms")])
        .row(vec![
            "re-materialization".into(),
            format!("{rematerialize_ms:.1} ms"),
        ])
        .row(vec!["speedup".into(), format!("{speedup:.1}x")]);
    table.print();

    assert!(
        report.recovered_epoch > report.checkpoint_epoch || report.replayed == 0,
        "storm appends vanished without being replayed"
    );
    assert!(
        recovery_ms < rematerialize_ms,
        "disk bootstrap ({recovery_ms:.1} ms) must beat re-materialization \
         ({rematerialize_ms:.1} ms)"
    );

    let artifact = Artifact {
        experiment: "e19_durability".to_string(),
        base_rows: base_rows(quick),
        rows_recovered,
        storm_batches_committed,
        checkpoint_epoch: report.checkpoint_epoch,
        recovered_epoch: report.recovered_epoch,
        replayed_wal_records: report.replayed,
        dropped_uncommitted: report.dropped_uncommitted,
        truncated_bytes: report.truncated_bytes,
        wrong_answers,
        probes,
        recovery_ms,
        rematerialize_ms,
        speedup,
    };
    let path = "BENCH_durable.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .map_err(|e| FsError::Storage(format!("write {path}: {e}")))?;
    println!("\nwrote {path}");

    std::fs::remove_dir_all(&dir).ok();
    println!(
        "\nShape check: SIGKILL mid-storm costs at most the uncommitted tail —\n\
         the recovered table is the exact committed prefix, every endpoint\n\
         answers byte-identically to the oracle, and restarting from the\n\
         binary checkpoint + WAL tail is {speedup:.1}x faster than replaying\n\
         the ingestion."
    );
    Ok(())
}
