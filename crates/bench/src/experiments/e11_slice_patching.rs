//! E11 — fine-grained monitoring finds hidden underperforming slices, and
//! data-management patches close the gap (paper §3.1.3; Goel et al.,
//! Robustness Gym + "Model Patching"; Chen et al., slice-based learning).
//!
//! A planted subgroup (city=nyc & time=night, 10% of data) follows a
//! different decision rule. The base model averages over it and fails
//! there. We (1) *discover* the slice automatically from metadata, then
//! (2) patch by targeted augmentation and by slice reweighting, and report
//! the subgroup gap before/after.

use crate::table::{f3, pct, Table};
use fstore_common::{Result, Rng, Xoshiro256};
use fstore_models::{Classifier, Mlp, TrainConfig};
use fstore_monitor::slices::discover_slices;
use fstore_monitor::{augment_slice, reweight_slice};

struct Dataset {
    xs: Vec<Vec<f64>>,
    ys: Vec<usize>,
    meta: Vec<(String, Vec<String>)>,
    slice_idx: Vec<usize>,
}

/// Majority rule: y = x0 > 0. Planted slice (nyc∧night, ~5%): the rule is
/// *inverted* (y = x0 < 0) — night pricing flips the signal. A model that
/// averages over the population gets the slice almost entirely wrong.
fn make_data(n: usize, seed: u64) -> Dataset {
    let mut rng = Xoshiro256::seeded(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let mut city = Vec::with_capacity(n);
    let mut time = Vec::with_capacity(n);
    let mut slice_idx = Vec::new();
    for i in 0..n {
        let is_nyc = rng.chance(0.22);
        let is_night = rng.chance(0.22);
        let x0 = rng.normal() * 1.2;
        let x1 = rng.normal();
        let in_slice = is_nyc && is_night;
        let y = if in_slice {
            usize::from(x0 < 0.0)
        } else {
            usize::from(x0 > 0.0)
        };
        // metadata is also visible to the model as indicator features
        xs.push(vec![x0, x1, f64::from(is_nyc), f64::from(is_night)]);
        ys.push(y);
        city.push(if is_nyc { "nyc" } else { "sf" }.to_string());
        time.push(if is_night { "night" } else { "day" }.to_string());
        if in_slice {
            slice_idx.push(i);
        }
    }
    Dataset {
        xs,
        ys,
        meta: vec![("city".into(), city), ("time".into(), time)],
        slice_idx,
    }
}

fn slice_and_overall(
    model: &Mlp,
    xs: &[Vec<f64>],
    ys: &[usize],
    slice: &[usize],
) -> Result<(f64, f64)> {
    let preds = model.predict_batch(xs)?;
    let overall = preds.iter().zip(ys).filter(|(p, y)| p == y).count() as f64 / ys.len() as f64;
    let hit = slice.iter().filter(|&&i| preds[i] == ys[i]).count();
    Ok((hit as f64 / slice.len() as f64, overall))
}

pub fn run(quick: bool) -> Result<()> {
    let n = if quick { 2_000 } else { 6_000 };
    let train = make_data(n, 111);
    let test = make_data(n / 2, 222);
    // A short optimization budget (the realistic regime for large models):
    // the majority pattern wins the gradient race and the minority slice is
    // left behind unless patched.
    let cfg = TrainConfig {
        epochs: if quick { 4 } else { 6 },
        learning_rate: 0.15,
        ..TrainConfig::default()
    };

    // --- base model ---
    let base = Mlp::train(&train.xs, &train.ys, 2, 12, &cfg)?;
    let preds = base.predict_batch(&test.xs)?;

    // --- step 1: discover the slice from metadata (no prior knowledge) ---
    let discovered = discover_slices(&test.meta, &test.ys, &preds, 30)?;
    let worst = &discovered[0];
    println!(
        "discovered worst slice: `{}` (support {}, acc {:.3}, gap {:+.3})\n",
        worst.name, worst.support, worst.accuracy, worst.gap
    );

    // --- step 2: patch ---
    let mut table = Table::new(&["model", "slice acc", "overall acc", "subgroup gap"]);
    let (s, o) = slice_and_overall(&base, &test.xs, &test.ys, &test.slice_idx)?;
    table.row(vec!["base".into(), f3(s), f3(o), pct(o - s)]);

    // (a) targeted augmentation of the training slice
    let (ax, ay) = augment_slice(&train.xs, &train.ys, &train.slice_idx, 8, 0.05, 7)?;
    let patched_aug = Mlp::train(&ax, &ay, 2, 12, &cfg)?;
    let (s, o) = slice_and_overall(&patched_aug, &test.xs, &test.ys, &test.slice_idx)?;
    table.row(vec![
        "patched: augmentation ×8".into(),
        f3(s),
        f3(o),
        pct(o - s),
    ]);

    // (b) slice reweighting — the Mlp trainer has no weight hook, so apply
    // reweighting by replication (weight 8 ≈ 8 copies), the standard trick.
    let weights = reweight_slice(train.xs.len(), &train.slice_idx, 8.0)?;
    let mut rx = Vec::new();
    let mut ry = Vec::new();
    for (i, w) in weights.iter().enumerate() {
        for _ in 0..*w as usize {
            rx.push(train.xs[i].clone());
            ry.push(train.ys[i]);
        }
    }
    let patched_rw = Mlp::train(&rx, &ry, 2, 12, &cfg)?;
    let (s, o) = slice_and_overall(&patched_rw, &test.xs, &test.ys, &test.slice_idx)?;
    table.row(vec![
        "patched: reweight ×8".into(),
        f3(s),
        f3(o),
        pct(o - s),
    ]);

    println!("{n} train rows, planted slice = city=nyc & time=night (~5%, inverted rule)\n");
    table.print();
    println!(
        "\nShape check (Goel): automatic discovery surfaces the planted conjunction\n\
         as the worst slice; both patches shrink the subgroup gap substantially at\n\
         a small (or zero) cost to overall accuracy."
    );
    Ok(())
}
