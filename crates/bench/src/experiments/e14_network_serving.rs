//! E14 — network serving under open-loop load (paper §2.2.2).
//!
//! Claim: a serving tier needs more than a fast store — it needs
//! admission control so overload degrades into explicit shed responses
//! instead of unbounded queueing, and batching so concurrent lookups
//! amortize store passes. We drive the TCP server with an open-loop load
//! generator (requests are issued on a fixed schedule, independent of
//! response times, so queueing delay is visible instead of self-throttled
//! away), sweep the offered rate past saturation against the real store,
//! then emulate a slow backing store (injected per-request latency, tight
//! queue) to reach the overloaded regime where shedding is observable, and
//! report achieved throughput, shed counts, and server-side latency
//! percentiles.
//!
//! Results are also written to `BENCH_serve.json` for tracking.

use fstore_common::{EntityKey, Result, Rng, Timestamp, Value, Xoshiro256};
use fstore_core::FeatureServer;
use fstore_serve::{fixed_clock, start, FeatureClient, ServeConfig, ServeEngine, StoreApi};
use fstore_storage::OnlineStore;
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use crate::table::{f1, Table};

const ENTITIES: usize = 10_000;
const FEATURES: [&str; 2] = ["score", "clicks"];
const NOW: Timestamp = Timestamp(60_000);

#[derive(Serialize)]
struct LevelResult {
    scenario: &'static str,
    offered_rps: u64,
    workers: usize,
    queue_depth: usize,
    client_threads: usize,
    achieved_rps: f64,
    duration_s: f64,
    requests: u64,
    ok: u64,
    overloaded: u64,
    server_shed: u64,
    p50_ms: Option<f64>,
    p95_ms: Option<f64>,
    p99_ms: Option<f64>,
    batches: u64,
    batched_requests: u64,
}

#[derive(Serialize)]
struct Artifact {
    experiment: String,
    entities: usize,
    levels: Vec<LevelResult>,
}

fn populated_store() -> Arc<OnlineStore> {
    let online = Arc::new(OnlineStore::new(64));
    let mut rng = Xoshiro256::seeded(14);
    for i in 0..ENTITIES {
        let key = EntityKey::new(format!("u{i}"));
        online.put(
            "user",
            &key,
            "score",
            Value::Float(rng.normal()),
            Timestamp::millis(50_000),
        );
        online.put(
            "user",
            &key,
            "clicks",
            Value::Int(i as i64 % 100),
            Timestamp::millis(55_000),
        );
    }
    online
}

/// One load level: scenario label plus the server/client shape to drive.
struct Level {
    scenario: &'static str,
    offered_rps: u64,
    threads: usize,
    workers: usize,
    queue_depth: usize,
    max_batch: usize,
    /// Injected per-claim store latency — emulates a slow backing store so
    /// the overloaded regime (queue full → shed) is reachable even though
    /// each blocking client connection self-throttles to one request in
    /// flight.
    handler_delay: Option<StdDuration>,
}

/// Drive one offered rate for `duration`; returns the level summary.
fn run_level(level: &Level, duration: StdDuration) -> Result<LevelResult> {
    let engine = ServeEngine::new(FeatureServer::new(populated_store()), fixed_clock(NOW));
    let handle = start(
        engine,
        ServeConfig {
            workers: level.workers,
            queue_depth: level.queue_depth,
            max_batch: level.max_batch,
            handler_delay: level.handler_delay,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| fstore_common::FsError::Storage(format!("bind loopback: {e}")))?;
    let addr = handle.addr();

    let offered_rps = level.offered_rps;
    let started = Instant::now();
    let joins: Vec<_> = (0..level.threads)
        .map(|t| {
            let per_thread_rps = offered_rps as f64 / level.threads as f64;
            let interval = StdDuration::from_secs_f64(1.0 / per_thread_rps);
            std::thread::spawn(move || -> (u64, u64, u64) {
                let mut client = match FeatureClient::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return (0, 0, 0),
                };
                let begin = Instant::now();
                let (mut sent, mut ok, mut overloaded) = (0u64, 0u64, 0u64);
                // Open loop: tick i is due at begin + i·interval no matter
                // how long earlier requests took.
                loop {
                    let due = interval.mul_f64(sent as f64);
                    if due >= duration {
                        break;
                    }
                    if let Some(sleep) = due.checked_sub(begin.elapsed()) {
                        std::thread::sleep(sleep);
                    }
                    let id = (t * 7919 + sent as usize * 13) % ENTITIES;
                    sent += 1;
                    match client.get_features("user", &format!("u{id}"), &FEATURES) {
                        Ok(_) => ok += 1,
                        Err(e) if e.code().is_some() => overloaded += 1,
                        Err(_) => break, // connection failure; stop this thread
                    }
                }
                (sent, ok, overloaded)
            })
        })
        .collect();

    let (mut sent, mut ok, mut overloaded) = (0u64, 0u64, 0u64);
    for j in joins {
        let (s, o, v) = j.join().expect("load thread panicked");
        sent += s;
        ok += o;
        overloaded += v;
    }
    let elapsed = started.elapsed().as_secs_f64();

    let metrics = handle.metrics();
    let snapshot = metrics.snapshot();
    let ep = &snapshot.endpoints["get_features"];
    let result = LevelResult {
        scenario: level.scenario,
        offered_rps,
        workers: level.workers,
        queue_depth: level.queue_depth,
        client_threads: level.threads,
        achieved_rps: ok as f64 / elapsed,
        duration_s: elapsed,
        requests: sent,
        ok,
        overloaded,
        server_shed: snapshot.shed,
        p50_ms: ep.p50_ms,
        p95_ms: ep.p95_ms,
        p99_ms: ep.p99_ms,
        batches: snapshot.batches,
        batched_requests: snapshot.batched_requests,
    };
    handle.shutdown();
    Ok(result)
}

/// A fast-store rate level: 4 workers, deep queue, full batching.
fn fast_level(offered_rps: u64) -> Level {
    Level {
        scenario: "fast store",
        offered_rps,
        threads: 8,
        workers: 4,
        queue_depth: 64,
        max_batch: 32,
        handler_delay: None,
    }
}

/// The overloaded regime: a 2 ms store pass, one worker, a queue of 2, and
/// 16 clients blasting. Capacity is ~500 rps, so nearly everything must be
/// shed — this is where admission control is visible.
fn overload_level() -> Level {
    Level {
        scenario: "slow store",
        offered_rps: 25_000,
        threads: 16,
        workers: 1,
        queue_depth: 2,
        max_batch: 1,
        handler_delay: Some(StdDuration::from_millis(2)),
    }
}

pub fn run(quick: bool) -> Result<()> {
    let duration = StdDuration::from_millis(if quick { 600 } else { 2_000 });
    let mut levels: Vec<Level> = if quick {
        vec![fast_level(2_000), fast_level(20_000)]
    } else {
        vec![
            fast_level(2_000),
            fast_level(10_000),
            fast_level(50_000),
            fast_level(200_000),
        ]
    };
    levels.push(overload_level());

    let mut table = Table::new(&[
        "scenario",
        "offered rps",
        "achieved rps",
        "sent",
        "ok",
        "shed",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "batched",
    ]);
    let mut results = Vec::new();
    for level in &levels {
        let r = run_level(level, duration)?;
        table.row(vec![
            r.scenario.to_string(),
            r.offered_rps.to_string(),
            f1(r.achieved_rps),
            r.requests.to_string(),
            r.ok.to_string(),
            r.server_shed.to_string(),
            r.p50_ms.map_or("-".into(), f1),
            r.p95_ms.map_or("-".into(), f1),
            r.p99_ms.map_or("-".into(), f1),
            r.batched_requests.to_string(),
        ]);
        results.push(r);
    }
    table.print();

    let artifact = Artifact {
        experiment: "e14_network_serving".to_string(),
        entities: ENTITIES,
        levels: results,
    };
    let path = "BENCH_serve.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .map_err(|e| fstore_common::FsError::Storage(format!("write {path}: {e}")))?;
    println!("\nwrote {path}");
    println!(
        "\nShape check: against the fast store, achieved ≈ offered with zero\n\
         shed until the transport saturates (blocking clients self-throttle,\n\
         so the queue never fills and nothing is shed). Against the slow\n\
         store, capacity collapses to ~500 rps, the bounded queue fills, and\n\
         admission sheds the excess with `Overloaded` — the served requests\n\
         keep a p99 bounded by queue depth × store latency instead of\n\
         queueing without limit."
    );
    Ok(())
}
