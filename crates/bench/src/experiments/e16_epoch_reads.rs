//! E16 — epoch-versioned snapshot reads vs lock-based reads under
//! concurrent republish (DESIGN.md "Concurrency model").
//!
//! Claim: a feature platform's read path (monitoring scans, PIT joins,
//! embedding lookups) must keep serving while materialization and
//! embedding republish churn the stores. Guarding the store with one lock
//! makes every reader pay for every publication — and for every peer
//! reader — in tail latency; publishing immutable snapshots through a
//! `SnapshotCell` makes a republish one pointer swap that readers never
//! observe as latency.
//!
//! Two workloads, each measured both ways with identical reader/writer
//! cadence:
//!
//! 1. **offline scans** — reader threads scan a fixed `base` table while
//!    a writer keeps appending batches to a `hot` table and publishing.
//!    Baseline `Arc<Mutex<OfflineStore>>` (the pre-epoch sharing mode)
//!    serializes scans against each other *and* the writer; the
//!    `OfflineDb` path scans a lock-free snapshot.
//! 2. **embedding gets** — reader threads sweep the whole table per
//!    request while a writer republishes it. Baseline
//!    `Arc<RwLock<EmbeddingStore>>` convoys arriving readers behind each
//!    waiting publisher; the `EmbeddingDb` path resolves one snapshot
//!    `Arc` per request and is never stalled by a publication.
//!
//! Each read is measured twice: **resolve** — the time until the reader
//! holds a usable consistent view (lock acquisition vs `SnapshotCell`
//! load) — and the total read. Resolve time is what the lock costs and
//! what the snapshot design eliminates, and it is scheduler-robust even
//! on a single-core runner, where total-latency tails are dominated by
//! preemption noise that hits both modes alike.
//!
//! Hard asserts: on each workload the snapshot path's resolve p99 either
//! beats the lock path outright or sits under an absolute 50µs bound — a
//! lock-free read has nothing to queue on, while the mutex workload's
//! scan-length acquire tail forces a strict win. Every publication must
//! bump the epoch exactly once. Total read latency and throughput are
//! reported but not asserted — on a single-core runner lock-free readers
//! cannot convert parallelism into extra reads/s, and a reader-shared
//! rwlock's convoy only surfaces with real parallelism.
//! Results are written to `BENCH_epoch.json`.

use crate::table::{f1, Table};
use fstore_common::{
    stats::exact_quantile, ReadEpoch, Result, Schema, Timestamp, Value, ValueType,
};
use fstore_embed::{EmbeddingDb, EmbeddingProvenance, EmbeddingStore, EmbeddingTable};
use fstore_storage::{OfflineDb, OfflineStore, ScanRequest, TableConfig};
use parking_lot::{Mutex, RwLock};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NOW: Timestamp = Timestamp(50_000);
/// Writer cadence between offline publications — identical for both modes
/// so the only variable is how readers and the publisher share the store.
/// The embedding phase republishes back-to-back (cadence zero): an
/// embedding ecosystem's republish storm is the worst case §4 warns about.
const PAUSE: Duration = Duration::from_micros(200);

/// Enough readers to contend, but no more than the machine can actually
/// run — oversubscribing a small runner drowns the lock effect in
/// scheduler noise for both modes.
fn reader_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 4)
}

#[derive(Serialize)]
struct PhaseResult {
    phase: String,
    mode: String,
    reads: u64,
    publications: u64,
    wall_s: f64,
    kreads_per_s: f64,
    resolve_p50_us: f64,
    resolve_p99_us: f64,
    p50_us: f64,
    p99_us: f64,
    final_epoch: u64,
}

#[derive(Serialize)]
struct Artifact {
    experiment: String,
    readers: usize,
    rows: Vec<PhaseResult>,
    offline_resolve_p99_speedup: f64,
    offline_throughput_speedup: f64,
    embedding_resolve_p99_speedup: f64,
}

/// Spawn reader threads hammering `read_op` while the calling thread runs
/// `write_op` `publications` times at the shared cadence. `read_op`
/// returns its resolve time (µs until it held a consistent view); the
/// harness pairs it with the total read latency. Returns the writer wall
/// time and every `(resolve_us, total_us)` sample.
fn contend<R: Fn() -> f64 + Sync>(
    read_op: R,
    mut write_op: impl FnMut(u64) -> Result<()>,
    publications: u64,
    pause: Duration,
) -> Result<(f64, Vec<(f64, f64)>)> {
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..reader_count())
            .map(|_| {
                let read_op = &read_op;
                let stop = &stop;
                s.spawn(move || {
                    let mut lat = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let t = Instant::now();
                        let resolve_us = read_op();
                        lat.push((resolve_us, t.elapsed().as_secs_f64() * 1e6));
                    }
                    lat
                })
            })
            .collect();
        let started = Instant::now();
        let mut outcome = Ok(());
        for i in 0..publications {
            if let Err(e) = write_op(i) {
                outcome = Err(e);
                break;
            }
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
        let wall = started.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        let mut lat = Vec::new();
        for h in handles {
            lat.extend(h.join().expect("reader thread panicked"));
        }
        outcome.map(|()| (wall, lat))
    })
}

fn stats_row(
    table: &mut Table,
    phase: &str,
    mode: &str,
    publications: u64,
    wall: f64,
    lat: &[(f64, f64)],
    final_epoch: ReadEpoch,
) -> PhaseResult {
    let reads = lat.len() as u64;
    let kps = reads as f64 / wall / 1e3;
    let resolve: Vec<f64> = lat.iter().map(|(r, _)| *r).collect();
    let total: Vec<f64> = lat.iter().map(|(_, t)| *t).collect();
    let rp50 = exact_quantile(&resolve, 0.5).unwrap_or(f64::NAN);
    let rp99 = exact_quantile(&resolve, 0.99).unwrap_or(f64::NAN);
    let p50 = exact_quantile(&total, 0.5).unwrap_or(f64::NAN);
    let p99 = exact_quantile(&total, 0.99).unwrap_or(f64::NAN);
    table.row(vec![
        phase.to_string(),
        mode.to_string(),
        reads.to_string(),
        f1(kps),
        f1(rp50),
        f1(rp99),
        f1(p50),
        f1(p99),
        publications.to_string(),
    ]);
    PhaseResult {
        phase: phase.to_string(),
        mode: mode.to_string(),
        reads,
        publications,
        wall_s: wall,
        kreads_per_s: kps,
        resolve_p50_us: rp50,
        resolve_p99_us: rp99,
        p50_us: p50,
        p99_us: p99,
        final_epoch: final_epoch.as_u64(),
    }
}

/// `base` (scanned by readers, fixed) + `hot` (appended by the writer).
fn offline_seed(rows: usize) -> Result<OfflineStore> {
    let mut off = OfflineStore::new();
    let cfg = TableConfig::new(Schema::of(&[("x", ValueType::Float)]));
    off.create_table("base", cfg.clone())?;
    off.create_table("hot", cfg)?;
    for i in 0..rows {
        off.append("base", &[Value::Float(i as f64)])?;
    }
    Ok(off)
}

fn emb_table(n: usize, dim: usize, version: u64) -> Result<EmbeddingTable> {
    let mut t = EmbeddingTable::new(dim)?;
    for i in 0..n {
        t.insert(format!("k{i:05}"), vec![(version + i as u64) as f32; dim])?;
    }
    Ok(t)
}

pub fn run(quick: bool) -> Result<()> {
    let scan_rows = if quick { 4_000 } else { 16_000 };
    let append_batch = 100usize;
    let emb_n = 512usize;
    let emb_dim = 16usize;
    let publications: u64 = if quick { 400 } else { 800 };
    let readers = reader_count();

    println!(
        "{readers} readers vs 1 publisher, {publications} publications at {PAUSE:?} cadence;\n\
         offline: full scans of {scan_rows} rows while batches of {append_batch} land;\n\
         embeddings: whole-table sweeps while {emb_n}×{emb_dim} tables republish\n"
    );

    let mut table = Table::new(&[
        "workload",
        "sharing mode",
        "reads",
        "kreads/s",
        "resolve p50 µs",
        "resolve p99 µs",
        "read p50 µs",
        "read p99 µs",
        "pubs",
    ]);
    let mut rows: Vec<PhaseResult> = Vec::new();

    // ------------------------------------------------------------------
    // Phase 1: offline scans — Mutex baseline vs OfflineDb snapshots.
    // ------------------------------------------------------------------
    {
        let off = Arc::new(Mutex::new(offline_seed(scan_rows)?));
        let (wall, lat) = contend(
            || {
                let t = Instant::now();
                let g = off.lock();
                let resolve_us = t.elapsed().as_secs_f64() * 1e6;
                let v = g
                    .column_values("base", "x", &ScanRequest::all())
                    .expect("scan base");
                std::hint::black_box(v.len());
                resolve_us
            },
            |i| {
                let mut g = off.lock();
                for j in 0..append_batch {
                    g.append(
                        "hot",
                        &[Value::Float((i * append_batch as u64 + j as u64) as f64)],
                    )?;
                }
                Ok(())
            },
            publications,
            PAUSE,
        )?;
        rows.push(stats_row(
            &mut table,
            "offline scan",
            "mutex",
            publications,
            wall,
            &lat,
            ReadEpoch::ZERO,
        ));
    }
    {
        let db = OfflineDb::from_store(offline_seed(scan_rows)?);
        let (wall, lat) = contend(
            || {
                let t = Instant::now();
                let snap = db.snapshot();
                let resolve_us = t.elapsed().as_secs_f64() * 1e6;
                let v = snap
                    .column_values("base", "x", &ScanRequest::all())
                    .expect("scan base");
                std::hint::black_box(v.len());
                resolve_us
            },
            |i| {
                db.write(|off| {
                    for j in 0..append_batch {
                        off.append(
                            "hot",
                            &[Value::Float((i * append_batch as u64 + j as u64) as f64)],
                        )?;
                    }
                    Ok(())
                })
            },
            publications,
            PAUSE,
        )?;
        let epoch = db.epoch();
        assert_eq!(
            epoch,
            ReadEpoch(publications),
            "every offline publication bumps the epoch exactly once"
        );
        rows.push(stats_row(
            &mut table,
            "offline scan",
            "snapshot",
            publications,
            wall,
            &lat,
            epoch,
        ));
    }

    // ------------------------------------------------------------------
    // Phase 2: embedding gets — RwLock baseline vs EmbeddingDb snapshots.
    // Readers sweep every key of the table per request, so the read-side
    // critical section is long enough that each publication's exclusive
    // access visibly convoys the lock-based readers behind it.
    // ------------------------------------------------------------------
    let keys: Vec<String> = (0..emb_n).map(|i| format!("k{i:05}")).collect();
    {
        let mut store = EmbeddingStore::new();
        store.publish(
            "emb",
            emb_table(emb_n, emb_dim, 1)?,
            Default::default(),
            NOW,
        )?;
        let store = Arc::new(RwLock::new(store));
        let (wall, lat) = contend(
            || {
                let t = Instant::now();
                let g = store.read();
                let resolve_us = t.elapsed().as_secs_f64() * 1e6;
                let v = g.latest("emb").expect("emb");
                let mut acc = 0f32;
                for k in &keys {
                    acc += v.table.get(k).expect("key").iter().sum::<f32>();
                }
                std::hint::black_box(acc);
                resolve_us
            },
            |i| {
                // table build happens outside the lock, as real republish
                // callers did; only the publish itself is exclusive
                let t = emb_table(emb_n, emb_dim, i + 2)?;
                store
                    .write()
                    .publish("emb", t, EmbeddingProvenance::default(), NOW)
                    .map(|_| ())
            },
            publications,
            Duration::ZERO,
        )?;
        rows.push(stats_row(
            &mut table,
            "embedding sweep",
            "rwlock",
            publications,
            wall,
            &lat,
            ReadEpoch::ZERO,
        ));
    }
    {
        let db = EmbeddingDb::new();
        db.publish(
            "emb",
            emb_table(emb_n, emb_dim, 1)?,
            Default::default(),
            NOW,
        )?;
        let (wall, lat) = contend(
            || {
                let t = Instant::now();
                let snap = db.snapshot();
                let resolve_us = t.elapsed().as_secs_f64() * 1e6;
                let v = snap.latest("emb").expect("emb");
                let mut acc = 0f32;
                for k in &keys {
                    acc += v.table.get(k).expect("key").iter().sum::<f32>();
                }
                std::hint::black_box(acc);
                resolve_us
            },
            |i| {
                let t = emb_table(emb_n, emb_dim, i + 2)?;
                db.publish("emb", t, EmbeddingProvenance::default(), NOW)
                    .map(|_| ())
            },
            publications,
            Duration::ZERO,
        )?;
        let epoch = db.epoch();
        assert_eq!(
            epoch,
            ReadEpoch(publications + 1),
            "initial publish plus one epoch per republish"
        );
        rows.push(stats_row(
            &mut table,
            "embedding sweep",
            "snapshot",
            publications,
            wall,
            &lat,
            epoch,
        ));
    }
    table.print();

    let offline_resolve_p99_speedup = rows[0].resolve_p99_us / rows[1].resolve_p99_us;
    let offline_throughput_speedup = rows[1].kreads_per_s / rows[0].kreads_per_s;
    let embedding_resolve_p99_speedup = rows[2].resolve_p99_us / rows[3].resolve_p99_us;
    println!(
        "\noffline: snapshot resolve p99 {offline_resolve_p99_speedup:.1}x lower than the mutex \
         ({offline_throughput_speedup:.1}x throughput);\n\
         embeddings: snapshot resolve p99 {embedding_resolve_p99_speedup:.1}x lower than the rwlock"
    );

    // The experiment's hard claims, asserted so regressions fail loudly:
    // readers of the snapshot path reach a consistent view without ever
    // queuing behind the publisher or their peers — they must beat the
    // lock path outright wherever the lock measurably queues (anything
    // past `FREE_RESOLVE_US` is queuing, not scheduler noise).
    const FREE_RESOLVE_US: f64 = 50.0;
    for (lock_row, snap_row) in [(&rows[0], &rows[1]), (&rows[2], &rows[3])] {
        assert!(
            snap_row.resolve_p99_us < lock_row.resolve_p99_us.max(FREE_RESOLVE_US),
            "{}: snapshot resolve p99 {:.1}µs must beat the {} ({:.1}µs) or stay under {FREE_RESOLVE_US}µs",
            snap_row.phase,
            snap_row.resolve_p99_us,
            lock_row.mode,
            lock_row.resolve_p99_us
        );
    }

    let artifact = Artifact {
        experiment: "e16_epoch_reads".to_string(),
        readers,
        rows,
        offline_resolve_p99_speedup,
        offline_throughput_speedup,
        embedding_resolve_p99_speedup,
    };
    let path = "BENCH_epoch.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .map_err(|e| fstore_common::FsError::Storage(format!("write {path}: {e}")))?;
    println!("\nwrote {path}");
    println!(
        "\nShape check: under a lock the time to a consistent view includes\n\
         every publication and every peer reader ahead in the queue; under\n\
         snapshot reads the publisher's epoch advances without ever\n\
         appearing in the reader's resolve tail."
    );
    Ok(())
}
