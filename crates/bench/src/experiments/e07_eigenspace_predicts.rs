//! E7 — the eigenspace overlap score predicts the downstream performance
//! of compressed embeddings (paper §3.1.2; May et al., "On the downstream
//! performance of compressed word embeddings").
//!
//! We build a grid of compressed variants (quantization bits × PCA ranks)
//! of one base embedding, measure each variant's (a) eigenspace overlap
//! with the original and (b) downstream accuracy, then report the rank
//! correlation. May et al.'s claim: (a) is a strong selection signal for
//! (b), available *without* training the downstream model.

use crate::table::{f3, Table};
use crate::workloads::{corpus_preset, topic_features};
use fstore_common::stats::{pearson, spearman};
use fstore_common::Result;
use fstore_embed::sgns::train_sgns;
use fstore_embed::{eigenspace_overlap, Corpus, PcaModel, QuantizedTable, SgnsConfig};
use fstore_models::{Classifier, SoftmaxRegression, TrainConfig};

pub fn run(quick: bool) -> Result<()> {
    let corpus = Corpus::generate(corpus_preset(quick, 71))?;
    let topics = corpus.kg.num_types();
    let dim = 32;
    let (base, _) = train_sgns(
        &corpus,
        SgnsConfig {
            dim,
            epochs: if quick { 2 } else { 3 },
            seed: 5,
            ..SgnsConfig::default()
        },
    )?;

    // Held-out split for honest downstream accuracy.
    let (xs, ys) = topic_features(&base, &corpus);
    let split = xs.len() * 7 / 10;

    let mut variants: Vec<(String, fstore_embed::EmbeddingTable)> = Vec::new();
    for bits in [1u8, 2, 3, 4, 6, 8] {
        variants.push((
            format!("quant {bits}b"),
            QuantizedTable::quantize(&base, bits)?.dequantize()?,
        ));
    }
    for rank in [2usize, 4, 8, 16, 24, 32] {
        let pca = PcaModel::fit(&base, rank)?;
        variants.push((format!("pca r{rank}"), pca.transform_table(&base)?));
    }

    let mut table = Table::new(&["variant", "eigenspace overlap", "downstream acc"]);
    let mut overlaps = Vec::new();
    let mut accs = Vec::new();
    for (name, variant) in &variants {
        let overlap = eigenspace_overlap(&base, variant)?;
        let (vx, _) = topic_features(variant, &corpus);
        let model =
            SoftmaxRegression::train(&vx[..split], &ys[..split], topics, &TrainConfig::default())?;
        let acc = model.accuracy(&vx[split..], &ys[split..])?;
        overlaps.push(overlap);
        accs.push(acc);
        table.row(vec![name.clone(), f3(overlap), f3(acc)]);
    }

    // Baseline predictor for comparison: mean reconstruction norm ratio.
    let norm_ratio: Vec<f64> = variants
        .iter()
        .map(|(_, v)| {
            let keys = v.keys();
            let mut num = 0.0;
            let mut den = 0.0;
            for k in keys {
                let bv = base.get_f64(k).unwrap();
                den += bv.iter().map(|x| x * x).sum::<f64>();
                let vv = v.get_f64(k).unwrap();
                num += vv.iter().map(|x| x * x).sum::<f64>();
            }
            (num / den).min(den / num.max(1e-12))
        })
        .collect();

    println!(
        "base: SGNS dim {dim} over {} entities; 12 compressed variants; downstream =\n\
         {topics}-way topic classification on a 30% held-out split\n",
        corpus.config.vocab
    );
    table.print();
    let half = 6; // first 6 variants are quantized, rest PCA
    println!(
        "\neigenspace-overlap correlation with downstream accuracy:\n\
           all 12 variants:    spearman {} | pearson {}\n\
           quantized family:   spearman {}\n\
           PCA family:         spearman {}\n\
           norm-ratio baseline (all): spearman {}",
        f3(spearman(&overlaps, &accs)?),
        f3(pearson(&overlaps, &accs)?),
        f3(spearman(&overlaps[..half], &accs[..half])?),
        f3(spearman(&overlaps[half..], &accs[half..])?),
        f3(spearman(&norm_ratio, &accs)?),
    );
    println!(
        "\nShape check (May et al.): the overlap score ranks compressed variants by\n\
         downstream accuracy — strongly positive overall and within each\n\
         compression family — so it can select an embedding under a memory\n\
         budget without training the downstream model."
    );
    Ok(())
}
