//! E12 — patching the *embedding* fixes every downstream consumer at once
//! (paper §3.1.3: "by correcting the error in the embedding, all
//! downstream systems using those embeddings will be patched, which
//! maintains product consistency").
//!
//! One corrupted embedding slice feeds three different downstream models.
//! We compare two repair strategies: per-model data patching (each team
//! augments its own training data — three separate interventions) vs one
//! central embedding patch, republished through the embedding store.

use crate::table::{f3, Table};
use crate::workloads::{corpus_preset, topic_features};
use fstore_common::{Result, Rng, Timestamp, Xoshiro256};
use fstore_embed::sgns::train_sgns;
use fstore_embed::{Corpus, EmbeddingStore, SgnsConfig};
use fstore_models::{Classifier, LogisticRegression, Mlp, SoftmaxRegression, TrainConfig};
use fstore_monitor::{augment_slice, EmbeddingPatcher};

pub fn run(quick: bool) -> Result<()> {
    let corpus = Corpus::generate(corpus_preset(quick, 121))?;
    let topics = corpus.kg.num_types();
    let (clean, prov) = train_sgns(
        &corpus,
        SgnsConfig {
            dim: 24,
            epochs: if quick { 2 } else { 3 },
            seed: 9,
            ..SgnsConfig::default()
        },
    )?;

    // Corrupt a slice: 10% of topic-0 entities get garbage vectors (a bad
    // upstream retrain / ingestion bug).
    let victims: Vec<String> = (0..corpus.config.vocab)
        .filter(|&e| corpus.topic_of[e] == 0)
        .take(corpus.config.vocab / topics / 2)
        .map(Corpus::entity_name)
        .collect();
    let victim_idx: Vec<usize> = victims
        .iter()
        .map(|k| k.trim_start_matches('e').parse().unwrap())
        .collect();
    let mut corrupted = clean.clone();
    let mut rng = Xoshiro256::seeded(13);
    for k in &victims {
        let noise: Vec<f32> = (0..24).map(|_| rng.normal() as f32 * 2.0).collect();
        corrupted.replace(k, noise)?;
    }
    let mut store = EmbeddingStore::new();
    store.publish("ent", corrupted, prov, Timestamp::EPOCH)?;

    // Three heterogeneous downstream consumers of ent@v1.
    let (xs, ys) = topic_features(&store.latest("ent")?.table, &corpus);
    // balanced coarse-group detector (topic imbalance would otherwise
    // confound the repair comparison)
    let ys_binary: Vec<usize> = ys.iter().map(|&t| usize::from(t < topics / 2)).collect();
    let cfg = TrainConfig::default();
    let slice_acc = |preds: &[usize], truth: &[usize]| {
        let hit = victim_idx.iter().filter(|&&i| preds[i] == truth[i]).count();
        hit as f64 / victim_idx.len() as f64
    };

    enum Consumer {
        Soft(SoftmaxRegression),
        Log(LogisticRegression),
        Net(Mlp),
    }
    let train_consumers = |xs: &[Vec<f64>]| -> Result<Vec<(String, Consumer, Vec<usize>)>> {
        Ok(vec![
            (
                "softmax topic model".into(),
                Consumer::Soft(SoftmaxRegression::train(xs, &ys, topics, &cfg)?),
                ys.clone(),
            ),
            (
                "binary topic-group detector".into(),
                Consumer::Log(LogisticRegression::train(xs, &ys_binary, &cfg)?),
                ys_binary.clone(),
            ),
            (
                "mlp topic model".into(),
                Consumer::Net(Mlp::train(xs, &ys, topics, 16, &cfg)?),
                ys.clone(),
            ),
        ])
    };
    let predict = |c: &Consumer, xs: &[Vec<f64>]| -> Result<Vec<usize>> {
        match c {
            Consumer::Soft(m) => m.predict_batch(xs),
            Consumer::Log(m) => m.predict_batch(xs),
            Consumer::Net(m) => m.predict_batch(xs),
        }
    };

    let before = train_consumers(&xs)?;

    // Strategy A: each team patches its own training data (augment the
    // corrupted slice) — the embedding stays broken.
    let mut per_model_rows = Vec::new();
    for (name, _, truth) in &before {
        let (ax, ay) = augment_slice(&xs, truth, &victim_idx, 6, 0.02, 3)?;
        let consumer = match name.as_str() {
            "softmax topic model" => {
                Consumer::Soft(SoftmaxRegression::train(&ax, &ay, topics, &cfg)?)
            }
            "binary topic-group detector" => {
                Consumer::Log(LogisticRegression::train(&ax, &ay, &cfg)?)
            }
            _ => Consumer::Net(Mlp::train(&ax, &ay, topics, 16, &cfg)?),
        };
        per_model_rows.push(slice_acc(&predict(&consumer, &xs)?, truth));
    }

    // Strategy B: one central embedding patch, republished.
    let exemplars: Vec<String> = (0..corpus.config.vocab)
        .filter(|&e| corpus.topic_of[e] == 0 && !victim_idx.contains(&e))
        .take(10)
        .map(Corpus::entity_name)
        .collect();
    let patched_q = EmbeddingPatcher { alpha: 0.9 }.patch_toward_exemplars(
        &mut store,
        "ent",
        &victims,
        &exemplars,
        Timestamp::millis(1),
    )?;
    let (xp, _) = topic_features(&store.resolve(&patched_q)?.table, &corpus);
    let after = train_consumers(&xp)?;

    let mut table = Table::new(&[
        "downstream consumer",
        "corrupted slice acc",
        "per-model patch",
        "central embedding patch",
    ]);
    for (i, (name, consumer, truth)) in before.iter().enumerate() {
        let broken = slice_acc(&predict(consumer, &xs)?, truth);
        let (_, patched_consumer, _) = &after[i];
        let healed = slice_acc(&predict(patched_consumer, &xp)?, truth);
        table.row(vec![
            name.clone(),
            f3(broken),
            f3(per_model_rows[i]),
            f3(healed),
        ]);
    }

    println!(
        "{} entities, {} corrupted (topic-0 slice), 3 downstream consumers\n",
        corpus.config.vocab,
        victims.len()
    );
    table.print();
    println!(
        "\ninterventions required: per-model patching = 3 (one per consumer, and the\n\
         embedding stays broken for the next team); central patch = 1 ({patched_q},\n\
         provenance parent recorded).\n\
         Shape check: the single embedding patch lifts the slice for *all*\n\
         consumers at least as well as three separate data patches."
    );
    Ok(())
}
