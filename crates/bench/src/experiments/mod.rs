//! The derived experiment suite E1–E23 (DESIGN.md §3). Each module
//! regenerates one table; `run_all` drives them from the `experiments`
//! binary.

pub mod e01_serving_latency;
pub mod e02_pit_leakage;
pub mod e03_streaming_freshness;
pub mod e04_quality_detectors;
pub mod e05_rare_entity_kg;
pub mod e06_instability_budget;
pub mod e07_eigenspace_predicts;
pub mod e08_knn_stability;
pub mod e09_ann_tradeoff;
pub mod e10_embedding_drift;
pub mod e11_slice_patching;
pub mod e12_patch_propagation;
pub mod e13_version_alignment;
pub mod e14_network_serving;
pub mod e15_ann_serving;
pub mod e16_epoch_reads;
pub mod e17_replication;
pub mod e18_chaos;
pub mod e19_durability;
pub mod e20_sharding;
pub mod e21_wire_pipelining;
pub mod e22_tiered_embeddings;
pub mod e23_write_failover;

use fstore_common::Result;

/// One runnable experiment.
pub struct Experiment {
    pub id: &'static str,
    pub title: &'static str,
    pub run: fn(quick: bool) -> Result<()>,
}

/// The registry, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            title: "E1  Online vs offline feature serving latency (§2.2.2)",
            run: e01_serving_latency::run,
        },
        Experiment {
            id: "e2",
            title: "E2  Point-in-time joins prevent feature leakage (§2.2.2)",
            run: e02_pit_leakage::run,
        },
        Experiment {
            id: "e3",
            title: "E3  Streaming vs batch feature freshness (§2.2.1)",
            run: e03_streaming_freshness::run,
        },
        Experiment {
            id: "e4",
            title: "E4  Feature-quality detectors catch injected faults (§2.2.2)",
            run: e04_quality_detectors::run,
        },
        Experiment {
            id: "e5",
            title: "E5  KG signals rescue rare entities (§3.1.1, Bootleg)",
            run: e05_rare_entity_kg::run,
        },
        Experiment {
            id: "e6",
            title: "E6  Downstream instability vs memory budget (§3.1.2, Leszczynski)",
            run: e06_instability_budget::run,
        },
        Experiment {
            id: "e7",
            title: "E7  Eigenspace overlap predicts downstream accuracy (§3.1.2, May)",
            run: e07_eigenspace_predicts::run,
        },
        Experiment {
            id: "e8",
            title: "E8  k-NN neighborhood stability across retrains (§3.1.2, Wendlandt)",
            run: e08_knn_stability::run,
        },
        Experiment {
            id: "e9",
            title: "E9  ANN recall/latency trade-off (§4 scale claim)",
            run: e09_ann_tradeoff::run,
        },
        Experiment {
            id: "e10",
            title: "E10 Tabular monitors miss embedding drift; MMD catches it (§3.1)",
            run: e10_embedding_drift::run,
        },
        Experiment {
            id: "e11",
            title: "E11 Slice discovery + patching closes subgroup gaps (§3.1.3, Goel)",
            run: e11_slice_patching::run,
        },
        Experiment {
            id: "e12",
            title: "E12 One embedding patch heals all downstream consumers (§3.1.3)",
            run: e12_patch_propagation::run,
        },
        Experiment {
            id: "e13",
            title: "E13 Version alignment keeps deployed models working (§4)",
            run: e13_version_alignment::run,
        },
        Experiment {
            id: "e14",
            title: "E14 Network serving under open-loop load (§2.2.2)",
            run: e14_network_serving::run,
        },
        Experiment {
            id: "e15",
            title: "E15 ANN serving over the wire with hot index swap (§4)",
            run: e15_ann_serving::run,
        },
        Experiment {
            id: "e16",
            title: "E16 Epoch snapshot reads vs locks under republish (§2.2.2, §4)",
            run: e16_epoch_reads::run,
        },
        Experiment {
            id: "e17",
            title: "E17 Snapshot replication with epoch-consistent followers (§4)",
            run: e17_replication::run,
        },
        Experiment {
            id: "e18",
            title: "E18 Chaos: client-side failover under fault injection (§2.2.2, §4)",
            run: e18_chaos::run,
        },
        Experiment {
            id: "e19",
            title: "E19 Durability: SIGKILL mid-storm, recover the published epoch (§2.2.2)",
            run: e19_durability::run,
        },
        Experiment {
            id: "e20",
            title: "E20 Horizontal sharding: scatter-gather router over N shards (§4)",
            run: e20_sharding::run,
        },
        Experiment {
            id: "e21",
            title: "E21 Zero-copy wire stack: pipelined connections vs request-per-RTT (§2.2.2)",
            run: e21_wire_pipelining::run,
        },
        Experiment {
            id: "e22",
            title: "E22 Tiered embeddings: 4x-RAM working set, bounded memory (§4)",
            run: e22_tiered_embeddings::run,
        },
        Experiment {
            id: "e23",
            title: "E23 Routed writes: leader fencing + automatic failover (§2.2.2, §4)",
            run: e23_write_failover::run,
        },
    ]
}

/// Run experiments whose id is in `ids` (all when `ids` is empty).
pub fn run_selected(ids: &[String], quick: bool) -> Result<()> {
    for e in all() {
        if ids.is_empty() || ids.iter().any(|i| i.eq_ignore_ascii_case(e.id)) {
            println!("\n=== {} ===\n", e.title);
            let start = std::time::Instant::now();
            (e.run)(quick)?;
            println!(
                "\n[{} finished in {:.1}s]",
                e.id,
                start.elapsed().as_secs_f64()
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_is_complete_and_unique() {
        let exps = super::all();
        assert_eq!(exps.len(), 23);
        let mut ids: Vec<&str> = exps.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 23);
    }
}
