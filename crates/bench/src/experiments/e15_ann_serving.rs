//! E15 — ANN serving over the wire with hot index swap (paper §4).
//!
//! Claim: serving embeddings "at industrial scale" needs (a) approximate
//! indexes behind the search endpoint — an exact scan per query does not
//! survive production load — and (b) the ability to rebuild and swap the
//! index while traffic flows, because embedding tables republish and an
//! offline reindex window is exactly the operational burden the paper
//! warns about. We measure both:
//!
//! 1. **Family sweep** — the same search workload over the network against
//!    Flat, IVF, and HNSW snapshots: recall@10 against exact ground truth
//!    plus client-observed p50/p95/p99.
//! 2. **Hot swap** — hammer threads drive `SearchNearest` continuously
//!    while the catalog rebuilds the index twice (low-recall IVF → HNSW →
//!    Flat) from a freshly republished table version. We count requests
//!    dropped during the swaps (target: zero besides explicit
//!    `Overloaded`) and confirm recall after the swap beats the degraded
//!    baseline.
//!
//! Results are also written to `BENCH_ann_serve.json` for tracking.

use crate::table::{f1, f3, Table};
use crate::workloads::clustered_vectors;
use fstore_common::{Result, Rng, Timestamp, Xoshiro256};
use fstore_core::FeatureServer;
use fstore_embed::{EmbeddingDb, EmbeddingProvenance, EmbeddingTable};
use fstore_index::{HnswConfig, IvfConfig};
use fstore_serve::{
    fixed_clock, start, ErrorCode, FeatureClient, IndexCatalog, IndexSpec, SearchOptions,
    ServeConfig, ServeEngine, StoreApi, WireHit,
};
use fstore_storage::OnlineStore;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const NOW: Timestamp = Timestamp(60_000);
const K: usize = 10;

#[derive(Serialize)]
struct FamilyResult {
    family: String,
    params: String,
    recall_at_10: f64,
    queries: usize,
    p50_ms: Option<f64>,
    p95_ms: Option<f64>,
    p99_ms: Option<f64>,
    speedup_vs_flat: f64,
}

#[derive(Serialize)]
struct SwapResult {
    hammer_threads: usize,
    requests_ok: u64,
    requests_overloaded: u64,
    requests_dropped: u64,
    swaps_during_traffic: u64,
    generations_observed: Vec<u64>,
    baseline_recall: f64,
    post_swap_recall: f64,
    table_version_before: u32,
    table_version_after: u32,
}

#[derive(Serialize)]
struct Artifact {
    experiment: String,
    n_vectors: usize,
    dim: usize,
    families: Vec<FamilyResult>,
    swap: SwapResult,
}

/// Clustered vectors published as `emb@v1`, keys `e{row}` aligned with
/// `export_rows` order (row i ↔ `keys[i]` is checked by construction).
fn publish_table(store: &EmbeddingDb, data: &[Vec<f32>], dim: usize) -> Result<()> {
    let mut table = EmbeddingTable::new(dim)?;
    for (i, v) in data.iter().enumerate() {
        table.insert(format!("e{i:06}"), v.clone())?;
    }
    store.publish("emb", table, EmbeddingProvenance::default(), NOW)?;
    Ok(())
}

/// Exact top-k keys per query, computed once in-process as ground truth.
fn exact_truth(data: &[Vec<f32>], queries: &[Vec<f32>], k: usize) -> Vec<Vec<String>> {
    queries
        .iter()
        .map(|q| {
            let mut scored: Vec<(usize, f32)> = data
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let d: f32 = v.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
                    (i, d)
                })
                .collect();
            scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            scored
                .into_iter()
                .take(k)
                .map(|(i, _)| format!("e{i:06}"))
                .collect()
        })
        .collect()
}

fn recall_of(hits: &[WireHit], want: &[String]) -> f64 {
    let got: Vec<&str> = hits.iter().map(|h| h.key.as_str()).collect();
    want.iter().filter(|w| got.contains(&w.as_str())).count() as f64 / want.len() as f64
}

/// Run `queries` over the wire from `threads` clients; mean recall comes
/// back with the server's endpoint latency snapshot.
fn drive_queries(
    addr: std::net::SocketAddr,
    queries: Arc<Vec<Vec<f32>>>,
    truth: Arc<Vec<Vec<String>>>,
    threads: usize,
) -> (f64, f64) {
    let started = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let queries = Arc::clone(&queries);
            let truth = Arc::clone(&truth);
            std::thread::spawn(move || {
                let mut client = FeatureClient::connect(addr).expect("connect");
                let mut acc = 0.0;
                let mut count = 0usize;
                for (i, q) in queries.iter().enumerate() {
                    if i % threads != t {
                        continue;
                    }
                    let got = client
                        .search_nearest("emb", q, K as u32, SearchOptions::default())
                        .expect("search");
                    acc += recall_of(&got.hits, &truth[i]);
                    count += 1;
                }
                (acc, count)
            })
        })
        .collect();
    let mut acc = 0.0;
    let mut count = 0usize;
    for j in joins {
        let (a, c) = j.join().expect("query thread panicked");
        acc += a;
        count += c;
    }
    (acc / count as f64, started.elapsed().as_secs_f64())
}

pub fn run(quick: bool) -> Result<()> {
    let n = if quick { 6_000 } else { 30_000 };
    let dim = if quick { 16 } else { 32 };
    let n_queries = if quick { 200 } else { 600 };
    let clusters = 32;

    let mut data = clustered_vectors(n + n_queries, dim, clusters, 0.4, 15);
    let queries = Arc::new(data.split_off(n));
    let truth = Arc::new(exact_truth(&data, &queries, K));

    println!(
        "{n} vectors × {dim} dims ({clusters} latent clusters), {} queries over TCP, k={K}\n",
        queries.len()
    );

    // ------------------------------------------------------------------
    // Phase 1: family sweep — one server per family, identical workload.
    // ------------------------------------------------------------------
    let families: Vec<(IndexSpec, String)> = vec![
        (IndexSpec::Flat, "-".to_string()),
        (
            IndexSpec::Ivf(IvfConfig {
                nlist: (n as f64).sqrt() as usize,
                nprobe: 16,
                train_iters: 8,
                ..IvfConfig::default()
            }),
            "nprobe=16".to_string(),
        ),
        (
            IndexSpec::Hnsw(HnswConfig {
                ef_search: 64,
                ef_construction: if quick { 48 } else { 100 },
                ..HnswConfig::default()
            }),
            "ef=64".to_string(),
        ),
    ];

    let mut table = Table::new(&[
        "index",
        "params",
        "recall@10",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "speedup",
    ]);
    let mut family_results: Vec<FamilyResult> = Vec::new();
    let mut flat_wall: Option<f64> = None;
    for (spec, params_label) in &families {
        let store = EmbeddingDb::new();
        publish_table(&store, &data, dim)?;
        let catalog = Arc::new(IndexCatalog::new(store.clone()));
        catalog.build("emb", spec)?;
        let engine = ServeEngine::new(
            FeatureServer::new(Arc::new(OnlineStore::default())),
            fixed_clock(NOW),
        )
        .with_index_catalog(Arc::clone(&catalog));
        let handle = start(engine, ServeConfig::default())
            .map_err(|e| fstore_common::FsError::Storage(format!("bind loopback: {e}")))?;

        let (recall, wall_s) =
            drive_queries(handle.addr(), Arc::clone(&queries), Arc::clone(&truth), 4);
        let snapshot = handle.metrics().snapshot();
        let ep = &snapshot.endpoints["search_nearest"];
        let speedup = match flat_wall {
            None => {
                flat_wall = Some(wall_s);
                1.0
            }
            Some(flat) => flat / wall_s,
        };
        table.row(vec![
            spec.kind().to_string(),
            params_label.clone(),
            f3(recall),
            ep.p50_ms.map_or("-".into(), f1),
            ep.p95_ms.map_or("-".into(), f1),
            ep.p99_ms.map_or("-".into(), f1),
            format!("{speedup:.1}x"),
        ]);
        family_results.push(FamilyResult {
            family: spec.kind().to_string(),
            params: params_label.clone(),
            recall_at_10: recall,
            queries: queries.len(),
            p50_ms: ep.p50_ms,
            p95_ms: ep.p95_ms,
            p99_ms: ep.p99_ms,
            speedup_vs_flat: speedup,
        });
        handle.shutdown();
    }
    table.print();

    // ------------------------------------------------------------------
    // Phase 2: hot swap under continuous traffic.
    // ------------------------------------------------------------------
    println!("\n-- hot swap under load --");
    let store = EmbeddingDb::new();
    publish_table(&store, &data, dim)?;
    let catalog = Arc::new(IndexCatalog::new(store.clone()));
    // Deliberately degraded baseline: nprobe=1 leaves recall headroom the
    // post-swap index must recover.
    catalog.build(
        "emb",
        &IndexSpec::Ivf(IvfConfig {
            nlist: (n as f64).sqrt() as usize,
            nprobe: 1,
            train_iters: 8,
            ..IvfConfig::default()
        }),
    )?;
    let engine = ServeEngine::new(
        FeatureServer::new(Arc::new(OnlineStore::default())),
        fixed_clock(NOW),
    )
    .with_index_catalog(Arc::clone(&catalog));
    let handle = start(
        engine,
        ServeConfig::builder()
            .workers(4)
            .queue_depth(1024)
            .build()?,
    )
    .map_err(|e| fstore_common::FsError::Storage(format!("bind loopback: {e}")))?;
    let addr = handle.addr();

    let (baseline_recall, _) = drive_queries(addr, Arc::clone(&queries), Arc::clone(&truth), 2);
    println!("baseline recall@10 (ivf nprobe=1): {baseline_recall:.3}");

    // Republish the identical rows as emb@v2 mid-run: the ground truth is
    // unchanged, but the snapshot's staleness becomes visible and the
    // rebuilt index reports table_version 2 — a client can watch the
    // cross-version cutover happen (§4's alignment hazard, instrumented).
    publish_table(&store, &data, dim)?;
    catalog.publish_all_statuses();

    let stop = Arc::new(AtomicBool::new(false));
    let threads = 4usize;
    let hammers: Vec<_> = (0..threads)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut client = FeatureClient::connect(addr).expect("connect");
                let mut rng = Xoshiro256::seeded(77 + t as u64);
                let (mut ok, mut overloaded, mut dropped) = (0u64, 0u64, 0u64);
                let mut generations: Vec<u64> = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    let q = &queries[rng.below(queries.len() as u64) as usize];
                    match client.search_nearest("emb", q, K as u32, SearchOptions::default()) {
                        Ok(res) => {
                            ok += 1;
                            if generations.last() != Some(&res.index_generation) {
                                generations.push(res.index_generation);
                            }
                        }
                        Err(e) if e.code() == Some(ErrorCode::Overloaded) => overloaded += 1,
                        Err(_) => dropped += 1,
                    }
                }
                (ok, overloaded, dropped, generations)
            })
        })
        .collect();

    // Two rebuild+swap cycles while the hammers run.
    let swap_started = Instant::now();
    catalog
        .rebuild_in_background(
            "emb",
            IndexSpec::Hnsw(HnswConfig {
                ef_search: 64,
                ef_construction: if quick { 48 } else { 100 },
                ..HnswConfig::default()
            }),
        )
        .join()
        .expect("hnsw build thread")?;
    catalog
        .rebuild_in_background("emb", IndexSpec::Flat)
        .join()
        .expect("flat build thread")?;
    let swap_wall = swap_started.elapsed().as_secs_f64();
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Release);

    let (mut ok, mut overloaded, mut dropped) = (0u64, 0u64, 0u64);
    let mut generations_observed: Vec<u64> = Vec::new();
    for h in hammers {
        let (o, v, d, gens) = h.join().expect("hammer thread panicked");
        ok += o;
        overloaded += v;
        dropped += d;
        for g in gens {
            if !generations_observed.contains(&g) {
                generations_observed.push(g);
            }
        }
    }
    generations_observed.sort_unstable();

    let (post_recall, _) = drive_queries(addr, Arc::clone(&queries), Arc::clone(&truth), 2);
    let final_status = catalog.status("emb").expect("emb snapshot");
    let snapshot = handle.metrics().snapshot();

    println!(
        "swap phase: {ok} ok, {overloaded} overloaded, {dropped} dropped across \
         2 rebuilds ({swap_wall:.2}s); generations observed {generations_observed:?}"
    );
    println!(
        "post-swap recall@10 (flat, built from emb@v{}): {post_recall:.3}",
        final_status.built_from_version
    );

    let swap = SwapResult {
        hammer_threads: threads,
        requests_ok: ok,
        requests_overloaded: overloaded,
        requests_dropped: dropped,
        swaps_during_traffic: snapshot.index_swaps,
        generations_observed: generations_observed.clone(),
        baseline_recall,
        post_swap_recall: post_recall,
        table_version_before: 1,
        table_version_after: final_status.built_from_version,
    };
    handle.shutdown();

    // The experiment's hard claims, asserted so regressions fail loudly.
    assert_eq!(swap.requests_dropped, 0, "requests dropped during swap");
    assert!(
        swap.post_swap_recall >= swap.baseline_recall,
        "post-swap recall regressed: {} < {}",
        swap.post_swap_recall,
        swap.baseline_recall
    );
    assert_eq!(swap.table_version_after, 2, "rebuild picked up emb@v2");
    assert_eq!(final_status.staleness, 0, "final snapshot is fresh");

    let artifact = Artifact {
        experiment: "e15_ann_serving".to_string(),
        n_vectors: n,
        dim,
        families: family_results,
        swap,
    };
    let path = "BENCH_ann_serve.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .map_err(|e| fstore_common::FsError::Storage(format!("write {path}: {e}")))?;
    println!("\nwrote {path}");
    println!(
        "\nShape check: IVF and HNSW hold recall@10 ≥ ~0.9 at a measurable\n\
         speedup over the exact scan, over a real socket. During two mid-\n\
         traffic rebuilds every request is answered — zero drops beyond\n\
         explicit Overloaded — the generation counter steps 1→2→3 in client-\n\
         visible responses, and the final snapshot serves the republished\n\
         emb@v2 with staleness 0."
    );
    Ok(())
}
