//! E17 — snapshot-based replication with epoch-consistent followers
//! (paper §4, DESIGN.md §2.12).
//!
//! Claim: an embedding ecosystem's read fan-out outgrows one serving
//! process, and the cheap way to scale reads is followers that replay the
//! leader's publication log — bootstrapping from a full snapshot, then
//! applying epoch-tagged deltas so every answer they serve carries an
//! epoch the leader actually published. Three measurements:
//!
//! 1. **Bootstrap under storm** — a follower bootstraps while the leader
//!    publishes continuously (offline appends, online writes, embedding
//!    republishes, index rebuilds); we time the full-snapshot install and
//!    then sample replication lag while the storm keeps running. The
//!    steady-state lag must stay within the delta-retention window (no
//!    full-snapshot fallback), and after the storm the follower must drain
//!    to lag zero.
//! 2. **Byte-identity** — once converged, the follower's server must
//!    answer `GetFeatures` / `GetEmbedding` / `SearchNearest` with exactly
//!    the leader's bytes (same epochs, same fixed clock).
//! 3. **Read throughput** — closed-loop clients against 1 leader vs the
//!    same client count spread over 1 leader + 2 followers. Every server
//!    runs one worker with an injected 500µs store pass (`handler_delay`),
//!    so capacity is service-time-bound (~2k rps/server) and adding
//!    followers must scale aggregate throughput even on a single-core
//!    runner, where real CPU-bound handlers could not. Aggregate speedup
//!    must be ≥ 2× — the hard claim of the replication design.
//!
//! Results are written to `BENCH_repl.json`.

use crate::table::{f1, Table};
use fstore_common::{stats::exact_quantile, EntityKey, Result, Timestamp, Value, ValueType};
use fstore_common::{FsError, Schema};
use fstore_embed::{EmbeddingProvenance, EmbeddingTable};
use fstore_repl::{Follower, LeaderParts, ReplLeader};
use fstore_serve::{fixed_clock, start, FeatureClient, IndexSpec, Request, ServeConfig, StoreApi};
use fstore_storage::TableConfig;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NOW: Timestamp = Timestamp(60_000);
/// Leader publish cadence during the storm phase.
const STORM_CADENCE: Duration = Duration::from_millis(2);
/// Follower poll cadence — same order as the publish cadence, so the
/// steady-state lag is a handful of deltas, far inside retention.
const SYNC_INTERVAL: Duration = Duration::from_millis(2);
/// Injected per-request store pass for the throughput phase: capacity is
/// ~2k rps per single-worker server, so scaling must come from followers.
const STORE_PASS: Duration = Duration::from_micros(500);
const RETENTION: usize = 64;
const CLIENTS: usize = 6;

#[derive(Serialize)]
struct ThroughputRow {
    mode: String,
    servers: usize,
    clients: usize,
    ok: u64,
    errors: u64,
    wall_s: f64,
    rps: f64,
}

#[derive(Serialize)]
struct Artifact {
    experiment: String,
    retention: usize,
    bootstrap_mid_storm_ms: f64,
    second_bootstrap_ms: f64,
    storm_publications: u64,
    lag_samples: usize,
    lag_p50: f64,
    lag_p99: f64,
    lag_max: u64,
    fallbacks: u64,
    converged_epoch: u64,
    byte_identical_endpoints: usize,
    throughput: Vec<ThroughputRow>,
    read_speedup: f64,
}

fn emb_table(n: usize, dim: usize, seed: u64) -> Result<EmbeddingTable> {
    let mut t = EmbeddingTable::new(dim)?;
    for i in 0..n {
        let v: Vec<f32> = (0..dim)
            .map(|d| ((seed + i as u64) as f32) * 0.01 + d as f32)
            .collect();
        t.insert(format!("e{i:04}"), v)?;
    }
    Ok(t)
}

fn storm_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_depth: 64,
        max_batch: 8,
        ..ServeConfig::default()
    }
}

fn throughput_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_depth: 64,
        max_batch: 1,
        handler_delay: Some(STORE_PASS),
        ..ServeConfig::default()
    }
}

/// `clients` closed-loop threads split round-robin over `addrs`, each
/// hammering `GetFeatures` until the deadline. Returns (ok, errors, wall).
fn drive_readers(addrs: &[std::net::SocketAddr], duration: Duration) -> (u64, u64, f64) {
    let started = Instant::now();
    let joins: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addrs[c % addrs.len()];
            std::thread::spawn(move || -> (u64, u64) {
                let mut client = match FeatureClient::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return (0, 1),
                };
                let (mut ok, mut errors) = (0u64, 0u64);
                let entity = format!("u{}", c % 5);
                while started.elapsed() < duration {
                    match client.get_features("user", &entity, &["score"]) {
                        Ok(_) => ok += 1,
                        Err(_) => errors += 1,
                    }
                }
                (ok, errors)
            })
        })
        .collect();
    let (mut ok, mut errors) = (0u64, 0u64);
    for j in joins {
        let (o, e) = j.join().expect("reader thread panicked");
        ok += o;
        errors += e;
    }
    (ok, errors, started.elapsed().as_secs_f64())
}

pub fn run(quick: bool) -> Result<()> {
    let emb_n = if quick { 128 } else { 400 };
    let emb_dim = 8usize;
    let storm = Duration::from_millis(if quick { 400 } else { 1_500 });
    let read_window = Duration::from_millis(if quick { 500 } else { 2_000 });

    println!(
        "retention {RETENTION} deltas; storm publishes every {STORM_CADENCE:?} for {storm:?};\n\
         follower polls every {SYNC_INTERVAL:?}; throughput: {CLIENTS} closed-loop clients,\n\
         {STORE_PASS:?} store pass, 1 worker per server, {read_window:?} window\n"
    );

    // ------------------------------------------------------------------
    // Leader: seed all four components, then start serving.
    // ------------------------------------------------------------------
    let leader = ReplLeader::with_retention(LeaderParts::new(), RETENTION);
    leader.parts().offline.write(|s| {
        s.create_table(
            "events",
            TableConfig::new(Schema::of(&[("n", ValueType::Int)])),
        )
    })?;
    leader.parts().embeddings.publish(
        "emb",
        emb_table(emb_n, emb_dim, 0)?,
        EmbeddingProvenance::default(),
        NOW,
    )?;
    leader.parts().indexes.build("emb", &IndexSpec::Flat)?;
    for u in 0..5 {
        leader.put_online(
            "user",
            &EntityKey::new(format!("u{u}")),
            &[("score", Value::Float(u as f64 * 0.25))],
            NOW,
        )?;
    }
    let leader_handle = start(leader.engine(fixed_clock(NOW)), storm_config())
        .map_err(|e| FsError::Storage(format!("start leader: {e}")))?;
    let leader_addr = leader_handle.addr();

    // ------------------------------------------------------------------
    // Phase 1: publish storm across every component while a follower
    // bootstraps and then tracks the leader through a sync loop.
    // ------------------------------------------------------------------
    let storming = Arc::new(AtomicBool::new(true));
    let storm_thread = {
        let leader = Arc::clone(&leader);
        let storming = Arc::clone(&storming);
        std::thread::spawn(move || -> Result<u64> {
            let mut i = 0u64;
            while storming.load(Ordering::Acquire) {
                leader
                    .parts()
                    .offline
                    .write(|s| s.append("events", &[Value::Int(i as i64)]))?;
                if i.is_multiple_of(5) {
                    leader.put_online(
                        "user",
                        &EntityKey::new(format!("u{}", (i / 5) % 5)),
                        &[("score", Value::Float(i as f64))],
                        NOW,
                    )?;
                }
                if i % 25 == 24 {
                    leader.parts().embeddings.publish(
                        "emb",
                        emb_table(emb_n, emb_dim, i)?,
                        EmbeddingProvenance::default(),
                        NOW,
                    )?;
                    leader.parts().indexes.build("emb", &IndexSpec::Flat)?;
                }
                i += 1;
                std::thread::sleep(STORM_CADENCE);
            }
            Ok(i)
        })
    };

    // Bootstrap mid-storm: the full snapshot lands while deltas keep
    // appending behind it.
    let t = Instant::now();
    let follower = Arc::new(
        Follower::bootstrap(leader_addr.to_string())
            .map_err(|e| FsError::Storage(format!("bootstrap follower: {e}")))?,
    );
    let bootstrap_mid_storm_ms = t.elapsed().as_secs_f64() * 1e3;
    let sync = follower.start_sync(SYNC_INTERVAL);

    // Sample lag while the storm runs.
    let mut lags: Vec<u64> = Vec::new();
    let sample_until = Instant::now() + storm;
    while Instant::now() < sample_until {
        lags.push(follower.lag());
        std::thread::sleep(Duration::from_millis(5));
    }
    storming.store(false, Ordering::Release);
    let storm_publications = storm_thread.join().expect("storm thread panicked")?;

    // Drain: with publishes stopped the follower must apply the leader's
    // actual last seq (`lag()` alone can be stale for one poll interval).
    let deadline = Instant::now() + Duration::from_secs(10);
    while follower.applied_epoch() != leader.log().last_seq() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    sync.stop();
    let lag_max = lags.iter().copied().max().unwrap_or(0);
    let lag_f: Vec<f64> = lags.iter().map(|&l| l as f64).collect();
    let lag_p50 = exact_quantile(&lag_f, 0.5).unwrap_or(f64::NAN);
    let lag_p99 = exact_quantile(&lag_f, 0.99).unwrap_or(f64::NAN);
    println!(
        "bootstrap mid-storm: {bootstrap_mid_storm_ms:.1} ms; {} publications; \
         lag p50 {lag_p50:.0}, p99 {lag_p99:.0}, max {lag_max} \
         (retention {RETENTION}); fallbacks {}",
        storm_publications,
        follower.fallbacks()
    );
    assert_eq!(
        follower.lag(),
        0,
        "follower never drained to the leader's epoch"
    );
    assert!(
        (lag_max as usize) <= RETENTION,
        "steady-state lag {lag_max} exceeded the retention window {RETENTION}"
    );
    assert_eq!(
        follower.fallbacks(),
        0,
        "an in-window follower should never need a full-snapshot fallback"
    );

    // ------------------------------------------------------------------
    // Phase 2: byte-identity at equal epochs.
    // ------------------------------------------------------------------
    let follower_handle = start(follower.engine(fixed_clock(NOW)), storm_config())
        .map_err(|e| FsError::Storage(format!("start follower server: {e}")))?;
    let requests = [
        Request::GetFeatures {
            group: "user".into(),
            entity: "u1".into(),
            features: vec!["score".into()],
        },
        Request::GetEmbedding {
            table: "emb".into(),
            key: "e0003".into(),
        },
        Request::SearchNearest {
            table: "emb".into(),
            query: vec![1.0; emb_dim],
            k: 5,
            options: Default::default(),
        },
    ];
    let mut to_leader = FeatureClient::connect(leader_addr)
        .map_err(|e| FsError::Storage(format!("connect leader: {e}")))?;
    let mut to_follower = FeatureClient::connect(follower_handle.addr())
        .map_err(|e| FsError::Storage(format!("connect follower: {e}")))?;
    for request in &requests {
        let a = to_leader
            .call(request)
            .map_err(|e| FsError::Storage(format!("leader call: {e}")))?;
        let b = to_follower
            .call(request)
            .map_err(|e| FsError::Storage(format!("follower call: {e}")))?;
        assert_eq!(
            a.encode(),
            b.encode(),
            "leader and converged follower diverged on {request:?}"
        );
    }
    let byte_identical_endpoints = requests.len();
    println!(
        "byte-identity: {byte_identical_endpoints}/{} endpoints answered identically",
        requests.len()
    );
    drop(to_leader);
    drop(to_follower);
    follower_handle.shutdown();
    leader_handle.shutdown();

    // ------------------------------------------------------------------
    // Phase 3: read throughput, 1 leader vs 1 leader + 2 followers. Same
    // total client count; every server is service-time-bound by the
    // injected store pass, so extra capacity can only come from replicas.
    // ------------------------------------------------------------------
    let leader_handle = start(leader.engine(fixed_clock(NOW)), throughput_config())
        .map_err(|e| FsError::Storage(format!("restart leader: {e}")))?;
    let t = Instant::now();
    let follower2 = Arc::new(
        Follower::bootstrap(leader_handle.addr().to_string())
            .map_err(|e| FsError::Storage(format!("bootstrap second follower: {e}")))?,
    );
    let second_bootstrap_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut table = Table::new(&["mode", "servers", "clients", "ok", "errors", "rps"]);
    let mut throughput: Vec<ThroughputRow> = Vec::new();
    let f1_handle = start(follower.engine(fixed_clock(NOW)), throughput_config())
        .map_err(|e| FsError::Storage(format!("start follower 1: {e}")))?;
    let f2_handle = start(follower2.engine(fixed_clock(NOW)), throughput_config())
        .map_err(|e| FsError::Storage(format!("start follower 2: {e}")))?;
    let fleets: [(&str, Vec<std::net::SocketAddr>); 2] = [
        ("1 leader", vec![leader_handle.addr()]),
        (
            "1 leader + 2 followers",
            vec![leader_handle.addr(), f1_handle.addr(), f2_handle.addr()],
        ),
    ];
    for (mode, addrs) in &fleets {
        let (ok, errors, wall_s) = drive_readers(addrs, read_window);
        let rps = ok as f64 / wall_s;
        table.row(vec![
            mode.to_string(),
            addrs.len().to_string(),
            CLIENTS.to_string(),
            ok.to_string(),
            errors.to_string(),
            f1(rps),
        ]);
        throughput.push(ThroughputRow {
            mode: mode.to_string(),
            servers: addrs.len(),
            clients: CLIENTS,
            ok,
            errors,
            wall_s,
            rps,
        });
    }
    f1_handle.shutdown();
    f2_handle.shutdown();
    leader_handle.shutdown();
    table.print();

    let read_speedup = throughput[1].rps / throughput[0].rps;
    println!("\naggregate read throughput speedup: {read_speedup:.2}x");
    assert!(
        read_speedup >= 2.0,
        "1 leader + 2 followers must at least double aggregate read \
         throughput (got {read_speedup:.2}x)"
    );

    let artifact = Artifact {
        experiment: "e17_replication".to_string(),
        retention: RETENTION,
        bootstrap_mid_storm_ms,
        second_bootstrap_ms,
        storm_publications,
        lag_samples: lags.len(),
        lag_p50,
        lag_p99,
        lag_max,
        fallbacks: follower.fallbacks(),
        converged_epoch: follower.applied_epoch(),
        byte_identical_endpoints,
        throughput,
        read_speedup,
    };
    let path = "BENCH_repl.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .map_err(|e| FsError::Storage(format!("write {path}: {e}")))?;
    println!("\nwrote {path}");
    println!(
        "\nShape check: the mid-storm bootstrap is one snapshot install, after\n\
         which steady-state lag sits at a handful of deltas — far inside the\n\
         retention window, so the follower never re-bootstraps. A converged\n\
         follower is indistinguishable on the wire, and since each server is\n\
         store-pass-bound, two followers triple the serving capacity."
    );
    Ok(())
}
