//! E2 — point-in-time joins prevent feature leakage (paper §2.2.2).
//!
//! Setup: a behavioural feature drifts *after* the label event in a way
//! correlated with the label (the classic leak: the outcome influences the
//! future feature). A naive latest-value join trains on future data:
//! offline accuracy looks great, deployed accuracy collapses. The PIT join
//! closes the gap.

use crate::table::{f3, pct, Table};
use crate::workloads::feature_history_schema;
use fstore_common::{Duration, Result, Rng, Timestamp, Value, Xoshiro256};
use fstore_core::{naive_latest_join, point_in_time_join, LabelEvent, PitFeature};
use fstore_models::{Classifier, LogisticRegression, TrainConfig};
use fstore_storage::{OfflineStore, TableConfig};

pub fn run(quick: bool) -> Result<()> {
    let users = if quick { 400 } else { 2_000 };
    let mut rng = Xoshiro256::seeded(21);

    // Ground truth: churners (label 1) have slightly lower engagement
    // before the label; AFTER churning their engagement crashes (that crash
    // is the leak — it postdates the label).
    let mut offline = OfflineStore::new();
    offline.create_table(
        "feat__engagement_v1",
        TableConfig::new(feature_history_schema()).with_time_column("ts"),
    )?;
    let label_time = Timestamp::EPOCH + Duration::days(10);
    let mut labels = Vec::with_capacity(users);
    for u in 0..users {
        let churner = rng.chance(0.4);
        labels.push(LabelEvent::new(
            format!("u{u}"),
            label_time,
            f64::from(u8::from(churner)),
        ));
        for day in 0..20 {
            let ts = Timestamp::EPOCH + Duration::days(day);
            // weak pre-label signal; huge post-label signal
            let value = if ts <= label_time {
                (if churner { 4.7 } else { 5.0 }) + rng.normal()
            } else if churner {
                0.2 + rng.normal() * 0.1
            } else {
                5.0 + rng.normal()
            };
            offline.append(
                "feat__engagement_v1",
                &[
                    Value::from(format!("u{u}")),
                    Value::Timestamp(ts),
                    Value::Float(value),
                ],
            )?;
        }
    }

    let feats = [PitFeature::materialized("engagement", 1)];
    let to_dataset = |ts: &fstore_core::TrainingSet| {
        let (xs, ys) = ts.feature_matrix(0.0);
        let ys: Vec<usize> = ys.iter().map(|v| v.as_f64().unwrap() as usize).collect();
        (xs, ys)
    };

    // Train/test split of label events (deployment = fresh labels, where
    // only past data exists — i.e. PIT-joined features are *all* you get).
    let split = users * 7 / 10;
    let (train_labels, test_labels) = labels.split_at(split);

    let mut table = Table::new(&[
        "join strategy",
        "leaked rows",
        "offline (train) acc",
        "deployed acc",
        "gap",
    ]);

    for naive in [true, false] {
        let join = |l: &[LabelEvent]| {
            if naive {
                naive_latest_join(&offline, l, &feats)
            } else {
                point_in_time_join(&offline, l, &feats)
            }
        };
        let (train_x, train_y) = to_dataset(&join(train_labels)?);
        // Deployment can only see data up to the label instant — the honest
        // evaluation set is PIT-joined regardless of how we trained.
        let (test_x, test_y) = to_dataset(&point_in_time_join(&offline, test_labels, &feats)?);

        // leaked = training rows whose feature value postdates the label
        let leaked = if naive {
            // every row joins the day-19 value, which postdates day-10 labels
            train_x.len()
        } else {
            0
        };

        let model = LogisticRegression::train(&train_x, &train_y, &TrainConfig::default())?;
        let offline_acc = model.accuracy(&train_x, &train_y)?;
        let deployed_acc = model.accuracy(&test_x, &test_y)?;
        table.row(vec![
            if naive {
                "naive latest join"
            } else {
                "point-in-time join"
            }
            .into(),
            pct(leaked as f64 / train_x.len() as f64),
            f3(offline_acc),
            f3(deployed_acc),
            f3(offline_acc - deployed_acc),
        ]);
    }

    println!("{users} users, label at day 10, feature history through day 19\n");
    table.print();
    println!(
        "\nShape check: the naive join reports inflated offline accuracy but\n\
         collapses at deployment; the PIT join's offline and deployed accuracy agree."
    );
    Ok(())
}
