//! E20 — horizontal sharding with a scatter-gather router (paper §4,
//! DESIGN.md §2.15).
//!
//! Claim: replication (E17) multiplies read capacity but not capital —
//! every node still holds every entity and every embedding table. Once
//! the dataset outgrows one node, the key space must be partitioned and a
//! router must present the shards as one store. Three measurements:
//!
//! 1. **Throughput scaling** — E14's open-loop load generator drives
//!    `GetFeatures` through routers over 1, 2, and 4 shards. Every shard
//!    server runs one worker with an injected 2ms store pass
//!    (`handler_delay`), so capacity is service-time-bound (~500 rps per
//!    shard) with enough CPU headroom that the experiment scales even on
//!    a single-core runner, where a CPU-bound handler could not. At 4
//!    shards the aggregate must be ≥ 3× the single-shard baseline —
//!    near-linear minus consistent-hash imbalance and router overhead.
//! 2. **Scatter-gather fidelity** — the router's merged `SearchNearest` /
//!    `SearchNearestByKey` top-k over partitioned shards is byte-compared
//!    (encoded response frames) against a single node holding the whole
//!    table. Distance ties are broken by key in the merge, so the bytes
//!    must match exactly.
//! 3. **Leader kill** — mid-traffic, one shard's leader dies. Per-shard
//!    failover absorbs the outage instantly; the control plane notices
//!    within its probe threshold and promotes the follower map-level;
//!    the data-plane promotion resumes writes. Every read during the
//!    outage must return the seeded truth: zero wrong answers, zero
//!    errors.
//!
//! Results are written to `BENCH_shard.json`.

use crate::table::{f1, Table};
use fstore_common::{EntityKey, Result, Timestamp, Value};
use fstore_embed::{EmbeddingProvenance, EmbeddingTable};
use fstore_repl::{LeaderParts, ReplLeader};
use fstore_serve::{
    fixed_clock, start, BreakerConfig, FeatureClient, IndexSpec, Request, RetryPolicy, ServeConfig,
    StoreApi, Transport,
};
use fstore_shard::{ClusterConfig, ShardCluster, ShardId};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NOW: Timestamp = Timestamp(60_000);
/// Injected per-request store pass: each single-worker shard serves
/// ~500 rps, so scaling must come from sharding, not from faster
/// handlers — and the pass is long enough that per-request CPU (framing,
/// syscalls, scheduling) stays a small fraction even on one core.
const STORE_PASS: Duration = Duration::from_millis(2);
/// Entities for the scaling phase — enough for the consistent hash to
/// spread load without one hot key pinning a shard.
const USERS: usize = 64;
const EMB_DIM: usize = 8;
const EMB_KEYS: usize = 48;

#[derive(Serialize)]
struct ScalingRow {
    shards: usize,
    threads: usize,
    offered_rps: f64,
    sent: u64,
    ok: u64,
    errors: u64,
    wall_s: f64,
    rps: f64,
    speedup_vs_1: f64,
}

#[derive(Serialize)]
struct Artifact {
    experiment: String,
    store_pass_us: u64,
    scaling: Vec<ScalingRow>,
    speedup_at_max_shards: f64,
    topk_queries: usize,
    topk_byte_identical: usize,
    kill_reads_ok: u64,
    kill_reads_wrong: u64,
    kill_reads_errors: u64,
    promotion_map_version: u64,
    writes_resumed_after_promotion: bool,
}

fn score_for(u: usize) -> f64 {
    u as f64 * 0.25 + 1.0
}

fn vector_for(i: usize) -> Vec<f32> {
    (0..EMB_DIM)
        .map(|d| i as f32 * 0.1 + d as f32 * 0.01)
        .collect()
}

/// One worker, an injected store pass, no batching: per-shard capacity is
/// the store pass, so shard count is the only throughput lever. The queue
/// is deeper than the client count, so nothing sheds — saturation shows
/// up as queueing delay, the open-loop generator's whole point.
fn throughput_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_depth: 64,
        max_batch: 1,
        handler_delay: Some(STORE_PASS),
        ..ServeConfig::default()
    }
}

/// Seed every user through the router's hash (each write lands on its
/// owning shard) and, per shard, that shard's slice of the embedding
/// table plus a flat index over it.
fn seed(cluster: &ShardCluster) -> Result<()> {
    for u in 0..USERS {
        cluster.put_online(
            "user",
            &EntityKey::new(format!("u{u}")),
            &[("score", Value::Float(score_for(u)))],
            NOW,
        )?;
    }
    for shard in cluster.map().shards() {
        let mut table = EmbeddingTable::new(EMB_DIM)?;
        for i in 0..EMB_KEYS {
            let key = format!("e{i:04}");
            if cluster.shard_for(&key) == shard.id {
                table.insert(key, vector_for(i))?;
            }
        }
        let leader = cluster.leader(shard.id);
        leader
            .parts()
            .embeddings
            .publish("emb", table, EmbeddingProvenance::default(), NOW)?;
        leader.parts().indexes.build("emb", &IndexSpec::Flat)?;
    }
    Ok(())
}

/// E14's open-loop schedule through routers: each thread issues request i
/// at `begin + i·interval` regardless of response times, so a saturated
/// cluster shows up as achieved < offered instead of being self-throttled
/// away. Returns (sent, ok, errors, wall).
fn drive_open_loop(
    cluster: &ShardCluster,
    threads: usize,
    per_thread_rps: f64,
    duration: Duration,
) -> (u64, u64, u64, f64) {
    let started = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let mut router = cluster.router();
            std::thread::spawn(move || -> (u64, u64, u64) {
                let interval = Duration::from_secs_f64(1.0 / per_thread_rps);
                let begin = Instant::now();
                let (mut sent, mut ok, mut errors) = (0u64, 0u64, 0u64);
                loop {
                    let due = interval.mul_f64(sent as f64);
                    if due >= duration {
                        break;
                    }
                    if let Some(sleep) = due.checked_sub(begin.elapsed()) {
                        std::thread::sleep(sleep);
                    }
                    let id = (t * 7919 + sent as usize * 13) % USERS;
                    sent += 1;
                    match router.get_features("user", &format!("u{id}"), &["score"]) {
                        Ok(_) => ok += 1,
                        Err(_) => errors += 1,
                    }
                }
                (sent, ok, errors)
            })
        })
        .collect();
    let (mut sent, mut ok, mut errors) = (0u64, 0u64, 0u64);
    for j in joins {
        let (s, o, e) = j.join().expect("load thread panicked");
        sent += s;
        ok += o;
        errors += e;
    }
    (sent, ok, errors, started.elapsed().as_secs_f64())
}

pub fn run(quick: bool) -> Result<()> {
    let shard_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let threads = if quick { 12 } else { 24 };
    let per_thread_rps = if quick { 100.0 } else { 150.0 };
    let window = Duration::from_millis(if quick { 700 } else { 2_000 });
    let min_speedup = if quick { 1.5 } else { 3.0 };
    let topk_queries = if quick { 8 } else { 16 };
    let by_key_anchors = if quick { 4 } else { 8 };

    println!(
        "open-loop load: {threads} threads x {per_thread_rps:.0} rps over {window:?};\n\
         {STORE_PASS:?} store pass, 1 worker per shard (~500 rps/shard);\n\
         shard counts {shard_counts:?}, required speedup at max {min_speedup:.1}x\n"
    );

    // ------------------------------------------------------------------
    // Phase 1: GetFeatures throughput, 1 -> N shards, same offered load.
    // Retries and breakers are disabled so the measurement is the raw
    // serving capacity, not the retry layer re-shaping the load.
    // ------------------------------------------------------------------
    let mut table = Table::new(&[
        "shards", "threads", "offered", "sent", "ok", "errors", "rps", "speedup",
    ]);
    let mut scaling: Vec<ScalingRow> = Vec::new();
    for &shards in shard_counts {
        let mut cluster = ShardCluster::start(
            ClusterConfig {
                shards,
                followers: 0,
                serve: throughput_config(),
                ..ClusterConfig::default()
            },
            fixed_clock(NOW),
        )?;
        cluster.set_router_config(fstore_shard::RouterConfig {
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            breakers: BreakerConfig {
                failure_threshold: u32::MAX,
                ..BreakerConfig::default()
            },
            ..Default::default()
        });
        seed(&cluster)?;
        let (sent, ok, errors, wall_s) = drive_open_loop(&cluster, threads, per_thread_rps, window);
        cluster.shutdown();
        let rps = ok as f64 / wall_s;
        let speedup = if scaling.is_empty() {
            1.0
        } else {
            rps / scaling[0].rps
        };
        let offered = threads as f64 * per_thread_rps;
        table.row(vec![
            shards.to_string(),
            threads.to_string(),
            f1(offered),
            sent.to_string(),
            ok.to_string(),
            errors.to_string(),
            f1(rps),
            f1(speedup),
        ]);
        scaling.push(ScalingRow {
            shards,
            threads,
            offered_rps: offered,
            sent,
            ok,
            errors,
            wall_s,
            rps,
            speedup_vs_1: speedup,
        });
    }
    table.print();
    let speedup_at_max_shards = scaling.last().expect("at least one row").speedup_vs_1;
    println!(
        "\naggregate GetFeatures speedup at {} shards: {speedup_at_max_shards:.2}x",
        scaling.last().unwrap().shards
    );
    assert!(
        speedup_at_max_shards >= min_speedup,
        "sharding must scale service-time-bound throughput \
         (got {speedup_at_max_shards:.2}x, need {min_speedup:.1}x)"
    );

    // ------------------------------------------------------------------
    // Phase 2: scatter-gather top-k vs a single-node oracle, byte-level.
    // ------------------------------------------------------------------
    let cluster = ShardCluster::start(
        ClusterConfig {
            shards: 2,
            followers: 0,
            ..ClusterConfig::default()
        },
        fixed_clock(NOW),
    )?;
    seed(&cluster)?;
    let oracle = ReplLeader::with_retention(LeaderParts::new(), 64);
    let mut full = EmbeddingTable::new(EMB_DIM)?;
    for i in 0..EMB_KEYS {
        full.insert(format!("e{i:04}"), vector_for(i))?;
    }
    oracle
        .parts()
        .embeddings
        .publish("emb", full, EmbeddingProvenance::default(), NOW)?;
    oracle.parts().indexes.build("emb", &IndexSpec::Flat)?;
    let oracle_handle = start(oracle.engine(fixed_clock(NOW)), ServeConfig::default())
        .map_err(|e| fstore_common::FsError::Storage(format!("start oracle: {e}")))?;
    let mut oracle_client = FeatureClient::connect(oracle_handle.addr())
        .map_err(|e| fstore_common::FsError::Storage(format!("connect oracle: {e}")))?;
    let mut router = cluster.router();

    let mut requests: Vec<Request> = (0..topk_queries)
        .map(|j| Request::SearchNearest {
            table: "emb".into(),
            query: (0..EMB_DIM)
                .map(|d| j as f32 * 0.37 + 0.003 + d as f32 * 0.01)
                .collect(),
            k: 10,
            options: Default::default(),
        })
        .collect();
    for a in 0..by_key_anchors {
        requests.push(Request::SearchNearestByKey {
            table: "emb".into(),
            key: format!("e{:04}", (a * 11) % EMB_KEYS),
            k: 5,
            options: Default::default(),
        });
    }
    let mut topk_byte_identical = 0usize;
    for request in &requests {
        let ours = router
            .call(request)
            .map_err(|e| fstore_common::FsError::Storage(format!("routed search: {e}")))?;
        let truth = oracle_client
            .call(request)
            .map_err(|e| fstore_common::FsError::Storage(format!("oracle search: {e}")))?;
        assert_eq!(
            ours.encode(),
            truth.encode(),
            "router top-k diverged from the single-node oracle on {request:?}"
        );
        topk_byte_identical += 1;
    }
    println!(
        "\nscatter-gather fidelity: {topk_byte_identical}/{} responses byte-identical to the oracle",
        requests.len()
    );
    drop(oracle_client);
    oracle_handle.shutdown();
    cluster.shutdown();

    // ------------------------------------------------------------------
    // Phase 3: leader kill under traffic — failover + promotion, zero
    // wrong answers, zero errors.
    // ------------------------------------------------------------------
    let mut cluster = ShardCluster::start(
        ClusterConfig {
            shards: 2,
            followers: 1,
            ..ClusterConfig::default()
        },
        fixed_clock(NOW),
    )?;
    seed(&cluster)?;
    assert!(
        cluster.wait_converged(Duration::from_secs(10)),
        "followers never converged after seeding"
    );
    let control = cluster.control();
    let victim = ShardId(0);
    let stop = Arc::new(AtomicBool::new(false));
    let traffic = {
        let stop = Arc::clone(&stop);
        let mut router = cluster.router();
        std::thread::spawn(move || -> (u64, u64, u64) {
            let (mut ok, mut wrong, mut errors) = (0u64, 0u64, 0u64);
            let mut u = 0usize;
            while !stop.load(Ordering::Acquire) {
                let entity = format!("u{}", u % USERS);
                match router.get_features("user", &entity, &["score"]) {
                    Ok(v) => {
                        if v.values == vec![Value::Float(score_for(u % USERS))] {
                            ok += 1;
                        } else {
                            wrong += 1;
                        }
                    }
                    Err(_) => errors += 1,
                }
                u += 1;
            }
            (ok, wrong, errors)
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    cluster.kill_leader(victim);
    // Two missed probes promote the shard's follower map-level.
    let first = control.probe_once();
    assert!(first.is_empty(), "one strike must not promote");
    let events = control.probe_once();
    assert_eq!(events.len(), 1, "second strike promotes");
    let promotion_map_version = events[0].map_version;
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Release);
    let (kill_reads_ok, kill_reads_wrong, kill_reads_errors) =
        traffic.join().expect("traffic thread panicked");
    println!(
        "\nleader kill: {kill_reads_ok} reads ok, {kill_reads_wrong} wrong, \
         {kill_reads_errors} errors; map v{promotion_map_version} after promotion"
    );
    assert!(kill_reads_ok > 0, "no reads completed during the outage");
    assert_eq!(kill_reads_wrong, 0, "a read returned silently wrong data");
    assert_eq!(
        kill_reads_errors, 0,
        "failover + retries must absorb the outage"
    );

    // Data-plane promotion: writes resume on the promoted follower and
    // are visible through the router.
    cluster.promote_local(victim);
    let moved = (0..USERS)
        .find(|u| cluster.shard_for(&format!("u{u}")) == victim)
        .expect("the victim shard owns at least one user");
    cluster.put_online(
        "user",
        &EntityKey::new(format!("u{moved}")),
        &[("score", Value::Float(999.0))],
        NOW,
    )?;
    let mut router = cluster.router();
    let v = router
        .get_features("user", &format!("u{moved}"), &["score"])
        .map_err(|e| fstore_common::FsError::Storage(format!("post-promotion read: {e}")))?;
    let writes_resumed_after_promotion = v.values == vec![Value::Float(999.0)];
    assert!(
        writes_resumed_after_promotion,
        "a write to the promoted leader must be readable through the router"
    );
    cluster.shutdown();

    let artifact = Artifact {
        experiment: "e20_sharding".to_string(),
        store_pass_us: STORE_PASS.as_micros() as u64,
        scaling,
        speedup_at_max_shards,
        topk_queries: requests.len(),
        topk_byte_identical,
        kill_reads_ok,
        kill_reads_wrong,
        kill_reads_errors,
        promotion_map_version,
        writes_resumed_after_promotion,
    };
    let path = "BENCH_shard.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .map_err(|e| fstore_common::FsError::Storage(format!("write {path}: {e}")))?;
    println!("\nwrote {path}");
    println!(
        "\nShape check: every shard is service-time-bound at the same ~500 rps,\n\
         so aggregate throughput tracks shard count minus hash imbalance and\n\
         client-side queueing; the merged top-k is byte-identical to one node\n\
         holding the whole table; and a dying leader costs availability\n\
         nothing — failover answers from the follower until the control\n\
         plane promotes it."
    );
    Ok(())
}
