//! Static type checking of feature expressions against a source schema.
//!
//! Publishing a feature definition type-checks it once (paper §2.2.1's
//! "definitional consistency"); materialization can then evaluate millions
//! of rows without per-row type errors.

use crate::ast::{BinOp, Expr, UnOp};
use fstore_common::{FsError, Result, Schema, ValueType};

/// The inferred type of an expression. `None` means "untyped null" (the
/// literal `NULL`), which unifies with anything.
pub type InferredType = Option<ValueType>;

/// Infer the result type of `expr` over `schema`, or fail with a plan error.
pub fn infer_type(expr: &Expr, schema: &Schema) -> Result<InferredType> {
    match expr {
        Expr::Literal(v) => Ok(v.value_type()),
        Expr::Column(name) => match schema.field(name) {
            Some(f) => Ok(Some(f.ty)),
            None => Err(FsError::Plan(format!("unknown column `{name}`"))),
        },
        Expr::Unary { op, expr } => {
            let t = infer_type(expr, schema)?;
            match op {
                UnOp::Neg => match t {
                    Some(ValueType::Int) | Some(ValueType::Float) | None => Ok(t),
                    Some(other) => Err(FsError::Plan(format!("cannot negate {other}"))),
                },
                UnOp::Not => match t {
                    Some(ValueType::Bool) | None => Ok(Some(ValueType::Bool)),
                    Some(other) => Err(FsError::Plan(format!("NOT requires Bool, found {other}"))),
                },
                UnOp::IsNull | UnOp::IsNotNull => Ok(Some(ValueType::Bool)),
            }
        }
        Expr::Binary { op, left, right } => {
            let lt = infer_type(left, schema)?;
            let rt = infer_type(right, schema)?;
            if op.is_arithmetic() {
                let unified = unify_numeric(lt, rt).ok_or_else(|| {
                    FsError::Plan(format!("operator {op} requires numeric operands"))
                })?;
                if *op == BinOp::Div {
                    return Ok(Some(ValueType::Float));
                }
                Ok(unified)
            } else if op.is_comparison() {
                if comparable(lt, rt) {
                    Ok(Some(ValueType::Bool))
                } else {
                    Err(FsError::Plan(format!(
                        "cannot compare {} with {}",
                        fmt_ty(lt),
                        fmt_ty(rt)
                    )))
                }
            } else {
                // logical
                for (side, t) in [("left", lt), ("right", rt)] {
                    if !matches!(t, Some(ValueType::Bool) | None) {
                        return Err(FsError::Plan(format!(
                            "{op} requires Bool operands ({side} is {})",
                            fmt_ty(t)
                        )));
                    }
                }
                Ok(Some(ValueType::Bool))
            }
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            let mut result: InferredType = None;
            for (cond, val) in branches {
                let ct = infer_type(cond, schema)?;
                if !matches!(ct, Some(ValueType::Bool) | None) {
                    return Err(FsError::Plan(format!(
                        "CASE condition must be Bool, found {}",
                        fmt_ty(ct)
                    )));
                }
                let vt = infer_type(val, schema)?;
                result = unify(result, vt)
                    .ok_or_else(|| FsError::Plan("CASE branches have incompatible types".into()))?;
            }
            if let Some(e) = otherwise {
                let et = infer_type(e, schema)?;
                result = unify(result, et)
                    .ok_or_else(|| FsError::Plan("CASE ELSE has incompatible type".into()))?;
            }
            Ok(result)
        }
        Expr::Call { func, args } => infer_call(func, args, schema),
    }
}

fn infer_call(func: &str, args: &[Expr], schema: &Schema) -> Result<InferredType> {
    let tys: Vec<InferredType> = args
        .iter()
        .map(|a| infer_type(a, schema))
        .collect::<Result<_>>()?;
    let arity = |n: usize| -> Result<()> {
        if tys.len() == n {
            Ok(())
        } else {
            Err(FsError::Plan(format!(
                "{func} expects {n} argument(s), got {}",
                tys.len()
            )))
        }
    };
    let numeric = |i: usize| -> Result<()> {
        match tys[i] {
            Some(ValueType::Int) | Some(ValueType::Float) | None => Ok(()),
            Some(other) => Err(FsError::Plan(format!(
                "{func} argument {} must be numeric, found {other}",
                i + 1
            ))),
        }
    };
    match func {
        "coalesce" | "least" | "greatest" => {
            if tys.is_empty() {
                return Err(FsError::Plan(format!(
                    "{func} requires at least one argument"
                )));
            }
            let mut t = tys[0];
            for &u in &tys[1..] {
                t = unify(t, u).ok_or_else(|| {
                    FsError::Plan(format!("{func} arguments have incompatible types"))
                })?;
            }
            if func != "coalesce" {
                // least/greatest are numeric-only
                if !matches!(t, Some(ValueType::Int) | Some(ValueType::Float) | None) {
                    return Err(FsError::Plan(format!("{func} requires numeric arguments")));
                }
            }
            Ok(t)
        }
        "abs" => {
            arity(1)?;
            numeric(0)?;
            Ok(tys[0])
        }
        "log" | "exp" | "sqrt" | "sigmoid" => {
            arity(1)?;
            numeric(0)?;
            Ok(Some(ValueType::Float))
        }
        "pow" => {
            arity(2)?;
            numeric(0)?;
            numeric(1)?;
            Ok(Some(ValueType::Float))
        }
        "floor" | "ceil" | "round" => {
            arity(1)?;
            numeric(0)?;
            Ok(Some(ValueType::Int))
        }
        "clip" => {
            arity(3)?;
            numeric(0)?;
            numeric(1)?;
            numeric(2)?;
            Ok(Some(ValueType::Float))
        }
        "bucket" => {
            arity(2)?;
            numeric(0)?;
            numeric(1)?;
            Ok(Some(ValueType::Int))
        }
        "if" => {
            arity(3)?;
            if !matches!(tys[0], Some(ValueType::Bool) | None) {
                return Err(FsError::Plan("if condition must be Bool".into()));
            }
            unify(tys[1], tys[2])
                .ok_or_else(|| FsError::Plan("if branches have incompatible types".into()))
        }
        "is_null" => {
            arity(1)?;
            Ok(Some(ValueType::Bool))
        }
        "length" => {
            arity(1)?;
            expect_str(func, tys[0])?;
            Ok(Some(ValueType::Int))
        }
        "lower" | "upper" => {
            arity(1)?;
            expect_str(func, tys[0])?;
            Ok(Some(ValueType::Str))
        }
        "concat" => {
            if tys.is_empty() {
                return Err(FsError::Plan(
                    "concat requires at least one argument".into(),
                ));
            }
            Ok(Some(ValueType::Str))
        }
        "hour_of_day" | "day_of_week" => {
            arity(1)?;
            match tys[0] {
                Some(ValueType::Timestamp) | None => Ok(Some(ValueType::Int)),
                Some(other) => Err(FsError::Plan(format!(
                    "{func} requires a Timestamp, found {other}"
                ))),
            }
        }
        other => Err(FsError::Plan(format!("unknown function `{other}`"))),
    }
}

fn expect_str(func: &str, t: InferredType) -> Result<()> {
    match t {
        Some(ValueType::Str) | None => Ok(()),
        Some(other) => Err(FsError::Plan(format!(
            "{func} requires a Str, found {other}"
        ))),
    }
}

fn fmt_ty(t: InferredType) -> String {
    t.map(|v| v.to_string()).unwrap_or_else(|| "Null".into())
}

/// Unify two inferred types (None unifies with anything; Int widens to Float).
pub fn unify(a: InferredType, b: InferredType) -> Option<InferredType> {
    match (a, b) {
        (None, t) | (t, None) => Some(t),
        (Some(x), Some(y)) if x == y => Some(Some(x)),
        (Some(ValueType::Int), Some(ValueType::Float))
        | (Some(ValueType::Float), Some(ValueType::Int)) => Some(Some(ValueType::Float)),
        _ => None,
    }
}

fn unify_numeric(a: InferredType, b: InferredType) -> Option<InferredType> {
    let ok = |t: InferredType| matches!(t, Some(ValueType::Int) | Some(ValueType::Float) | None);
    if ok(a) && ok(b) {
        unify(a, b)
    } else {
        None
    }
}

fn comparable(a: InferredType, b: InferredType) -> bool {
    unify(a, b).is_some()
}

/// Check a literal-only expression (no schema). Convenience for tests.
pub fn infer_literal_type(expr: &Expr) -> Result<InferredType> {
    infer_type(expr, &Schema::of(&[]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn schema() -> Schema {
        Schema::of(&[
            ("fare", ValueType::Float),
            ("trips", ValueType::Int),
            ("city", ValueType::Str),
            ("vip", ValueType::Bool),
            ("ts", ValueType::Timestamp),
        ])
    }

    fn ty(src: &str) -> Result<InferredType> {
        infer_type(&parse(src).unwrap(), &schema())
    }

    #[test]
    fn arithmetic_widening() {
        assert_eq!(ty("trips + 1").unwrap(), Some(ValueType::Int));
        assert_eq!(ty("trips + 1.5").unwrap(), Some(ValueType::Float));
        assert_eq!(
            ty("trips / 2").unwrap(),
            Some(ValueType::Float),
            "division is Float"
        );
        assert_eq!(ty("fare * trips").unwrap(), Some(ValueType::Float));
    }

    #[test]
    fn null_literal_unifies() {
        assert_eq!(ty("NULL").unwrap(), None);
        assert_eq!(ty("coalesce(NULL, trips)").unwrap(), Some(ValueType::Int));
        assert_eq!(ty("trips + NULL").unwrap(), Some(ValueType::Int));
    }

    #[test]
    fn comparisons_yield_bool() {
        assert_eq!(ty("fare > 10").unwrap(), Some(ValueType::Bool));
        assert_eq!(ty("city = 'sf'").unwrap(), Some(ValueType::Bool));
        assert!(ty("city > 10").is_err());
        assert!(ty("vip = ts").is_err());
    }

    #[test]
    fn logic_requires_bool() {
        assert_eq!(ty("vip AND fare > 1").unwrap(), Some(ValueType::Bool));
        assert!(ty("trips AND vip").is_err());
        assert!(ty("NOT trips").is_err());
        assert_eq!(ty("NOT vip").unwrap(), Some(ValueType::Bool));
    }

    #[test]
    fn unknown_column_and_function() {
        assert!(ty("ghost + 1").is_err());
        assert!(ty("mystery(1)").is_err());
    }

    #[test]
    fn case_unification() {
        assert_eq!(
            ty("CASE WHEN vip THEN 1 ELSE 2.5 END").unwrap(),
            Some(ValueType::Float)
        );
        assert!(ty("CASE WHEN vip THEN 1 ELSE 'x' END").is_err());
        assert!(
            ty("CASE WHEN trips THEN 1 END").is_err(),
            "non-bool condition"
        );
        assert_eq!(
            ty("CASE WHEN vip THEN 1 END").unwrap(),
            Some(ValueType::Int)
        );
    }

    #[test]
    fn function_signatures() {
        assert_eq!(ty("abs(trips)").unwrap(), Some(ValueType::Int));
        assert_eq!(ty("abs(fare)").unwrap(), Some(ValueType::Float));
        assert_eq!(ty("log(trips)").unwrap(), Some(ValueType::Float));
        assert_eq!(ty("floor(fare)").unwrap(), Some(ValueType::Int));
        assert_eq!(ty("clip(fare, 0, 10)").unwrap(), Some(ValueType::Float));
        assert_eq!(ty("bucket(fare, 5)").unwrap(), Some(ValueType::Int));
        assert_eq!(ty("if(vip, 1, 0)").unwrap(), Some(ValueType::Int));
        assert_eq!(ty("length(city)").unwrap(), Some(ValueType::Int));
        assert_eq!(ty("concat(city, '!')").unwrap(), Some(ValueType::Str));
        assert_eq!(ty("hour_of_day(ts)").unwrap(), Some(ValueType::Int));
        assert_eq!(ty("is_null(fare)").unwrap(), Some(ValueType::Bool));
        assert!(ty("abs(city)").is_err());
        assert!(ty("abs(1, 2)").is_err());
        assert!(ty("length(trips)").is_err());
        assert!(ty("hour_of_day(fare)").is_err());
        assert!(ty("coalesce()").is_err());
        assert!(ty("least(city, city)").is_err());
    }
}
