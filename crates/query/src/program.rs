//! Compiled feature programs: parse + type check once, evaluate per row.

use crate::ast::Expr;
use crate::eval::{eval, fold_constants, RowEnv};
use crate::parser::parse;
use crate::types::infer_type;
use fstore_common::{Result, Schema, Value, ValueType};

/// A feature expression compiled against a source schema.
///
/// The original source text is retained for provenance (the registry stores
/// it so a feature's definition is always reproducible), together with the
/// inferred output type and the set of source columns the feature reads.
#[derive(Debug, Clone)]
pub struct Program {
    source: String,
    expr: Expr,
    schema: Schema,
    output_type: Option<ValueType>,
    inputs: Vec<String>,
}

impl Program {
    /// Parse, type-check and bind `src` against `schema`.
    pub fn compile(src: &str, schema: &Schema) -> Result<Program> {
        let expr = parse(src)?;
        let output_type = infer_type(&expr, schema)?;
        let inputs = expr.referenced_columns();
        let expr = fold_constants(expr);
        Ok(Program {
            source: src.to_string(),
            expr,
            schema: schema.clone(),
            output_type,
            inputs,
        })
    }

    /// The original expression text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The inferred output type (`None` = the constant `NULL`).
    pub fn output_type(&self) -> Option<ValueType> {
        self.output_type
    }

    /// Source columns this feature depends on (sorted, deduplicated).
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Evaluate over one schema-ordered row.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        eval(
            &self.expr,
            &RowEnv {
                schema: &self.schema,
                row,
            },
        )
    }

    /// Evaluate over many rows.
    pub fn eval_batch(&self, rows: &[Vec<Value>]) -> Result<Vec<Value>> {
        rows.iter().map(|r| self.eval(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::Timestamp;

    fn schema() -> Schema {
        Schema::of(&[
            ("fare", ValueType::Float),
            ("trips", ValueType::Int),
            ("city", ValueType::Str),
            ("vip", ValueType::Bool),
            ("ts", ValueType::Timestamp),
        ])
    }

    #[test]
    fn compile_records_provenance() {
        let p = Program::compile("fare * coalesce(trips, 1)", &schema()).unwrap();
        assert_eq!(p.source(), "fare * coalesce(trips, 1)");
        assert_eq!(p.output_type(), Some(ValueType::Float));
        assert_eq!(p.inputs(), &["fare".to_string(), "trips".to_string()]);
    }

    #[test]
    fn compile_rejects_bad_expressions() {
        assert!(Program::compile("fare +", &schema()).is_err());
        assert!(Program::compile("ghost + 1", &schema()).is_err());
        assert!(Program::compile("city + 1", &schema()).is_err());
    }

    #[test]
    fn eval_batch() {
        let p = Program::compile("trips * 2", &schema()).unwrap();
        let rows = vec![
            vec![
                Value::Null,
                Value::Int(1),
                Value::from("a"),
                Value::Bool(false),
                Value::Timestamp(Timestamp::EPOCH),
            ],
            vec![
                Value::Null,
                Value::Int(3),
                Value::from("b"),
                Value::Bool(true),
                Value::Timestamp(Timestamp::EPOCH),
            ],
        ];
        assert_eq!(
            p.eval_batch(&rows).unwrap(),
            vec![Value::Int(2), Value::Int(6)]
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Generators for random well-typed-ish expressions over the schema.
        fn arb_numeric_expr() -> impl Strategy<Value = String> {
            let leaf = prop_oneof![
                Just("fare".to_string()),
                Just("trips".to_string()),
                (-100i64..100).prop_map(|i| i.to_string()),
                (-100.0f64..100.0).prop_map(|f| format!("{f:.3}")),
                Just("NULL".to_string()),
            ];
            leaf.prop_recursive(4, 32, 3, |inner| {
                prop_oneof![
                    (
                        inner.clone(),
                        inner.clone(),
                        prop_oneof![Just("+"), Just("-"), Just("*"), Just("/"), Just("%")]
                    )
                        .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
                    inner.clone().prop_map(|a| format!("abs({a})")),
                    inner.clone().prop_map(|a| format!("(-{a})")),
                    (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("coalesce({a}, {b})")),
                    (inner.clone(), inner.clone(), inner)
                        .prop_map(|(c, a, b)| format!("if({c} > 0, {a}, {b})")),
                ]
            })
        }

        fn arb_row() -> impl Strategy<Value = Vec<Value>> {
            (
                prop_oneof![Just(Value::Null), (-1e6f64..1e6).prop_map(Value::Float)],
                prop_oneof![Just(Value::Null), (-1000i64..1000).prop_map(Value::Int)],
            )
                .prop_map(|(fare, trips)| {
                    vec![
                        fare,
                        trips,
                        Value::from("sf"),
                        Value::Bool(true),
                        Value::Timestamp(Timestamp::EPOCH),
                    ]
                })
        }

        proptest! {
            /// Totality: every expression that compiles evaluates without
            /// error on every row, and its result fits the inferred type.
            #[test]
            fn compiled_programs_are_total(src in arb_numeric_expr(), row in arb_row()) {
                let schema = schema();
                if let Ok(p) = Program::compile(&src, &schema) {
                    let v = p.eval(&row).expect("eval must be total on typed programs");
                    if let (Some(ty), false) = (p.output_type(), v.is_null()) {
                        prop_assert!(v.fits(ty), "value {v} does not fit {ty} (src `{src}`)");
                    }
                }
            }

            /// Determinism: the same program over the same row gives the
            /// same value.
            #[test]
            fn eval_is_deterministic(src in arb_numeric_expr(), row in arb_row()) {
                let schema = schema();
                if let Ok(p) = Program::compile(&src, &schema) {
                    prop_assert_eq!(p.eval(&row).unwrap(), p.eval(&row).unwrap());
                }
            }
        }
    }
}
