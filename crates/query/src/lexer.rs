//! Tokenizer for the feature expression language.

use fstore_common::{FsError, Result};

/// A token with its byte offset (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    // keywords (case-insensitive in source)
    And,
    Or,
    Not,
    Case,
    When,
    Then,
    Else,
    End,
    Null,
    True,
    False,
    Is,
    In,
    Between,
    // punctuation
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LParen,
    RParen,
    Comma,
    Eof,
}

/// Tokenize `src`; returns tokens ending with `Eof`.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let pos = i;
        let kind = match c {
            '+' => {
                i += 1;
                TokenKind::Plus
            }
            '-' => {
                i += 1;
                TokenKind::Minus
            }
            '*' => {
                i += 1;
                TokenKind::Star
            }
            '/' => {
                i += 1;
                TokenKind::Slash
            }
            '%' => {
                i += 1;
                TokenKind::Percent
            }
            '(' => {
                i += 1;
                TokenKind::LParen
            }
            ')' => {
                i += 1;
                TokenKind::RParen
            }
            ',' => {
                i += 1;
                TokenKind::Comma
            }
            '=' => {
                i += 1;
                TokenKind::Eq
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Ne
                } else {
                    return Err(FsError::Parse {
                        message: "expected `!=`".into(),
                        position: pos,
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Le
                } else if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    TokenKind::Ne
                } else {
                    i += 1;
                    TokenKind::Lt
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Ge
                } else {
                    i += 1;
                    TokenKind::Gt
                }
            }
            '\'' => {
                // single-quoted string, '' escapes a quote
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(FsError::Parse {
                                message: "unterminated string literal".into(),
                                position: pos,
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                TokenKind::Str(s)
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                if is_float {
                    TokenKind::Float(text.parse().map_err(|_| FsError::Parse {
                        message: format!("bad float literal `{text}`"),
                        position: pos,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| FsError::Parse {
                        message: format!("integer literal `{text}` out of range"),
                        position: pos,
                    })?)
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                match word.to_ascii_uppercase().as_str() {
                    "AND" => TokenKind::And,
                    "OR" => TokenKind::Or,
                    "NOT" => TokenKind::Not,
                    "CASE" => TokenKind::Case,
                    "WHEN" => TokenKind::When,
                    "THEN" => TokenKind::Then,
                    "ELSE" => TokenKind::Else,
                    "END" => TokenKind::End,
                    "NULL" => TokenKind::Null,
                    "TRUE" => TokenKind::True,
                    "FALSE" => TokenKind::False,
                    "IS" => TokenKind::Is,
                    "IN" => TokenKind::In,
                    "BETWEEN" => TokenKind::Between,
                    _ => TokenKind::Ident(word.to_string()),
                }
            }
            other => {
                return Err(FsError::Parse {
                    message: format!("unexpected character `{other}`"),
                    position: pos,
                })
            }
        };
        out.push(Token { kind, pos });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        pos: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 3e2 4.5E-1"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(300.0),
                TokenKind::Float(0.45),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'it''s' 'sf'"),
            vec![
                TokenKind::Str("it's".into()),
                TokenKind::Str("sf".into()),
                TokenKind::Eof
            ]
        );
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("case WHEN null And TrUe"),
            vec![
                TokenKind::Case,
                TokenKind::When,
                TokenKind::Null,
                TokenKind::And,
                TokenKind::True,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(
            kinds("fare_USD"),
            vec![TokenKind::Ident("fare_USD".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("<= >= != <> = < >"),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Eq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn error_positions() {
        let err = lex("a + $").unwrap_err();
        match err {
            FsError::Parse { position, .. } => assert_eq!(position, 4),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(lex("!x").is_err());
    }

    #[test]
    fn huge_int_is_an_error_not_a_panic() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
