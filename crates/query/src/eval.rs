//! Row evaluation with SQL-style three-valued null semantics.
//!
//! Evaluation is *total* on type-checked expressions: nulls propagate,
//! division by zero and integer overflow yield `NULL` (rather than poisoning
//! a whole materialization job), and `CASE` falls through to `ELSE`/`NULL`.
//! A property test in `program.rs` asserts totality.

use crate::ast::{BinOp, Expr, UnOp};
use fstore_common::time::MILLIS_PER_DAY;
use fstore_common::{FsError, Result, Value};

/// Environment an expression is evaluated in: resolves column names to the
/// current row's values.
pub trait Env {
    fn get(&self, column: &str) -> Result<Value>;
}

/// An `Env` over a schema-ordered row slice with a resolver built once.
pub struct RowEnv<'a> {
    pub schema: &'a fstore_common::Schema,
    pub row: &'a [Value],
}

impl Env for RowEnv<'_> {
    fn get(&self, column: &str) -> Result<Value> {
        match self.schema.index_of(column) {
            Some(i) => Ok(self.row[i].clone()),
            None => Err(FsError::Eval(format!(
                "unknown column `{column}` at eval time"
            ))),
        }
    }
}

/// Evaluate `expr` in `env`.
pub fn eval(expr: &Expr, env: &dyn Env) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(name) => env.get(name),
        Expr::Unary { op, expr } => {
            let v = eval(expr, env)?;
            Ok(match op {
                UnOp::Neg => match v {
                    Value::Null => Value::Null,
                    Value::Int(i) => i.checked_neg().map_or(Value::Null, Value::Int),
                    Value::Float(f) => Value::Float(-f),
                    other => return Err(eval_type_err("negate", &other)),
                },
                UnOp::Not => match v {
                    Value::Null => Value::Null,
                    Value::Bool(b) => Value::Bool(!b),
                    other => return Err(eval_type_err("NOT", &other)),
                },
                UnOp::IsNull => Value::Bool(v.is_null()),
                UnOp::IsNotNull => Value::Bool(!v.is_null()),
            })
        }
        Expr::Binary { op, left, right } => eval_binary(*op, left, right, env),
        Expr::Case {
            branches,
            otherwise,
        } => {
            for (cond, val) in branches {
                if matches!(eval(cond, env)?, Value::Bool(true)) {
                    return eval(val, env);
                }
            }
            match otherwise {
                Some(e) => eval(e, env),
                None => Ok(Value::Null),
            }
        }
        Expr::Call { func, args } => eval_call(func, args, env),
    }
}

fn eval_type_err(op: &str, v: &Value) -> FsError {
    FsError::Eval(format!("cannot {op} value {v}"))
}

fn eval_binary(op: BinOp, left: &Expr, right: &Expr, env: &dyn Env) -> Result<Value> {
    // Logical operators need three-valued short-circuit handling.
    if op.is_logical() {
        let l = eval(left, env)?;
        // FALSE AND _ = FALSE; TRUE OR _ = TRUE (short circuit).
        match (op, &l) {
            (BinOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
            (BinOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = eval(right, env)?;
        return Ok(match (op, l, r) {
            (BinOp::And, Value::Bool(a), Value::Bool(b)) => Value::Bool(a && b),
            (BinOp::Or, Value::Bool(a), Value::Bool(b)) => Value::Bool(a || b),
            // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; else NULL.
            (BinOp::And, Value::Null, Value::Bool(false))
            | (BinOp::And, Value::Bool(false), Value::Null) => Value::Bool(false),
            (BinOp::Or, Value::Null, Value::Bool(true))
            | (BinOp::Or, Value::Bool(true), Value::Null) => Value::Bool(true),
            (_, Value::Null, _) | (_, _, Value::Null) => Value::Null,
            (_, l, _) => return Err(eval_type_err("apply boolean operator to", &l)),
        });
    }

    let l = eval(left, env)?;
    let r = eval(right, env)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }

    if op.is_comparison() {
        // Type checking guarantees comparability; compare via total_cmp
        // after numeric widening.
        let ord = l.total_cmp(&r);
        use std::cmp::Ordering::*;
        return Ok(Value::Bool(match op {
            BinOp::Eq => ord == Equal,
            BinOp::Ne => ord != Equal,
            BinOp::Lt => ord == Less,
            BinOp::Le => ord != Greater,
            BinOp::Gt => ord == Greater,
            BinOp::Ge => ord != Less,
            _ => unreachable!(),
        }));
    }

    // Arithmetic. Int op Int stays Int (Div excepted); any Float widens.
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) if op != BinOp::Div => Ok(match op {
            BinOp::Add => a.checked_add(*b).map_or(Value::Null, Value::Int),
            BinOp::Sub => a.checked_sub(*b).map_or(Value::Null, Value::Int),
            BinOp::Mul => a.checked_mul(*b).map_or(Value::Null, Value::Int),
            BinOp::Mod => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.rem_euclid(*b))
                }
            }
            _ => unreachable!(),
        }),
        _ => {
            let a = l.expect_f64("arithmetic")?;
            let b = r.expect_f64("arithmetic")?;
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a.rem_euclid(b)
                }
                _ => unreachable!(),
            };
            Ok(if out.is_nan() {
                Value::Null
            } else {
                Value::Float(out)
            })
        }
    }
}

fn eval_call(func: &str, args: &[Expr], env: &dyn Env) -> Result<Value> {
    // coalesce and if evaluate lazily; everything else is strict.
    match func {
        "coalesce" => {
            for a in args {
                let v = eval(a, env)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            return Ok(Value::Null);
        }
        "if" => {
            let c = eval(&args[0], env)?;
            return if matches!(c, Value::Bool(true)) {
                eval(&args[1], env)
            } else {
                eval(&args[2], env)
            };
        }
        _ => {}
    }

    let vals: Vec<Value> = args.iter().map(|a| eval(a, env)).collect::<Result<_>>()?;

    // is_null / concat tolerate nulls; all other functions propagate them.
    match func {
        "is_null" => return Ok(Value::Bool(vals[0].is_null())),
        "concat" => {
            let mut s = String::new();
            for v in &vals {
                if !v.is_null() {
                    s.push_str(&v.to_string());
                }
            }
            return Ok(Value::Str(s));
        }
        _ => {}
    }
    if vals.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }

    let num = |i: usize| vals[i].expect_f64(func);
    let finite = |x: f64| {
        if x.is_finite() {
            Value::Float(x)
        } else {
            Value::Null
        }
    };
    Ok(match func {
        "abs" => match &vals[0] {
            Value::Int(i) => i.checked_abs().map_or(Value::Null, Value::Int),
            v => Value::Float(v.expect_f64(func)?.abs()),
        },
        "log" => {
            let x = num(0)?;
            if x <= 0.0 {
                Value::Null
            } else {
                Value::Float(x.ln())
            }
        }
        "exp" => finite(num(0)?.exp()),
        "sqrt" => {
            let x = num(0)?;
            if x < 0.0 {
                Value::Null
            } else {
                Value::Float(x.sqrt())
            }
        }
        "sigmoid" => Value::Float(1.0 / (1.0 + (-num(0)?).exp())),
        "pow" => finite(num(0)?.powf(num(1)?)),
        "floor" => Value::Int(num(0)?.floor() as i64),
        "ceil" => Value::Int(num(0)?.ceil() as i64),
        "round" => Value::Int(num(0)?.round() as i64),
        "clip" => Value::Float(num(0)?.clamp(num(1)?, num(2)?)),
        "bucket" => {
            let w = num(1)?;
            if w <= 0.0 {
                Value::Null
            } else {
                Value::Int((num(0)? / w).floor() as i64)
            }
        }
        "least" => {
            let mut best = num(0)?;
            for i in 1..vals.len() {
                best = best.min(num(i)?);
            }
            Value::Float(best)
        }
        "greatest" => {
            let mut best = num(0)?;
            for i in 1..vals.len() {
                best = best.max(num(i)?);
            }
            Value::Float(best)
        }
        "length" => match &vals[0] {
            Value::Str(s) => Value::Int(s.chars().count() as i64),
            v => return Err(eval_type_err("take length of", v)),
        },
        "lower" => match &vals[0] {
            Value::Str(s) => Value::Str(s.to_lowercase()),
            v => return Err(eval_type_err("lowercase", v)),
        },
        "upper" => match &vals[0] {
            Value::Str(s) => Value::Str(s.to_uppercase()),
            v => return Err(eval_type_err("uppercase", v)),
        },
        "hour_of_day" => match &vals[0] {
            Value::Timestamp(t) => Value::Int(t.as_millis().rem_euclid(MILLIS_PER_DAY) / 3_600_000),
            v => return Err(eval_type_err("take hour of", v)),
        },
        "day_of_week" => match &vals[0] {
            // ISO: 0 = Monday. 1970-01-01 (day 0) was a Thursday → offset 3.
            Value::Timestamp(t) => {
                Value::Int((t.date().days_since_epoch() as i64 + 3).rem_euclid(7))
            }
            v => return Err(eval_type_err("take weekday of", v)),
        },
        other => return Err(FsError::Eval(format!("unknown function `{other}`"))),
    })
}

/// Constant folding: replace any subtree with no column references by its
/// value. Runs at compile time so per-row evaluation never recomputes
/// literal arithmetic (`fare * (60 * 60)` → `fare * 3600`). Safe because
/// evaluation is deterministic and total on typed expressions.
pub fn fold_constants(expr: Expr) -> Expr {
    struct EmptyEnv;
    impl Env for EmptyEnv {
        fn get(&self, column: &str) -> Result<Value> {
            Err(FsError::Eval(format!(
                "column `{column}` in constant context"
            )))
        }
    }
    fn is_const(e: &Expr) -> bool {
        match e {
            Expr::Literal(_) => true,
            Expr::Column(_) => false,
            Expr::Unary { expr, .. } => is_const(expr),
            Expr::Binary { left, right, .. } => is_const(left) && is_const(right),
            Expr::Case {
                branches,
                otherwise,
            } => {
                branches.iter().all(|(c, v)| is_const(c) && is_const(v))
                    && otherwise.as_deref().is_none_or(is_const)
            }
            Expr::Call { args, .. } => args.iter().all(is_const),
        }
    }
    fn fold(e: Expr) -> Expr {
        if is_const(&e) {
            if let Ok(v) = eval(&e, &EmptyEnv) {
                return Expr::Literal(v);
            }
        }
        match e {
            Expr::Unary { op, expr } => Expr::Unary {
                op,
                expr: Box::new(fold(*expr)),
            },
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(fold(*left)),
                right: Box::new(fold(*right)),
            },
            Expr::Case {
                branches,
                otherwise,
            } => Expr::Case {
                branches: branches
                    .into_iter()
                    .map(|(c, v)| (fold(c), fold(v)))
                    .collect(),
                otherwise: otherwise.map(|e| Box::new(fold(*e))),
            },
            Expr::Call { func, args } => Expr::Call {
                func,
                args: args.into_iter().map(fold).collect(),
            },
            other => other,
        }
    }
    fold(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use fstore_common::{Duration, Schema, Timestamp, ValueType};

    fn schema() -> Schema {
        Schema::of(&[
            ("fare", ValueType::Float),
            ("trips", ValueType::Int),
            ("city", ValueType::Str),
            ("vip", ValueType::Bool),
            ("ts", ValueType::Timestamp),
        ])
    }

    fn run(src: &str, row: &[Value]) -> Value {
        let s = schema();
        let e = parse(src).unwrap();
        eval(&e, &RowEnv { schema: &s, row }).unwrap()
    }

    fn default_row() -> Vec<Value> {
        vec![
            Value::Float(20.0),
            Value::Int(4),
            Value::from("sf"),
            Value::Bool(true),
            Value::Timestamp(Timestamp::EPOCH + Duration::hours(13)),
        ]
    }

    #[test]
    fn arithmetic() {
        let r = default_row();
        assert_eq!(run("fare * 2 + 1", &r), Value::Float(41.0));
        assert_eq!(run("trips + 1", &r), Value::Int(5));
        assert_eq!(run("trips / 8", &r), Value::Float(0.5));
        assert_eq!(run("7 % 3", &r), Value::Int(1));
        assert_eq!(run("-trips", &r), Value::Int(-4));
    }

    #[test]
    fn division_by_zero_and_overflow_yield_null() {
        let r = default_row();
        assert_eq!(run("1 / 0", &r), Value::Null);
        assert_eq!(run("1 % 0", &r), Value::Null);
        assert_eq!(run("9223372036854775807 + 1", &r), Value::Null);
        assert_eq!(run("log(0)", &r), Value::Null);
        assert_eq!(run("sqrt(0 - 1)", &r), Value::Null);
    }

    #[test]
    fn null_propagation() {
        let mut r = default_row();
        r[0] = Value::Null; // fare
        assert_eq!(run("fare + 1", &r), Value::Null);
        assert_eq!(run("fare > 0", &r), Value::Null);
        assert_eq!(run("coalesce(fare, 1.5)", &r), Value::Float(1.5));
        assert_eq!(run("fare IS NULL", &r), Value::Bool(true));
        assert_eq!(run("is_null(fare)", &r), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        let mut r = default_row();
        r[3] = Value::Null; // vip
        assert_eq!(run("vip AND FALSE", &r), Value::Bool(false));
        assert_eq!(run("vip AND TRUE", &r), Value::Null);
        assert_eq!(run("vip OR TRUE", &r), Value::Bool(true));
        assert_eq!(run("vip OR FALSE", &r), Value::Null);
        assert_eq!(run("NOT vip", &r), Value::Null);
        // short circuit: right side would divide by zero but is never reached
        assert_eq!(run("FALSE AND 1 / 0 > 0", &r), Value::Bool(false));
        assert_eq!(run("TRUE OR 1 / 0 > 0", &r), Value::Bool(true));
    }

    #[test]
    fn comparisons_and_strings() {
        let r = default_row();
        assert_eq!(run("city = 'sf'", &r), Value::Bool(true));
        assert_eq!(run("fare >= 20", &r), Value::Bool(true));
        assert_eq!(run("trips != 4", &r), Value::Bool(false));
        assert_eq!(run("upper(city)", &r), Value::from("SF"));
        assert_eq!(run("length(concat(city, '!'))", &r), Value::Int(3));
        assert_eq!(run("concat('fare=', fare)", &r), Value::from("fare=20"));
    }

    #[test]
    fn case_semantics() {
        let r = default_row();
        assert_eq!(
            run(
                "CASE WHEN fare > 100 THEN 'high' WHEN fare > 10 THEN 'mid' ELSE 'low' END",
                &r
            ),
            Value::from("mid")
        );
        assert_eq!(run("CASE WHEN fare > 100 THEN 1 END", &r), Value::Null);
        // null condition falls through
        let mut r2 = default_row();
        r2[3] = Value::Null;
        assert_eq!(run("CASE WHEN vip THEN 1 ELSE 2 END", &r2), Value::Int(2));
    }

    #[test]
    fn functions() {
        let r = default_row();
        assert_eq!(run("abs(0 - 5)", &r), Value::Int(5));
        assert_eq!(run("clip(fare, 0, 10)", &r), Value::Float(10.0));
        assert_eq!(run("bucket(fare, 6)", &r), Value::Int(3));
        assert_eq!(run("bucket(fare, 0)", &r), Value::Null);
        assert_eq!(run("floor(2.7)", &r), Value::Int(2));
        assert_eq!(run("ceil(2.1)", &r), Value::Int(3));
        assert_eq!(run("round(2.5)", &r), Value::Int(3));
        assert_eq!(run("least(3, fare, 7)", &r), Value::Float(3.0));
        assert_eq!(run("greatest(3, fare, 7)", &r), Value::Float(20.0));
        assert_eq!(run("if(vip, 'y', 'n')", &r), Value::from("y"));
        let s = run("sigmoid(0)", &r);
        assert_eq!(s, Value::Float(0.5));
    }

    #[test]
    fn time_functions() {
        let r = default_row();
        assert_eq!(run("hour_of_day(ts)", &r), Value::Int(13));
        // 1970-01-01 is a Thursday → ISO weekday 3
        assert_eq!(run("day_of_week(ts)", &r), Value::Int(3));
    }

    #[test]
    fn exp_overflow_is_null() {
        let r = default_row();
        assert_eq!(run("exp(100000)", &r), Value::Null);
        assert_eq!(run("pow(10, 10000)", &r), Value::Null);
    }

    #[test]
    fn constant_folding() {
        use crate::ast::Expr;
        let fold = |src: &str| fold_constants(parse(src).unwrap());
        assert_eq!(fold("1 + 2 * 3"), Expr::Literal(Value::Int(7)));
        assert_eq!(fold("upper('ab')"), Expr::Literal(Value::from("AB")));
        assert_eq!(
            fold("1 / 0"),
            Expr::Literal(Value::Null),
            "total: folds to NULL"
        );
        assert_eq!(
            fold("CASE WHEN TRUE THEN 5 ELSE 6 END"),
            Expr::Literal(Value::Int(5))
        );
        // column subtrees survive; constant subtrees inside them fold
        match fold("fare * (60 * 60)") {
            Expr::Binary { right, .. } => assert_eq!(*right, Expr::Literal(Value::Int(3600))),
            other => panic!("{other:?}"),
        }
        // non-constant case branches partially fold
        match fold("CASE WHEN fare > 1 + 1 THEN 1 END") {
            Expr::Case { branches, .. } => match &branches[0].0 {
                Expr::Binary { right, .. } => {
                    assert_eq!(**right, Expr::Literal(Value::Int(2)))
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn folded_program_evaluates_identically() {
        let s = schema();
        let src = "clip(fare * coalesce(NULL, 1 + 0.5), 0, 10 * 10) + abs(0 - 3)";
        let p = crate::program::Program::compile(src, &s).unwrap();
        let row = default_row();
        assert_eq!(p.eval(&row).unwrap(), Value::Float(33.0));
    }

    #[test]
    fn unknown_column_at_eval_is_error() {
        let s = Schema::of(&[("a", ValueType::Int)]);
        let e = parse("ghost").unwrap();
        assert!(eval(
            &e,
            &RowEnv {
                schema: &s,
                row: &[Value::Int(1)]
            }
        )
        .is_err());
    }
}
