//! # fstore-query
//!
//! The feature definition language (paper §2.2.1, "feature authoring and
//! publishing"). Users author features as SQL-style scalar expressions over
//! a source table; the registry stores the *text* (provenance) and this
//! crate compiles it into a typed, schema-bound program the materializer
//! evaluates per row. Aggregate functions live here too and are shared with
//! the streaming layer's window aggregators.
//!
//! ```
//! use fstore_common::{Schema, Value, ValueType};
//! use fstore_query::Program;
//!
//! let schema = Schema::of(&[("fare", ValueType::Float), ("surge", ValueType::Float)]);
//! let p = Program::compile("clip(fare * coalesce(surge, 1.0), 0.0, 100.0)", &schema).unwrap();
//! let v = p.eval(&[Value::Float(30.0), Value::Null]).unwrap();
//! assert_eq!(v, Value::Float(30.0));
//! ```

pub mod agg;
pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod program;
pub mod types;

pub use agg::{AggAccumulator, AggFunc};
pub use ast::{BinOp, Expr, UnOp};
pub use program::Program;
