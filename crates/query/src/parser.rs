//! Recursive-descent parser with standard SQL-ish precedence:
//! `OR` < `AND` < `NOT` < comparison / `IS [NOT] NULL` < `+ -` < `* / %` < unary `-`.

use crate::ast::{BinOp, Expr, UnOp};
use crate::lexer::{lex, Token, TokenKind};
use fstore_common::{FsError, Result, Value};

/// Parse an expression source string into an AST.
pub fn parse(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.or_expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

fn maybe_not(e: Expr, negated: bool) -> Expr {
    if negated {
        Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(e),
        }
    } else {
        e
    }
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_pos(&self) -> usize {
        self.tokens[self.pos].pos
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<()> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {kind:?}, found {:?}", self.peek())))
        }
    }

    fn error(&self, message: String) -> FsError {
        FsError::Parse {
            message,
            position: self.peek_pos(),
        }
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat(&TokenKind::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat(&TokenKind::And) {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Not) {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        // IS [NOT] NULL postfix
        if self.eat(&TokenKind::Is) {
            let negated = self.eat(&TokenKind::Not);
            self.expect(TokenKind::Null)?;
            let op = if negated {
                UnOp::IsNotNull
            } else {
                UnOp::IsNull
            };
            return Ok(Expr::Unary {
                op,
                expr: Box::new(left),
            });
        }
        // [NOT] IN (…) / [NOT] BETWEEN lo AND hi — desugared here so the
        // type checker and evaluator never see them.
        let negated = if self.peek() == &TokenKind::Not {
            self.bump();
            true
        } else {
            false
        };
        if self.eat(&TokenKind::In) {
            let e = self.in_list(left)?;
            return Ok(maybe_not(e, negated));
        }
        if self.eat(&TokenKind::Between) {
            let e = self.between(left)?;
            return Ok(maybe_not(e, negated));
        }
        if negated {
            return Err(self.error("expected IN or BETWEEN after NOT".into()));
        }
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    /// `left IN (e1, e2, …)` → `left = e1 OR left = e2 OR …`.
    fn in_list(&mut self, left: Expr) -> Result<Expr> {
        self.expect(TokenKind::LParen)?;
        let mut items = Vec::new();
        loop {
            items.push(self.add_expr()?);
            if self.eat(&TokenKind::RParen) {
                break;
            }
            self.expect(TokenKind::Comma)?;
        }
        let mut it = items.into_iter();
        let first = it.next().expect("loop parses at least one item");
        let mut out = Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(left.clone()),
            right: Box::new(first),
        };
        for item in it {
            out = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(out),
                right: Box::new(Expr::Binary {
                    op: BinOp::Eq,
                    left: Box::new(left.clone()),
                    right: Box::new(item),
                }),
            };
        }
        Ok(out)
    }

    /// `left BETWEEN lo AND hi` → `left >= lo AND left <= hi`.
    fn between(&mut self, left: Expr) -> Result<Expr> {
        let lo = self.add_expr()?;
        self.expect(TokenKind::And)?;
        let hi = self.add_expr()?;
        Ok(Expr::Binary {
            op: BinOp::And,
            left: Box::new(Expr::Binary {
                op: BinOp::Ge,
                left: Box::new(left.clone()),
                right: Box::new(lo),
            }),
            right: Box::new(Expr::Binary {
                op: BinOp::Le,
                left: Box::new(left),
                right: Box::new(hi),
            }),
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_expr()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary_expr()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            TokenKind::Int(i) => Ok(Expr::Literal(Value::Int(i))),
            TokenKind::Float(f) => Ok(Expr::Literal(Value::Float(f))),
            TokenKind::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            TokenKind::True => Ok(Expr::Literal(Value::Bool(true))),
            TokenKind::False => Ok(Expr::Literal(Value::Bool(false))),
            TokenKind::Null => Ok(Expr::Literal(Value::Null)),
            TokenKind::LParen => {
                let e = self.or_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Case => self.case_expr(),
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.or_expr()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(TokenKind::Comma)?;
                        }
                    }
                    Ok(Expr::Call {
                        func: name.to_ascii_lowercase(),
                        args,
                    })
                } else {
                    Ok(Expr::Column(name))
                }
            }
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let mut branches = Vec::new();
        loop {
            self.expect(TokenKind::When)?;
            let cond = self.or_expr()?;
            self.expect(TokenKind::Then)?;
            let val = self.or_expr()?;
            branches.push((cond, val));
            if self.peek() != &TokenKind::When {
                break;
            }
        }
        let otherwise = if self.eat(&TokenKind::Else) {
            Some(Box::new(self.or_expr()?))
        } else {
            None
        };
        self.expect(TokenKind::End)?;
        Ok(Expr::Case {
            branches,
            otherwise,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_arith_over_cmp_over_logic() {
        // a + b * 2 > 3 AND NOT c
        let e = parse("a + b * 2 > 3 AND NOT c").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                match *left {
                    Expr::Binary {
                        op: BinOp::Gt,
                        left: add,
                        ..
                    } => match *add {
                        Expr::Binary {
                            op: BinOp::Add,
                            right: mul,
                            ..
                        } => {
                            assert!(matches!(*mul, Expr::Binary { op: BinOp::Mul, .. }))
                        }
                        other => panic!("expected Add, got {other:?}"),
                    },
                    other => panic!("expected Gt, got {other:?}"),
                }
                assert!(matches!(*right, Expr::Unary { op: UnOp::Not, .. }));
            }
            other => panic!("expected And at root, got {other:?}"),
        }
    }

    #[test]
    fn unary_minus_binds_tight() {
        let e = parse("-a * b").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parens_override() {
        let e = parse("(a + b) * c").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Mul,
                left,
                ..
            } => {
                assert!(matches!(*left, Expr::Binary { op: BinOp::Add, .. }))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn is_null_postfix() {
        assert_eq!(
            parse("x IS NULL").unwrap(),
            Expr::Unary {
                op: UnOp::IsNull,
                expr: Box::new(Expr::Column("x".into()))
            }
        );
        assert_eq!(
            parse("x IS NOT NULL").unwrap(),
            Expr::Unary {
                op: UnOp::IsNotNull,
                expr: Box::new(Expr::Column("x".into()))
            }
        );
    }

    #[test]
    fn case_with_and_without_else() {
        let e = parse("CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END").unwrap();
        match e {
            Expr::Case {
                branches,
                otherwise,
            } => {
                assert_eq!(branches.len(), 2);
                assert!(otherwise.is_some());
            }
            other => panic!("{other:?}"),
        }
        let e = parse("CASE WHEN a THEN 1 END").unwrap();
        assert!(matches!(
            e,
            Expr::Case {
                otherwise: None,
                ..
            }
        ));
    }

    #[test]
    fn call_args_and_lowercasing() {
        let e = parse("COALESCE(a, 1, 2)").unwrap();
        match e {
            Expr::Call { func, args } => {
                assert_eq!(func, "coalesce");
                assert_eq!(args.len(), 3);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse("now()").unwrap(),
            Expr::Call {
                func: "now".into(),
                args: vec![]
            }
        );
    }

    #[test]
    fn or_and_chains_left_associate() {
        let e = parse("a OR b OR c").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Or,
                left,
                ..
            } => {
                assert!(matches!(*left, Expr::Binary { op: BinOp::Or, .. }))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn in_list_desugars_to_or_chain() {
        let e = parse("city IN ('sf', 'nyc')").unwrap();
        let want = parse("city = 'sf' OR city = 'nyc'").unwrap();
        assert_eq!(e, want);
        let single = parse("x IN (1)").unwrap();
        assert_eq!(single, parse("x = 1").unwrap());
    }

    #[test]
    fn not_in_and_not_between() {
        assert_eq!(
            parse("x NOT IN (1, 2)").unwrap(),
            parse("NOT (x = 1 OR x = 2)").unwrap()
        );
        assert_eq!(
            parse("x NOT BETWEEN 1 AND 5").unwrap(),
            parse("NOT (x >= 1 AND x <= 5)").unwrap()
        );
    }

    #[test]
    fn between_desugars_inclusively() {
        assert_eq!(
            parse("fare BETWEEN 5 AND 10").unwrap(),
            parse("fare >= 5 AND fare <= 10").unwrap()
        );
        // BETWEEN binds tighter than a surrounding AND
        assert_eq!(
            parse("fare BETWEEN 5 AND 10 AND vip").unwrap(),
            parse("(fare >= 5 AND fare <= 10) AND vip").unwrap()
        );
    }

    #[test]
    fn in_between_error_cases() {
        assert!(parse("x IN ()").is_err());
        assert!(parse("x IN (1,").is_err());
        assert!(parse("x BETWEEN 1").is_err());
        assert!(parse("x NOT 5").is_err());
    }

    #[test]
    fn errors_report_position() {
        for bad in ["a +", "(a", "CASE a THEN 1 END", "f(a,", "a b", "1 = = 2"] {
            let err = parse(bad).unwrap_err();
            assert!(matches!(err, FsError::Parse { .. }), "{bad}: {err:?}");
        }
    }

    #[test]
    fn literals() {
        assert_eq!(parse("NULL").unwrap(), Expr::Literal(Value::Null));
        assert_eq!(parse("true").unwrap(), Expr::Literal(Value::Bool(true)));
        assert_eq!(
            parse("'x''y'").unwrap(),
            Expr::Literal(Value::Str("x'y".into()))
        );
    }
}
