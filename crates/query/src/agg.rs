//! Aggregate functions, shared by batch materialization (GROUP BY entity)
//! and the streaming layer's window aggregators (paper §2.2.1: users supply
//! aggregation functions over raw streams).

use fstore_common::stats::{OnlineMoments, P2Quantile};
use fstore_common::{FsError, Result, Value};
use std::collections::HashSet;

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggFunc {
    /// Number of non-null values.
    Count,
    /// Number of rows including nulls.
    CountAll,
    Sum,
    Avg,
    Min,
    Max,
    /// Sample standard deviation.
    StdDev,
    /// Approximate quantile (P²).
    Quantile(f64),
    /// Number of distinct non-null values.
    CountDistinct,
    /// Most recent value (by arrival order) — the "latest" aggregator
    /// feature stores use for last-value features.
    Last,
}

impl AggFunc {
    /// Parse an aggregate spec like `"sum"`, `"p95"`, `"quantile(0.5)"`.
    pub fn parse(s: &str) -> Result<AggFunc> {
        let t = s.trim().to_ascii_lowercase();
        Ok(match t.as_str() {
            "count" => AggFunc::Count,
            "count_all" => AggFunc::CountAll,
            "sum" => AggFunc::Sum,
            "avg" | "mean" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "stddev" | "std" => AggFunc::StdDev,
            "count_distinct" | "distinct" => AggFunc::CountDistinct,
            "last" => AggFunc::Last,
            _ => {
                if let Some(p) = t.strip_prefix('p') {
                    if let Ok(pct) = p.parse::<f64>() {
                        if pct > 0.0 && pct < 100.0 {
                            return Ok(AggFunc::Quantile(pct / 100.0));
                        }
                    }
                }
                if let Some(inner) = t
                    .strip_prefix("quantile(")
                    .and_then(|x| x.strip_suffix(')'))
                {
                    if let Ok(q) = inner.parse::<f64>() {
                        if q > 0.0 && q < 1.0 {
                            return Ok(AggFunc::Quantile(q));
                        }
                    }
                }
                return Err(FsError::InvalidArgument(format!("unknown aggregate `{s}`")));
            }
        })
    }

    /// Create a fresh accumulator for this function.
    pub fn accumulator(&self) -> AggAccumulator {
        match self {
            AggFunc::Count => AggAccumulator::Count(0),
            AggFunc::CountAll => AggAccumulator::CountAll(0),
            AggFunc::Sum => AggAccumulator::Sum {
                total: 0.0,
                seen: false,
            },
            AggFunc::Avg => AggAccumulator::Moments(OnlineMoments::new(), MomentsOut::Mean),
            AggFunc::Min => AggAccumulator::Extreme {
                best: None,
                want_max: false,
            },
            AggFunc::Max => AggAccumulator::Extreme {
                best: None,
                want_max: true,
            },
            AggFunc::StdDev => AggAccumulator::Moments(OnlineMoments::new(), MomentsOut::StdDev),
            AggFunc::Quantile(q) => AggAccumulator::Quantile(P2Quantile::new(*q)),
            AggFunc::CountDistinct => AggAccumulator::Distinct(HashSet::new()),
            AggFunc::Last => AggAccumulator::Last(None),
        }
    }

    /// One-shot aggregation of a batch of values.
    pub fn apply(&self, values: &[Value]) -> Value {
        let mut acc = self.accumulator();
        for v in values {
            acc.push(v);
        }
        acc.finish()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MomentsOut {
    Mean,
    StdDev,
}

/// Streaming accumulator. Nulls are ignored by every function except
/// `CountAll` (which counts rows) and `Last` (which skips nulls too —
/// a null is "no new observation", not a value).
#[derive(Debug, Clone)]
pub enum AggAccumulator {
    Count(u64),
    CountAll(u64),
    Sum { total: f64, seen: bool },
    Moments(OnlineMoments, MomentsOut),
    Extreme { best: Option<Value>, want_max: bool },
    Quantile(P2Quantile),
    Distinct(HashSet<String>),
    Last(Option<Value>),
}

impl AggAccumulator {
    pub fn push(&mut self, v: &Value) {
        match self {
            AggAccumulator::CountAll(n) => *n += 1,
            _ if v.is_null() => {}
            AggAccumulator::Count(n) => *n += 1,
            AggAccumulator::Sum { total, seen } => {
                if let Some(x) = v.as_f64() {
                    *total += x;
                    *seen = true;
                }
            }
            AggAccumulator::Moments(m, _) => {
                if let Some(x) = v.as_f64() {
                    m.push(x);
                }
            }
            AggAccumulator::Extreme { best, want_max } => {
                let replace = match best {
                    None => true,
                    Some(b) => {
                        let ord = v.total_cmp(b);
                        if *want_max {
                            ord == std::cmp::Ordering::Greater
                        } else {
                            ord == std::cmp::Ordering::Less
                        }
                    }
                };
                if replace {
                    *best = Some(v.clone());
                }
            }
            AggAccumulator::Quantile(q) => {
                if let Some(x) = v.as_f64() {
                    q.push(x);
                }
            }
            AggAccumulator::Distinct(set) => {
                set.insert(v.to_string());
            }
            AggAccumulator::Last(slot) => *slot = Some(v.clone()),
        }
    }

    /// Finalize (accumulator may keep accumulating afterwards; `finish`
    /// reads the current state). Empty inputs yield `NULL` except for the
    /// counting aggregates, which yield 0.
    pub fn finish(&self) -> Value {
        match self {
            AggAccumulator::Count(n) => Value::Int(*n as i64),
            AggAccumulator::CountAll(n) => Value::Int(*n as i64),
            AggAccumulator::Sum { total, seen } => {
                if *seen {
                    Value::Float(*total)
                } else {
                    Value::Null
                }
            }
            AggAccumulator::Moments(m, out) => {
                if m.count() == 0 {
                    Value::Null
                } else {
                    match out {
                        MomentsOut::Mean => Value::Float(m.mean()),
                        MomentsOut::StdDev => Value::Float(m.sample_variance().sqrt()),
                    }
                }
            }
            AggAccumulator::Extreme { best, .. } => best.clone().unwrap_or(Value::Null),
            AggAccumulator::Quantile(q) => q.estimate().map_or(Value::Null, Value::Float),
            AggAccumulator::Distinct(set) => Value::Int(set.len() as i64),
            AggAccumulator::Last(slot) => slot.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn parse_specs() {
        assert_eq!(AggFunc::parse("SUM").unwrap(), AggFunc::Sum);
        assert_eq!(AggFunc::parse("mean").unwrap(), AggFunc::Avg);
        assert_eq!(AggFunc::parse("p95").unwrap(), AggFunc::Quantile(0.95));
        assert_eq!(
            AggFunc::parse("quantile(0.5)").unwrap(),
            AggFunc::Quantile(0.5)
        );
        assert!(AggFunc::parse("p0").is_err());
        assert!(AggFunc::parse("p100").is_err());
        assert!(AggFunc::parse("wat").is_err());
    }

    #[test]
    fn basic_aggregates() {
        let vs = ints(&[1, 2, 3, 4]);
        assert_eq!(AggFunc::Count.apply(&vs), Value::Int(4));
        assert_eq!(AggFunc::Sum.apply(&vs), Value::Float(10.0));
        assert_eq!(AggFunc::Avg.apply(&vs), Value::Float(2.5));
        assert_eq!(AggFunc::Min.apply(&vs), Value::Int(1));
        assert_eq!(AggFunc::Max.apply(&vs), Value::Int(4));
        assert_eq!(AggFunc::Last.apply(&vs), Value::Int(4));
    }

    #[test]
    fn nulls_ignored_except_count_all() {
        let vs = vec![Value::Int(2), Value::Null, Value::Int(4), Value::Null];
        assert_eq!(AggFunc::Count.apply(&vs), Value::Int(2));
        assert_eq!(AggFunc::CountAll.apply(&vs), Value::Int(4));
        assert_eq!(AggFunc::Avg.apply(&vs), Value::Float(3.0));
        assert_eq!(
            AggFunc::Last.apply(&vs),
            Value::Int(4),
            "null is not a new observation"
        );
    }

    #[test]
    fn empty_inputs() {
        let vs: Vec<Value> = vec![];
        assert_eq!(AggFunc::Count.apply(&vs), Value::Int(0));
        assert_eq!(AggFunc::CountAll.apply(&vs), Value::Int(0));
        assert_eq!(AggFunc::Sum.apply(&vs), Value::Null);
        assert_eq!(AggFunc::Avg.apply(&vs), Value::Null);
        assert_eq!(AggFunc::Min.apply(&vs), Value::Null);
        assert_eq!(AggFunc::Quantile(0.5).apply(&vs), Value::Null);
        assert_eq!(AggFunc::Last.apply(&vs), Value::Null);
    }

    #[test]
    fn stddev_is_sample_std() {
        let vs = ints(&[1, 3]);
        assert_eq!(AggFunc::StdDev.apply(&vs), Value::Float(2f64.sqrt()));
    }

    #[test]
    fn count_distinct() {
        let vs = vec![
            Value::from("a"),
            Value::from("b"),
            Value::from("a"),
            Value::Null,
        ];
        assert_eq!(AggFunc::CountDistinct.apply(&vs), Value::Int(2));
    }

    #[test]
    fn quantile_matches_exact_on_big_batch() {
        let vs: Vec<Value> = (0..10_000).map(|i| Value::Float(i as f64)).collect();
        let v = AggFunc::Quantile(0.9).apply(&vs);
        let x = v.as_f64().unwrap();
        assert!((x - 9_000.0).abs() < 200.0, "p90 {x}");
    }

    #[test]
    fn min_max_on_strings() {
        let vs = vec![Value::from("pear"), Value::from("apple")];
        assert_eq!(AggFunc::Min.apply(&vs), Value::from("apple"));
        assert_eq!(AggFunc::Max.apply(&vs), Value::from("pear"));
    }

    #[test]
    fn accumulator_is_incremental() {
        let mut acc = AggFunc::Sum.accumulator();
        acc.push(&Value::Int(1));
        assert_eq!(acc.finish(), Value::Float(1.0));
        acc.push(&Value::Int(2));
        assert_eq!(acc.finish(), Value::Float(3.0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Incremental accumulation ≡ one-shot apply.
            #[test]
            fn incremental_equals_batch(xs in proptest::collection::vec(-1000i64..1000, 0..200)) {
                let vs = ints(&xs);
                for f in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max, AggFunc::StdDev, AggFunc::CountDistinct, AggFunc::Last] {
                    let mut acc = f.accumulator();
                    for v in &vs { acc.push(v); }
                    prop_assert_eq!(acc.finish(), f.apply(&vs));
                }
            }

            /// Sum equals the naive sum; min/max equal naive extremes.
            #[test]
            fn agrees_with_naive(xs in proptest::collection::vec(-1000i64..1000, 1..200)) {
                let vs = ints(&xs);
                let sum: i64 = xs.iter().sum();
                prop_assert_eq!(AggFunc::Sum.apply(&vs), Value::Float(sum as f64));
                prop_assert_eq!(AggFunc::Min.apply(&vs), Value::Int(*xs.iter().min().unwrap()));
                prop_assert_eq!(AggFunc::Max.apply(&vs), Value::Int(*xs.iter().max().unwrap()));
            }
        }
    }
}
