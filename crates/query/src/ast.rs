//! Abstract syntax of feature expressions.

use fstore_common::Value;
use std::fmt;

/// Binary operators, grouped by family for type checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
    IsNull,
    IsNotNull,
}

/// An expression tree. Column references are by name at parse time and are
/// bound to indices when compiled against a schema (see [`crate::program`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    Column(String),
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `CASE WHEN c1 THEN e1 … [ELSE e] END`
    Case {
        branches: Vec<(Expr, Expr)>,
        otherwise: Option<Box<Expr>>,
    },
    /// Built-in scalar function call.
    Call {
        func: String,
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Column names referenced anywhere in the tree (sorted, deduplicated) —
    /// used by the registry to record feature→source-column lineage.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column(c) = e {
                out.push(c.clone());
            }
        });
        out.sort();
        out.dedup();
        out
    }

    fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column(_) => {}
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (c, e) in branches {
                    c.walk(f);
                    e.walk(f);
                }
                if let Some(e) = otherwise {
                    e.walk(f);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_columns_dedup_and_sort() {
        let e = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::Column("b".into())),
            right: Box::new(Expr::Call {
                func: "coalesce".into(),
                args: vec![Expr::Column("a".into()), Expr::Column("b".into())],
            }),
        };
        assert_eq!(
            e.referenced_columns(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn op_families() {
        assert!(BinOp::Add.is_arithmetic());
        assert!(BinOp::Le.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::And.is_arithmetic());
    }
}
