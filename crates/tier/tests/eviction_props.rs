//! Property tests for the tier's core invariants under random
//! fault / evict / pin / publish interleavings:
//!
//! 1. a pinned block is never evicted,
//! 2. resident-byte accounting is exact (the global gauge always equals
//!    the sum of cached entries, recomputed from the ground truth),
//! 3. every read through the pager returns bytes identical to what was
//!    published — faults, evictions, demotions, and budget changes are
//!    invisible to readers.

use fstore_common::hash::FxHashMap;
use fstore_common::Timestamp;
use fstore_embed::{EmbeddingDb, EmbeddingProvenance, EmbeddingTable};
use fstore_tier::{BlockCache, BlockKey, TierConfig, TieredEmbeddings};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Raw cache operations.
#[derive(Debug, Clone)]
enum CacheOp {
    Insert { slot: u32, floats: usize },
    Get { slot: u32 },
    Pin { slot: u32 },
    Unpin { slot: u32 },
    SetBudget { bytes: u64 },
}

fn arb_cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u32..24, 1usize..64).prop_map(|(slot, floats)| CacheOp::Insert { slot, floats }),
        (0u32..24).prop_map(|slot| CacheOp::Get { slot }),
        (0u32..24).prop_map(|slot| CacheOp::Pin { slot }),
        (0u32..24).prop_map(|slot| CacheOp::Unpin { slot }),
        (64u64..2048).prop_map(|bytes| CacheOp::SetBudget { bytes }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cache-level: random op streams keep byte accounting exact and
    /// never evict a block the model says is pinned.
    #[test]
    fn cache_accounting_is_exact_and_pins_hold(
        shards in 1usize..4,
        budget in 128u64..1024,
        ops in proptest::collection::vec(arb_cache_op(), 1..200),
    ) {
        let cache = BlockCache::new(budget, shards);
        // slot → expected floats (the cache may have evicted it; that is
        // fine unless pinned). pins: slot → model pin count.
        let mut contents: FxHashMap<u32, usize> = FxHashMap::default();
        let mut pins: FxHashMap<u32, u32> = FxHashMap::default();
        let key = |slot: u32| BlockKey { segment: u64::from(slot % 3), block: slot };

        for op in ops {
            match op {
                CacheOp::Insert { slot, floats } => {
                    let data: Arc<[f32]> = vec![slot as f32; floats].into();
                    let got = cache.insert(key(slot), data);
                    // Either the fresh copy landed, or the slot was still
                    // cached and the first copy won; never anything else.
                    let prior = contents.get(&slot).copied();
                    prop_assert!(
                        got.len() == floats || Some(got.len()) == prior,
                        "insert returned {} floats, wanted {} or cached {:?}",
                        got.len(), floats, prior
                    );
                    contents.insert(slot, got.len());
                }
                CacheOp::Get { slot } => {
                    if let Some(data) = cache.get(key(slot)) {
                        prop_assert_eq!(data.len(), contents[&slot]);
                        prop_assert!(data.iter().all(|&x| x == slot as f32));
                    }
                }
                CacheOp::Pin { slot } => {
                    if cache.pin(key(slot)) {
                        *pins.entry(slot).or_insert(0) += 1;
                    }
                }
                CacheOp::Unpin { slot } => {
                    let modeled = pins.get(&slot).copied().unwrap_or(0) > 0;
                    prop_assert_eq!(cache.unpin(key(slot)), modeled);
                    if modeled {
                        *pins.get_mut(&slot).unwrap() -= 1;
                    }
                }
                CacheOp::SetBudget { bytes } => cache.set_budget(bytes),
            }
            // Invariant 2: exact accounting after every op.
            prop_assert_eq!(cache.resident_bytes(), cache.recount_bytes());
            // Invariant 1: every modeled pin is still resident with its
            // original bytes.
            for (&slot, &count) in &pins {
                if count > 0 {
                    let data = cache.get(key(slot));
                    prop_assert!(data.is_some(), "pinned slot {} evicted", slot);
                    prop_assert_eq!(data.unwrap().len(), contents[&slot]);
                }
            }
        }
    }
}

/// Tier-level operations against a live `EmbeddingDb`.
#[derive(Debug, Clone)]
enum TierOp {
    /// Read one row of one version (faults through the cache if spilled).
    Fetch { version: u8, row: u8 },
    /// Publish the next version.
    Publish,
    /// Run one demotion pass.
    Demote,
}

fn arb_tier_op() -> impl Strategy<Value = TierOp> {
    // The vendored proptest has no weighted prop_oneof; repeating the
    // fetch arm biases the stream toward reads.
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(version, row)| TierOp::Fetch { version, row }),
        (any::<u8>(), any::<u8>()).prop_map(|(version, row)| TierOp::Fetch { version, row }),
        (any::<u8>(), any::<u8>()).prop_map(|(version, row)| TierOp::Fetch { version, row }),
        Just(TierOp::Publish),
        Just(TierOp::Demote),
    ]
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn case_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fstore_tier_props_{}_{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic vectors so the oracle is re-derivable from (version, row).
fn vector_for(version: u32, row: usize, dim: usize) -> Vec<f32> {
    (0..dim)
        .map(|j| (u64::from(version) * 10_000 + (row * dim + j) as u64) as f32 * 0.25)
        .collect()
}

fn publish_next(db: &EmbeddingDb, next: u32, rows: usize, dim: usize) {
    let mut t = EmbeddingTable::new(dim).unwrap();
    for row in 0..rows {
        t.insert(format!("k{row:03}"), vector_for(next, row, dim))
            .unwrap();
    }
    db.publish(
        "emb",
        t,
        EmbeddingProvenance::default(),
        Timestamp::millis(i64::from(next)),
    )
    .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pager-level: random fetch/publish/demote interleavings always
    /// return bytes identical to what was published, and cache accounting
    /// stays exact throughout.
    #[test]
    fn reads_are_byte_identical_under_demotion(
        rows in 4usize..24,
        dim in 2usize..8,
        ops in proptest::collection::vec(arb_tier_op(), 1..60),
    ) {
        let db = EmbeddingDb::new();
        let mut published = 2u32;
        publish_next(&db, 1, rows, dim);
        publish_next(&db, 2, rows, dim);

        // A budget around one version's size so demotion actually runs.
        let version_bytes = (rows * dim * 4) as u64;
        let mut config = TierConfig::new(case_dir(), (version_bytes * 3 / 2).max(256));
        config.block_bytes = (dim * 4 * 2).max(16); // ~2 rows per block
        let tier = TieredEmbeddings::attach(&db, config).unwrap();

        for op in ops {
            match op {
                TierOp::Fetch { version, row } => {
                    let version = u32::from(version) % published + 1;
                    let row = usize::from(row) % rows;
                    let store = db.snapshot();
                    let v = store.get("emb", version).unwrap();
                    let key = format!("k{row:03}");
                    let got = v.table.fetch(&key).unwrap().expect("row exists");
                    // Invariant 3: byte-identical to publication.
                    prop_assert_eq!(
                        got.as_slice(),
                        &vector_for(version, row, dim)[..],
                        "version {} row {}", version, row
                    );
                }
                TierOp::Publish => {
                    published += 1;
                    publish_next(&db, published, rows, dim);
                }
                TierOp::Demote => {
                    tier.demote_now().unwrap();
                }
            }
            let cache = tier.cache();
            prop_assert_eq!(cache.resident_bytes(), cache.recount_bytes());
            prop_assert_eq!(tier.last_error(), None);
        }

        // Every row of every version is still intact at the end.
        tier.demote_now().unwrap();
        let store = db.snapshot();
        for version in 1..=published {
            for row in 0..rows {
                let got = store
                    .get("emb", version)
                    .unwrap()
                    .table
                    .fetch(&format!("k{row:03}"))
                    .unwrap()
                    .expect("row exists");
                prop_assert_eq!(got.as_slice(), &vector_for(version, row, dim)[..]);
            }
        }
        // The latest version must still be resident (pinned policy).
        prop_assert!(!store.latest("emb").unwrap().table.is_spilled());
        tier.shutdown();
    }
}
