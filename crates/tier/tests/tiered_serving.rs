//! End-to-end tiered serving over TCP: a working set several times the
//! RAM budget, served through `GetEmbedding` and the search endpoints,
//! must answer byte-identically to a fully-resident oracle while resident
//! embedding bytes stay inside the budget — the tier must be invisible
//! except in the metrics.

use fstore_common::Timestamp;
use fstore_core::FeatureServer;
use fstore_embed::{EmbeddingDb, EmbeddingProvenance, EmbeddingTable};
use fstore_serve::{
    fixed_clock, start, IndexCatalog, IndexSpec, SearchOptions, ServeConfig, ServeEngine, StoreApi,
};
use fstore_storage::OnlineStore;
use fstore_tier::{TierConfig, TieredEmbeddings};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

const DIM: usize = 16;
const ROWS: usize = 64;
const VERSIONS: u32 = 12;
/// 12 versions × 4 KiB = 48 KiB working set against a 10 KiB budget.
const BUDGET: u64 = 10 * 1024;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fstore_tier_serve_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn vector_for(version: u32, row: usize) -> Vec<f32> {
    (0..DIM)
        .map(|j| (u64::from(version) * 100_000 + (row * DIM + j) as u64) as f32 * 0.125)
        .collect()
}

fn table_for(version: u32) -> EmbeddingTable {
    let mut t = EmbeddingTable::new(DIM).unwrap();
    for row in 0..ROWS {
        t.insert(format!("k{row:03}"), vector_for(version, row))
            .unwrap();
    }
    t
}

#[test]
fn tcp_serving_is_byte_identical_with_working_set_over_budget() {
    let db = EmbeddingDb::new();
    // Oracle: every (version, key) → vector, kept fully resident here.
    let mut oracle: HashMap<(u32, String), Vec<f32>> = HashMap::new();
    for version in 1..=VERSIONS {
        for row in 0..ROWS {
            oracle.insert((version, format!("k{row:03}")), vector_for(version, row));
        }
        db.publish(
            "emb",
            table_for(version),
            EmbeddingProvenance::default(),
            Timestamp::millis(i64::from(version)),
        )
        .unwrap();
    }
    let working_set: u64 = (VERSIONS as u64) * (ROWS * DIM * 4) as u64;
    assert!(working_set >= 4 * BUDGET, "working set must dwarf budget");

    let mut config = TierConfig::new(tmp_dir("e2e"), BUDGET);
    config.block_bytes = 512;
    let tier = TieredEmbeddings::attach(&db, config).unwrap();
    let catalog = Arc::new(IndexCatalog::new(db.clone()));
    catalog.build("emb", &IndexSpec::Flat).unwrap();
    tier.attach_catalog(Arc::clone(&catalog));
    tier.demote_now().unwrap();

    let engine = ServeEngine::new(
        FeatureServer::new(Arc::new(OnlineStore::default())),
        fixed_clock(Timestamp::millis(0)),
    )
    .with_embeddings(db.clone())
    .with_index_catalog(catalog);
    let handle = start(engine, ServeConfig::default()).unwrap();
    tier.attach_metrics(&handle.metrics());

    let mut client = fstore_serve::FeatureClient::connect(handle.addr()).unwrap();

    // Every row of every version — resident latest and spilled cold — is
    // byte-identical to the oracle, twice (second pass hits the cache).
    for round in 0..2 {
        for version in 1..=VERSIONS {
            let table = format!("emb@v{version}");
            for row in 0..ROWS {
                let key = format!("k{row:03}");
                let read = client.get_embedding(&table, &key).unwrap();
                assert_eq!(read.version, version);
                assert_eq!(read.dim, DIM);
                assert_eq!(
                    read.vector,
                    oracle[&(version, key.clone())],
                    "round {round} {table} {key}"
                );
            }
        }
    }

    // Search anchors resolve over the wire too (latest table, flat index).
    let hits = client
        .search_nearest_by_key("emb", "k007", 5, SearchOptions::default())
        .unwrap();
    assert_eq!(hits.hits.len(), 5);
    assert!(
        hits.hits.windows(2).all(|w| w[0].distance <= w[1].distance),
        "hits sorted by distance"
    );

    // The tier section made it into the metrics snapshot, and residency
    // stayed bounded while serving 4×+ the budget.
    let snapshot = handle.metrics().snapshot();
    let tier_section = snapshot.tier.expect("tier metrics wired in");
    assert_eq!(tier_section.budget_bytes, BUDGET);
    assert!(
        tier_section.peak_resident_bytes <= BUDGET,
        "peak {} over budget {}",
        tier_section.peak_resident_bytes,
        BUDGET
    );
    assert!(tier_section.spilled_versions >= VERSIONS as u64 - 2);
    assert!(tier_section.spilled_bytes >= 3 * BUDGET);
    assert!(tier_section.cache_hits > 0, "second pass should hit");
    assert!(tier_section.hit_rate.unwrap() > 0.0);
    assert!(tier_section.faults > 0);
    assert!(tier_section.fault_p99_ms.is_some());
    assert!(tier_section.demotions >= tier_section.spilled_versions);
    assert_eq!(tier.last_error(), None);

    // Zero-copy satellite: embedding responses encoded from shared blocks
    // never bump the copy counter.
    assert_eq!(
        snapshot.wire.embed_copies, 0,
        "embedding responses must not copy vectors"
    );

    handle.shutdown();
    tier.shutdown();
}
