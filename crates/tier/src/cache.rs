//! The hot-block cache: bounded, sharded, clock-evicting storage for
//! decoded segment blocks.
//!
//! Blocks are keyed by `(segment id, block index)` and held as
//! `Arc<[f32]>`, so a cache hit hands out a window into the shared block
//! with zero copies — readers keep their block alive through the `Arc`
//! even if it is evicted mid-read. Eviction is CLOCK (second chance)
//! against a single global byte budget: each shard sweeps a ring,
//! clearing reference bits, skipping pinned entries, and evicting the
//! first cold unpinned block; inserts make room by rotating across
//! shards so the bound holds even when one block exceeds a shard's
//! proportional share. Byte accounting
//! is exact — the resident gauge always equals the sum of cached block
//! payloads (the eviction proptests pin this down) — and a peak
//! watermark records the worst case. The byte budget is adjustable at
//! runtime; the tier demoter shrinks it as resident tables grow so
//! tables + cache stay inside one RAM budget.

use fstore_common::hash::{fx_hash_one, FxHashMap};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of one cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// The owning segment's id (assigned by the tier at demotion time).
    pub segment: u64,
    /// Block index within the segment.
    pub block: u32,
}

struct Entry {
    data: Arc<[f32]>,
    bytes: u64,
    referenced: bool,
    pins: u32,
}

#[derive(Default)]
struct Shard {
    map: FxHashMap<BlockKey, Entry>,
    ring: Vec<BlockKey>,
    hand: usize,
    bytes: u64,
}

/// Counters and gauges at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    pub resident_bytes: u64,
    pub peak_resident_bytes: u64,
    pub pinned_bytes: u64,
}

/// The sharded block cache. All methods take `&self`; one mutex per
/// shard keeps fault storms on different segments from serializing.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    budget: AtomicU64,
    resident: AtomicU64,
    peak: AtomicU64,
    evict_hand: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl BlockCache {
    /// A cache bounded at `budget_bytes` across `shards` shards (clamped
    /// to at least one).
    pub fn new(budget_bytes: u64, shards: usize) -> BlockCache {
        BlockCache {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            budget: AtomicU64::new(budget_bytes),
            resident: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            evict_hand: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: BlockKey) -> &Mutex<Shard> {
        let h = fx_hash_one(&(key.segment, key.block));
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Look a block up, marking it recently used. Counts a hit or a miss.
    pub fn get(&self, key: BlockKey) -> Option<Arc<[f32]>> {
        let mut shard = self.shard(key).lock();
        match shard.map.get_mut(&key) {
            Some(e) => {
                e.referenced = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.data))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a freshly faulted block, evicting cold unpinned blocks —
    /// from any shard — until the *global* budget has room for it, so
    /// the resident total stays bounded even when one block exceeds a
    /// shard's proportional share. Room is made before the insert, so a
    /// fresh block is never a victim of its own fault. If another thread
    /// faulted the same block first, its copy wins (the bytes are
    /// identical) and no double accounting happens. Returns the cached
    /// block.
    pub fn insert(&self, key: BlockKey, data: Arc<[f32]>) -> Arc<[f32]> {
        let bytes = (data.len() * 4) as u64;
        if let Some(existing) = self.shard(key).lock().map.get(&key) {
            return Arc::clone(&existing.data);
        }
        let budget = self.budget.load(Ordering::Relaxed);
        while self.resident.load(Ordering::Relaxed) + bytes > budget {
            if !self.evict_somewhere() {
                break; // everything cached is pinned — bounded overshoot
            }
        }
        let mut shard = self.shard(key).lock();
        if let Some(existing) = shard.map.get(&key) {
            // Lost a fault race while evicting; first copy wins.
            return Arc::clone(&existing.data);
        }
        shard.bytes += bytes;
        shard.ring.push(key);
        shard.map.insert(
            key,
            Entry {
                data: Arc::clone(&data),
                bytes,
                referenced: false,
                pins: 0,
            },
        );
        drop(shard);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let resident = self.add_resident(bytes as i64);
        self.peak.fetch_max(resident, Ordering::Relaxed);
        data
    }

    /// Evict one cold unpinned block from whichever shard yields first,
    /// round-robin from a rotating hand; one shard lock held at a time.
    /// False when no shard has an evictable entry.
    fn evict_somewhere(&self) -> bool {
        let n = self.shards.len();
        let start = self.evict_hand.fetch_add(1, Ordering::Relaxed) as usize;
        for i in 0..n {
            let mut shard = self.shards[(start + i) % n].lock();
            if let Some(freed) = Self::evict_one(&mut shard) {
                drop(shard);
                self.add_resident(-(freed as i64));
                self.evictions.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// One CLOCK sweep ending in an eviction, returning the freed bytes;
    /// `None` when no entry is evictable (all pinned, or recently
    /// referenced on every pass — bounded at two full ring revolutions).
    fn evict_one(shard: &mut Shard) -> Option<u64> {
        if shard.ring.is_empty() {
            return None;
        }
        let mut steps = 0usize;
        let max_steps = shard.ring.len() * 2 + 1;
        while steps < max_steps && !shard.ring.is_empty() {
            if shard.hand >= shard.ring.len() {
                shard.hand = 0;
            }
            let key = shard.ring[shard.hand];
            match shard.map.get_mut(&key) {
                None => {
                    // Stale ring slot (entry removed out of band).
                    shard.ring.swap_remove(shard.hand);
                    continue;
                }
                Some(e) if e.pins > 0 => {
                    shard.hand += 1;
                }
                Some(e) if e.referenced => {
                    e.referenced = false;
                    shard.hand += 1;
                }
                Some(_) => {
                    let e = shard.map.remove(&key).expect("entry present");
                    shard.ring.swap_remove(shard.hand);
                    shard.bytes -= e.bytes;
                    return Some(e.bytes);
                }
            }
            steps += 1;
        }
        None
    }

    fn add_resident(&self, delta: i64) -> u64 {
        if delta >= 0 {
            self.resident.fetch_add(delta as u64, Ordering::Relaxed) + delta as u64
        } else {
            self.resident.fetch_sub((-delta) as u64, Ordering::Relaxed) - (-delta) as u64
        }
    }

    /// Pin a cached block against eviction (counted; pairs with
    /// [`BlockCache::unpin`]). False if the block is not cached — pinning
    /// does not fault.
    pub fn pin(&self, key: BlockKey) -> bool {
        match self.shard(key).lock().map.get_mut(&key) {
            Some(e) => {
                e.pins += 1;
                true
            }
            None => false,
        }
    }

    /// Drop one pin. False if the block is absent or not pinned.
    pub fn unpin(&self, key: BlockKey) -> bool {
        match self.shard(key).lock().map.get_mut(&key) {
            Some(e) if e.pins > 0 => {
                e.pins -= 1;
                true
            }
            _ => false,
        }
    }

    /// Drop every block of `segment` (promotion or segment GC), pinned or
    /// not — the caller owns the segment's lifecycle.
    pub fn remove_segment(&self, segment: u64) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            let keys: Vec<BlockKey> = shard
                .map
                .keys()
                .filter(|k| k.segment == segment)
                .copied()
                .collect();
            let mut freed = 0u64;
            for key in keys {
                if let Some(e) = shard.map.remove(&key) {
                    freed += e.bytes;
                }
            }
            if freed > 0 {
                shard.bytes -= freed;
                self.add_resident(-(freed as i64));
            }
            // Stale ring slots are lazily reaped by the clock sweep.
        }
    }

    /// Retarget the byte budget (the tier demoter shrinks the cache as
    /// resident tables grow). Shrinking does not evict eagerly; the next
    /// inserts do.
    pub fn set_budget(&self, budget_bytes: u64) {
        self.budget.store(budget_bytes, Ordering::Relaxed);
    }

    pub fn budget(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Exact bytes currently cached.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Counters and gauges at this instant. `pinned_bytes` is computed by
    /// a sweep (stats calls are rare; faults never pay for it).
    pub fn stats(&self) -> CacheStats {
        let mut pinned = 0u64;
        for shard in &self.shards {
            let shard = shard.lock();
            pinned += shard
                .map
                .values()
                .filter(|e| e.pins > 0)
                .map(|e| e.bytes)
                .sum::<u64>();
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed),
            peak_resident_bytes: self.peak.load(Ordering::Relaxed),
            pinned_bytes: pinned,
        }
    }

    /// The sum of per-entry bytes across all shards, recomputed from the
    /// ground truth — test support for the exact-accounting invariant.
    pub fn recount_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().map.values().map(|e| e.bytes).sum::<u64>())
            .sum()
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("budget", &self.budget())
            .field("resident", &self.resident_bytes())
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(floats: usize, fill: f32) -> Arc<[f32]> {
        vec![fill; floats].into()
    }

    fn key(segment: u64, block: u32) -> BlockKey {
        BlockKey { segment, block }
    }

    #[test]
    fn hits_misses_and_exact_accounting() {
        let c = BlockCache::new(1024, 1);
        assert!(c.get(key(1, 0)).is_none());
        c.insert(key(1, 0), block(16, 1.0)); // 64 bytes
        c.insert(key(1, 1), block(16, 2.0));
        assert_eq!(c.get(key(1, 0)).unwrap()[0], 1.0);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.resident_bytes, 128);
        assert_eq!(s.resident_bytes, c.recount_bytes());
        assert_eq!(s.peak_resident_bytes, 128);
    }

    #[test]
    fn eviction_keeps_the_cache_inside_budget() {
        let c = BlockCache::new(256, 1); // room for 4 × 64-byte blocks
        for i in 0..32 {
            c.insert(key(1, i), block(16, i as f32));
        }
        assert!(c.resident_bytes() <= 256, "resident {}", c.resident_bytes());
        assert_eq!(c.resident_bytes(), c.recount_bytes());
        assert_eq!(c.stats().evictions, 28);
        assert!(c.stats().peak_resident_bytes <= 256);
    }

    #[test]
    fn clock_gives_hot_blocks_a_second_chance() {
        let c = BlockCache::new(256, 1);
        for i in 0..4 {
            c.insert(key(1, i), block(16, i as f32));
        }
        // Touch block 0 so its reference bit protects it on the next sweep.
        assert!(c.get(key(1, 0)).is_some());
        c.insert(key(1, 99), block(16, 9.0));
        assert!(c.get(key(1, 0)).is_some(), "hot block survived");
    }

    #[test]
    fn pinned_blocks_are_never_evicted() {
        let c = BlockCache::new(128, 1); // room for 2 blocks
        c.insert(key(1, 0), block(16, 1.0));
        assert!(c.pin(key(1, 0)));
        for i in 1..20 {
            c.insert(key(1, i), block(16, i as f32));
        }
        assert_eq!(c.get(key(1, 0)).unwrap()[0], 1.0, "pinned block resident");
        assert!(c.stats().pinned_bytes >= 64);
        assert!(c.unpin(key(1, 0)));
        assert!(!c.unpin(key(1, 0)), "already unpinned");
        for i in 20..40 {
            c.insert(key(1, i), block(16, i as f32));
        }
        assert_eq!(c.resident_bytes(), c.recount_bytes());
        assert!(c.resident_bytes() <= 128);
    }

    #[test]
    fn overshoot_when_everything_is_pinned() {
        let c = BlockCache::new(128, 1);
        for i in 0..4 {
            c.insert(key(1, i), block(16, i as f32));
            c.pin(key(1, i));
        }
        // 256 bytes resident, all pinned: inserts overshoot, never evict.
        assert_eq!(c.resident_bytes(), 256);
        assert_eq!(c.get(key(1, 0)).unwrap().len(), 16);
    }

    #[test]
    fn remove_segment_frees_its_blocks_only() {
        let c = BlockCache::new(4096, 2);
        for i in 0..4 {
            c.insert(key(1, i), block(16, 1.0));
            c.insert(key(2, i), block(16, 2.0));
        }
        c.remove_segment(1);
        assert!(c.get(key(1, 0)).is_none());
        assert_eq!(c.get(key(2, 0)).unwrap()[0], 2.0);
        assert_eq!(c.resident_bytes(), c.recount_bytes());
        assert_eq!(c.resident_bytes(), 4 * 64);
        // The clock still works over the stale ring slots.
        c.set_budget(128);
        for i in 10..20 {
            c.insert(key(3, i), block(16, 3.0));
        }
        assert_eq!(c.resident_bytes(), c.recount_bytes());
    }

    #[test]
    fn duplicate_insert_is_not_double_counted() {
        let c = BlockCache::new(1024, 1);
        let first = c.insert(key(1, 0), block(16, 1.0));
        let second = c.insert(key(1, 0), block(16, 8.0));
        assert!(Arc::ptr_eq(&first, &second), "first copy wins");
        assert_eq!(c.resident_bytes(), 64);
        assert_eq!(c.recount_bytes(), 64);
    }
}
