//! # fstore-tier
//!
//! Tiered embedding storage: larger-than-RAM embedding serving.
//!
//! The embedding store pins every published version fully in memory;
//! this crate moves cold versions to disk and serves them through a
//! bounded hot-block cache, per the MLKV / geo-distributed-serving
//! tiering argument (PAPERS.md):
//!
//! * [`segment`] — block-aligned `"FSEG"` files (an `"FSEB"`-derived
//!   format sharing [`fstore_durable::fseb::BlobHeader`]): a CRC-guarded
//!   metadata header plus fixed-geometry row blocks, each with its own
//!   CRC, read individually via `FileExt::read_at` — a vector fault never
//!   loads a whole version.
//! * [`cache`] — [`BlockCache`]: sharded, clock-evicting, byte-budgeted
//!   cache of decoded blocks with pin support and exact accounting.
//! * [`pager`] — [`SpilledTable`] (the [`fstore_embed::VectorPager`]
//!   implementation gluing segment + cache under an `EmbeddingTable`) and
//!   [`TieredEmbeddings`], the residency policy: a publication hook wakes
//!   a background demoter that spills unpinned versions when resident
//!   bytes cross the high watermark, keeping the latest version per name
//!   and any index-referenced version pinned in RAM.
//!
//! Serving integration is transparent: a demoted version is re-installed
//! into the [`fstore_embed::EmbeddingDb`] with a spilled table, so
//! `GetEmbedding`, search anchor fetches, and exact-rerank scans fault
//! blocks through the cache without code changes. Stats flow into the
//! `tier` section of `ServingMetrics` via a polled provider.

pub mod cache;
pub mod pager;
pub mod segment;

pub use cache::{BlockCache, BlockKey, CacheStats};
pub use pager::{SpilledTable, TierConfig, TierStats, TieredEmbeddings};
pub use segment::Segment;
