//! `"FSEG"` segment files: one spilled embedding version, block-aligned.
//!
//! The format derives from the `"FSEB"` checkpoint blob — the metadata
//! half *is* [`BlobHeader`] — but lays the vectors out in fixed-geometry
//! blocks so a read faults one block, not the whole version:
//!
//! ```text
//! "FSEG" | crc32(meta) u32 LE | meta_len u32 LE | meta JSON
//!        | num_blocks × u32 LE per-block CRCs
//!        | zero pad to a 4096-aligned data offset
//!        | block 0 | block 1 | … (raw LE f32 rows, last block short)
//! ```
//!
//! Block `i` holds rows `[i·rpb, min((i+1)·rpb, len))` where `rpb` is
//! `rows_per_block` from the metadata; every offset is derivable from the
//! header alone, so reads are pure `read_at` with no directory state. A
//! corrupted CRC-table entry reads as a corrupted block — either way the
//! fault fails loudly instead of serving wrong bytes. Segments are
//! derived state: recovery rebuilds them from the checkpoint + WAL, so
//! writes go through a temp file + rename but take no fsync.

use fstore_common::{crc32, FsError, Result};
use fstore_durable::fseb::BlobHeader;
use fstore_embed::EmbeddingVersion;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic for tier segments.
pub const SEGMENT_MAGIC: &[u8; 4] = b"FSEG";

/// Data blocks start on this alignment.
const DATA_ALIGN: u64 = 4096;

/// The JSON metadata half of a segment: the blob identity plus block
/// geometry.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SegmentMeta {
    blob: BlobHeader,
    rows_per_block: u32,
}

/// An open segment: metadata resident, vectors on disk, blocks served
/// individually through [`Segment::read_block`].
#[derive(Debug)]
pub struct Segment {
    file: File,
    path: PathBuf,
    meta: SegmentMeta,
    block_crcs: Vec<u32>,
    data_offset: u64,
}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> FsError {
    FsError::Storage(format!("{op} {}: {e}", path.display()))
}

fn blocks_for(rows: usize, rows_per_block: u32) -> usize {
    rows.div_ceil(rows_per_block as usize)
}

fn align_up(n: u64, align: u64) -> u64 {
    n.div_ceil(align) * align
}

impl Segment {
    /// Write `version` as a segment at `path` (temp file + rename, so a
    /// crash mid-write never leaves a file that opens). `block_bytes` is
    /// the target block payload size; at least one row fits per block.
    ///
    /// Rows stream out one block buffer at a time — demotion never
    /// re-materializes the version.
    pub fn write(path: &Path, version: &EmbeddingVersion, block_bytes: usize) -> Result<()> {
        let table = &version.table;
        let dim = table.dim();
        let keys: Vec<String> = table.keys().into_iter().map(str::to_string).collect();
        let row_bytes = dim * 4;
        let rows_per_block = (block_bytes / row_bytes).max(1) as u32;
        let num_blocks = blocks_for(keys.len(), rows_per_block);

        let meta = SegmentMeta {
            blob: BlobHeader {
                name: version.name.clone(),
                version: version.version,
                created_at: version.created_at,
                provenance: version.provenance.clone(),
                consumers: version.consumers.clone(),
                dim,
                keys: keys.clone(),
            },
            rows_per_block,
        };
        let meta_json = serde_json::to_string(&meta)
            .map_err(|e| FsError::Serde(e.to_string()))?
            .into_bytes();
        let data_offset = align_up(
            12 + meta_json.len() as u64 + 4 * num_blocks as u64,
            DATA_ALIGN,
        );

        let tmp = path.with_extension("seg.tmp");
        let mut file = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        file.write_all(SEGMENT_MAGIC)
            .and_then(|()| file.write_all(&crc32(&meta_json).to_le_bytes()))
            .and_then(|()| file.write_all(&(meta_json.len() as u32).to_le_bytes()))
            .and_then(|()| file.write_all(&meta_json))
            .map_err(|e| io_err("write header", &tmp, e))?;

        // Blocks first (streaming, CRCs computed as they go), CRC table
        // backfilled after.
        file.seek(SeekFrom::Start(data_offset))
            .map_err(|e| io_err("seek", &tmp, e))?;
        let mut block_crcs = Vec::with_capacity(num_blocks);
        let mut block = Vec::with_capacity(rows_per_block as usize * row_bytes);
        for (row, key) in keys.iter().enumerate() {
            let v = table.fetch(key)?.ok_or_else(|| {
                FsError::Embedding(format!("row `{key}` vanished during segment write"))
            })?;
            for &x in v.as_slice() {
                block.extend_from_slice(&x.to_le_bytes());
            }
            let last = row + 1 == keys.len();
            if (row + 1) % rows_per_block as usize == 0 || last {
                block_crcs.push(crc32(&block));
                file.write_all(&block)
                    .map_err(|e| io_err("write block", &tmp, e))?;
                block.clear();
            }
        }
        file.seek(SeekFrom::Start(12 + meta_json.len() as u64))
            .map_err(|e| io_err("seek", &tmp, e))?;
        for crc in &block_crcs {
            file.write_all(&crc.to_le_bytes())
                .map_err(|e| io_err("write crc table", &tmp, e))?;
        }
        file.flush().map_err(|e| io_err("flush", &tmp, e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| io_err("publish", path, e))?;
        Ok(())
    }

    /// Open a segment, validating magic, metadata CRC, and the file size
    /// against the declared geometry.
    pub fn open(path: impl Into<PathBuf>) -> Result<Segment> {
        let path = path.into();
        let file = File::open(&path).map_err(|e| io_err("open", &path, e))?;
        let mut fixed = [0u8; 12];
        file.read_exact_at(&mut fixed, 0)
            .map_err(|e| io_err("read header", &path, e))?;
        if &fixed[0..4] != SEGMENT_MAGIC {
            return Err(FsError::Corruption(format!(
                "{}: bad segment magic",
                path.display()
            )));
        }
        let meta_crc = u32::from_le_bytes(fixed[4..8].try_into().unwrap());
        let meta_len = u32::from_le_bytes(fixed[8..12].try_into().unwrap()) as usize;
        let mut meta_json = vec![0u8; meta_len];
        file.read_exact_at(&mut meta_json, 12)
            .map_err(|e| io_err("read metadata", &path, e))?;
        if crc32(&meta_json) != meta_crc {
            return Err(FsError::Corruption(format!(
                "{}: segment metadata CRC mismatch",
                path.display()
            )));
        }
        let meta: SegmentMeta = serde_json::from_slice(&meta_json).map_err(|e| {
            FsError::Corruption(format!("{}: bad segment meta: {e}", path.display()))
        })?;
        if meta.blob.dim == 0 || meta.rows_per_block == 0 {
            return Err(FsError::Corruption(format!(
                "{}: impossible segment geometry",
                path.display()
            )));
        }
        let num_blocks = blocks_for(meta.blob.keys.len(), meta.rows_per_block);
        let mut crc_table = vec![0u8; num_blocks * 4];
        file.read_exact_at(&mut crc_table, 12 + meta_len as u64)
            .map_err(|e| io_err("read crc table", &path, e))?;
        let block_crcs = crc_table
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        let data_offset = align_up(12 + meta_len as u64 + 4 * num_blocks as u64, DATA_ALIGN);
        let file_len = file.metadata().map_err(|e| io_err("stat", &path, e))?.len();
        let payload = (meta.blob.keys.len() * meta.blob.dim * 4) as u64;
        if file_len < data_offset + payload {
            return Err(FsError::Corruption(format!(
                "{}: segment truncated ({file_len} bytes, need {})",
                path.display(),
                data_offset + payload
            )));
        }
        Ok(Segment {
            file,
            path,
            meta,
            block_crcs,
            data_offset,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn dim(&self) -> usize {
        self.meta.blob.dim
    }

    /// Number of rows (vectors) in the segment.
    pub fn len(&self) -> usize {
        self.meta.blob.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.meta.blob.keys.is_empty()
    }

    /// Entity keys in row order.
    pub fn keys(&self) -> &[String] {
        &self.meta.blob.keys
    }

    /// The blob identity (name, version, provenance, consumers, …).
    pub fn blob_header(&self) -> &BlobHeader {
        &self.meta.blob
    }

    pub fn rows_per_block(&self) -> usize {
        self.meta.rows_per_block as usize
    }

    pub fn num_blocks(&self) -> usize {
        self.block_crcs.len()
    }

    /// The block holding `row` and the row's float offset inside it.
    pub fn locate_row(&self, row: usize) -> (usize, usize) {
        let rpb = self.rows_per_block();
        (row / rpb, (row % rpb) * self.dim())
    }

    /// Rows in block `i` (the last block may be short).
    pub fn block_rows(&self, block: usize) -> usize {
        let rpb = self.rows_per_block();
        (self.len() - block * rpb).min(rpb)
    }

    /// Total on-disk vector payload bytes.
    pub fn payload_bytes(&self) -> u64 {
        (self.len() * self.dim() * 4) as u64
    }

    /// Fault one block from disk: a single `read_at` of the block's
    /// payload, CRC-verified, decoded to `f32`s. Returns the decoded rows
    /// as one shared allocation the cache can hold.
    pub fn read_block(&self, block: usize) -> Result<Arc<[f32]>> {
        if block >= self.num_blocks() {
            return Err(FsError::InvalidArgument(format!(
                "block {block} out of range ({} blocks)",
                self.num_blocks()
            )));
        }
        let rpb = self.rows_per_block();
        let row_bytes = self.dim() * 4;
        let offset = self.data_offset + (block * rpb * row_bytes) as u64;
        let nbytes = self.block_rows(block) * row_bytes;
        let mut buf = vec![0u8; nbytes];
        self.file
            .read_exact_at(&mut buf, offset)
            .map_err(|e| io_err("read block", &self.path, e))?;
        if crc32(&buf) != self.block_crcs[block] {
            return Err(FsError::Corruption(format!(
                "{}: block {block} CRC mismatch",
                self.path.display()
            )));
        }
        let floats: Vec<f32> = buf
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        Ok(floats.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::Timestamp;
    use fstore_embed::{EmbeddingProvenance, EmbeddingTable};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fstore_tier_seg_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn version(rows: usize, dim: usize) -> EmbeddingVersion {
        let mut t = EmbeddingTable::new(dim).unwrap();
        for i in 0..rows {
            let v: Vec<f32> = (0..dim).map(|j| (i * dim + j) as f32 * 0.5 - 3.0).collect();
            t.insert(format!("k{i:04}"), v).unwrap();
        }
        EmbeddingVersion {
            name: "emb".into(),
            version: 7,
            created_at: Timestamp::millis(99),
            provenance: EmbeddingProvenance::default(),
            table: t,
            consumers: vec!["ranker".into()],
        }
    }

    #[test]
    fn segment_round_trips_every_row() {
        let v = version(37, 3);
        let path = tmp("round.seg");
        // 2 rows per block → 19 blocks, last one short.
        Segment::write(&path, &v, 24).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.dim(), 3);
        assert_eq!(seg.len(), 37);
        assert_eq!(seg.rows_per_block(), 2);
        assert_eq!(seg.num_blocks(), 19);
        assert_eq!(seg.blob_header().name, "emb");
        assert_eq!(seg.blob_header().version, 7);
        assert_eq!(seg.blob_header().consumers, vec!["ranker".to_string()]);
        for (row, key) in seg.keys().to_vec().iter().enumerate() {
            let (block, off) = seg.locate_row(row);
            let data = seg.read_block(block).unwrap();
            let got = &data[off..off + 3];
            let want = v.table.get(key).unwrap();
            assert_eq!(got, want, "row {row}");
        }
    }

    #[test]
    fn block_sized_for_target_bytes() {
        let v = version(100, 4);
        let path = tmp("sized.seg");
        Segment::write(&path, &v, 64).unwrap(); // 4 rows of 16 bytes per block
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.rows_per_block(), 4);
        assert_eq!(seg.num_blocks(), 25);
        assert_eq!(seg.block_rows(24), 4);
        assert_eq!(seg.payload_bytes(), 100 * 16);
        // Tiny target still fits one row per block.
        let path1 = tmp("sized1.seg");
        Segment::write(&path1, &v, 1).unwrap();
        assert_eq!(Segment::open(&path1).unwrap().rows_per_block(), 1);
    }

    #[test]
    fn corruption_is_detected() {
        let v = version(8, 2);
        let path = tmp("corrupt.seg");
        Segment::write(&path, &v, 16).unwrap();
        let clean = std::fs::read(&path).unwrap();
        let seg = Segment::open(&path).unwrap();
        let data_start = {
            // Every block read works on the clean file.
            for b in 0..seg.num_blocks() {
                seg.read_block(b).unwrap();
            }
            clean.len() - seg.payload_bytes() as usize
        };

        // Flip a byte in the first data block.
        let mut bad = clean.clone();
        bad[data_start] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert!(matches!(seg.read_block(0), Err(FsError::Corruption(_))));

        // Flip a byte in the metadata.
        let mut bad = clean.clone();
        bad[16] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(Segment::open(&path), Err(FsError::Corruption(_))));

        // Truncate the data region (torn write mid-demotion).
        std::fs::write(&path, &clean[..clean.len() - 5]).unwrap();
        assert!(matches!(Segment::open(&path), Err(FsError::Corruption(_))));

        // Flip a CRC-table entry: the matching block read fails.
        let mut bad = clean.clone();
        let crc_table_at = 12 + u32::from_le_bytes(clean[8..12].try_into().unwrap()) as usize;
        bad[crc_table_at] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert!(matches!(seg.read_block(0), Err(FsError::Corruption(_))));
        seg.read_block(1).unwrap();
    }

    #[test]
    fn bad_magic_and_out_of_range_blocks_are_rejected() {
        let path = tmp("magic.seg");
        std::fs::write(&path, b"NOPE0000000000").unwrap();
        assert!(matches!(Segment::open(&path), Err(FsError::Corruption(_))));

        let v = version(4, 2);
        let path = tmp("range.seg");
        Segment::write(&path, &v, 1024).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.num_blocks(), 1);
        assert!(seg.read_block(1).is_err());
    }
}
