//! The pager and the residency policy.
//!
//! [`SpilledTable`] is the [`VectorPager`] implementation that makes a
//! demoted version servable: a key lookup maps to a segment row, the row
//! to a block, the block to a cache probe, and only a miss touches disk
//! (one `read_at`, CRC-checked, inserted into the shared [`BlockCache`]).
//! The returned [`VectorBuf`] is a window into the cached block — no
//! copies on the read path.
//!
//! [`TieredEmbeddings`] is the policy half: it hangs a publish hook off
//! the [`EmbeddingDb`] that wakes a background demoter. The demoter walks
//! every version, keeps the latest version of each name (and any version
//! a live index snapshot was built from) pinned in RAM, and when resident
//! bytes cross the high watermark spills the coldest unpinned versions
//! (oldest `created_at` first) until under the low watermark. A demotion
//! writes an `"FSEG"` segment, reopens it, and re-installs the version
//! with a spilled table — readers of the next snapshot fault blocks
//! transparently. The cache budget is retargeted to `budget − resident
//! table bytes` each pass so tables plus cache stay inside one budget.

use crate::cache::{BlockCache, BlockKey};
use crate::segment::Segment;
use fstore_common::hash::{FxHashMap, FxHashSet};
use fstore_common::stats::P2Quantile;
use fstore_common::{FsError, Result, VectorBuf};
use fstore_embed::{EmbeddingDb, EmbeddingTable, EmbeddingVersion, VectorPager};
use fstore_serve::catalog::IndexCatalog;
use fstore_serve::metrics::TierSnapshot;
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Condvar;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Residency policy knobs.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Directory segment files are written to.
    pub dir: PathBuf,
    /// RAM budget for embedding bytes: resident tables + cached blocks.
    pub budget_bytes: u64,
    /// Target payload bytes per segment block (one fault's granularity).
    pub block_bytes: usize,
    /// Demotion starts when resident bytes exceed `high_watermark ×
    /// budget` …
    pub high_watermark: f64,
    /// … and stops once they are under `low_watermark × budget`.
    pub low_watermark: f64,
    /// Shards in the block cache.
    pub cache_shards: usize,
}

impl TierConfig {
    /// Defaults: 64 KiB blocks, demote above 85% of budget down to 60%,
    /// 8 cache shards.
    pub fn new(dir: impl Into<PathBuf>, budget_bytes: u64) -> TierConfig {
        TierConfig {
            dir: dir.into(),
            budget_bytes,
            block_bytes: 64 * 1024,
            high_watermark: 0.85,
            low_watermark: 0.60,
            cache_shards: 8,
        }
    }
}

/// Shared tier counters; [`TierStats::snapshot`] produces the `tier`
/// section of `ServingMetrics`.
#[derive(Debug)]
pub struct TierStats {
    cache: Arc<BlockCache>,
    budget: AtomicU64,
    resident_table_bytes: AtomicU64,
    pinned_bytes: AtomicU64,
    peak_resident: AtomicU64,
    spilled_bytes: AtomicU64,
    spilled_versions: AtomicU64,
    demotions: AtomicU64,
    faults: AtomicU64,
    fault_quantiles: Mutex<(P2Quantile, P2Quantile)>,
}

impl TierStats {
    pub fn new(cache: Arc<BlockCache>, budget_bytes: u64) -> TierStats {
        TierStats {
            cache,
            budget: AtomicU64::new(budget_bytes),
            resident_table_bytes: AtomicU64::new(0),
            pinned_bytes: AtomicU64::new(0),
            peak_resident: AtomicU64::new(0),
            spilled_bytes: AtomicU64::new(0),
            spilled_versions: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            fault_quantiles: Mutex::new((P2Quantile::new(0.50), P2Quantile::new(0.99))),
        }
    }

    /// Record one disk fault and its latency.
    pub fn record_fault(&self, elapsed: Duration) {
        self.faults.fetch_add(1, Ordering::Relaxed);
        let ms = elapsed.as_secs_f64() * 1e3;
        let mut q = self.fault_quantiles.lock();
        q.0.push(ms);
        q.1.push(ms);
    }

    /// Fold the current resident total into the peak watermark. Called
    /// after every fault insert and demoter pass, and at snapshot time.
    pub fn note_resident(&self) -> u64 {
        let resident =
            self.resident_table_bytes.load(Ordering::Relaxed) + self.cache.resident_bytes();
        self.peak_resident.fetch_max(resident, Ordering::Relaxed);
        resident
    }

    /// Point-in-time tier section for `ServingMetrics`.
    pub fn snapshot(&self) -> TierSnapshot {
        let resident = self.note_resident();
        let cs = self.cache.stats();
        let reads = cs.hits + cs.misses;
        let (p50, p99) = {
            let q = self.fault_quantiles.lock();
            (q.0.estimate(), q.1.estimate())
        };
        TierSnapshot {
            budget_bytes: self.budget.load(Ordering::Relaxed),
            resident_bytes: resident,
            pinned_bytes: self.pinned_bytes.load(Ordering::Relaxed),
            peak_resident_bytes: self.peak_resident.load(Ordering::Relaxed).max(resident),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            spilled_versions: self.spilled_versions.load(Ordering::Relaxed),
            cache_hits: cs.hits,
            cache_misses: cs.misses,
            hit_rate: (reads > 0).then(|| cs.hits as f64 / reads as f64),
            faults: self.faults.load(Ordering::Relaxed),
            fault_p50_ms: p50,
            fault_p99_ms: p99,
            evictions: cs.evictions,
            demotions: self.demotions.load(Ordering::Relaxed),
        }
    }

    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }
}

/// A spilled version's pager: segment rows served through the shared
/// block cache.
#[derive(Debug)]
pub struct SpilledTable {
    segment: Arc<Segment>,
    segment_id: u64,
    cache: Arc<BlockCache>,
    stats: Arc<TierStats>,
    rows: FxHashMap<String, usize>,
}

impl SpilledTable {
    pub fn new(
        segment: Arc<Segment>,
        segment_id: u64,
        cache: Arc<BlockCache>,
        stats: Arc<TierStats>,
    ) -> SpilledTable {
        let mut rows = FxHashMap::with_capacity_and_hasher(segment.len(), Default::default());
        for (row, key) in segment.keys().iter().enumerate() {
            rows.insert(key.clone(), row);
        }
        SpilledTable {
            segment,
            segment_id,
            cache,
            stats,
            rows,
        }
    }

    pub fn segment(&self) -> &Arc<Segment> {
        &self.segment
    }

    pub fn segment_id(&self) -> u64 {
        self.segment_id
    }
}

impl VectorPager for SpilledTable {
    fn dim(&self) -> usize {
        self.segment.dim()
    }

    fn len(&self) -> usize {
        self.segment.len()
    }

    fn keys(&self) -> &[String] {
        self.segment.keys()
    }

    fn row_of(&self, key: &str) -> Option<usize> {
        self.rows.get(key).copied()
    }

    fn fetch_row(&self, row: usize) -> Result<VectorBuf> {
        if row >= self.segment.len() {
            return Err(FsError::InvalidArgument(format!(
                "row {row} out of range ({} rows)",
                self.segment.len()
            )));
        }
        let (block, offset) = self.segment.locate_row(row);
        let key = BlockKey {
            segment: self.segment_id,
            block: block as u32,
        };
        let data = match self.cache.get(key) {
            Some(data) => data,
            None => {
                let t0 = Instant::now();
                let data = self.segment.read_block(block)?;
                self.stats.record_fault(t0.elapsed());
                let data = self.cache.insert(key, data);
                self.stats.note_resident();
                data
            }
        };
        Ok(VectorBuf::window(data, offset, self.segment.dim()))
    }

    fn spilled_bytes(&self) -> u64 {
        self.segment.payload_bytes()
    }

    fn resident_overhead_bytes(&self) -> u64 {
        // The row index and key strings stay resident; vectors do not.
        self.rows.keys().map(|k| k.len() as u64 + 48).sum::<u64>()
    }
}

struct DemoterState {
    // std primitives: the Condvar must pair with a std mutex guard.
    wake: std::sync::Mutex<bool>,
    cv: Condvar,
    shutdown: AtomicBool,
}

struct TierInner {
    db: EmbeddingDb,
    config: TierConfig,
    cache: Arc<BlockCache>,
    stats: Arc<TierStats>,
    catalog: Mutex<Option<Arc<IndexCatalog>>>,
    next_segment_id: AtomicU64,
    demoter: DemoterState,
    /// Serializes demotion passes: the background demoter and explicit
    /// `demote_now`/`demote_version` callers would otherwise race on the
    /// same version's temp segment file.
    pass_lock: Mutex<()>,
    last_error: Mutex<Option<String>>,
}

/// One scan of a store snapshot against the pin set.
struct Scan {
    table_bytes: u64,
    pinned_bytes: u64,
    spilled_bytes: u64,
    spilled_versions: u64,
    /// Unpinned resident versions, coldest first.
    candidates: Vec<Arc<EmbeddingVersion>>,
}

impl TierInner {
    fn signal(&self) {
        *self.demoter.wake.lock().unwrap() = true;
        self.demoter.cv.notify_one();
    }

    /// Latest version of every name plus anything a live index snapshot
    /// was built from. Pins are advisory (a rebuild racing the scan can
    /// fault its build reads through the cache) — correctness never
    /// depends on them, only residency.
    fn pin_set(&self, store: &fstore_embed::EmbeddingStore) -> FxHashSet<String> {
        let mut pinned: FxHashSet<String> = FxHashSet::default();
        for v in store.list() {
            pinned.insert(v.qualified_name());
        }
        if let Some(catalog) = self.catalog.lock().as_ref() {
            for snap in catalog.current().value.values() {
                pinned.insert(format!("{}@v{}", snap.table, snap.built_from_version));
            }
        }
        pinned
    }

    fn scan(&self, store: &fstore_embed::EmbeddingStore, pinned: &FxHashSet<String>) -> Scan {
        let mut out = Scan {
            table_bytes: 0,
            pinned_bytes: 0,
            spilled_bytes: 0,
            spilled_versions: 0,
            candidates: Vec::new(),
        };
        for v in store.iter_versions() {
            if v.table.is_spilled() {
                out.spilled_versions += 1;
                if let Some(pager) = v.table.pager() {
                    out.spilled_bytes += pager.spilled_bytes();
                }
            } else {
                let bytes = v.table.resident_vector_bytes();
                out.table_bytes += bytes;
                if pinned.contains(&v.qualified_name()) {
                    out.pinned_bytes += bytes;
                } else {
                    out.candidates.push(Arc::clone(v));
                }
            }
        }
        out.candidates
            .sort_by_key(|v| (v.created_at, v.version, v.name.clone()));
        out
    }

    /// One demotion pass: spill cold versions while over the high
    /// watermark, retarget the cache budget, refresh gauges. Returns the
    /// number of versions demoted.
    fn demote_pass(&self) -> Result<usize> {
        let _guard = self.pass_lock.lock();
        let budget = self.config.budget_bytes;
        let high = (budget as f64 * self.config.high_watermark) as u64;
        let low = (budget as f64 * self.config.low_watermark) as u64;

        let store = self.db.snapshot();
        let pinned = self.pin_set(&store);
        let scan = self.scan(&store, &pinned);

        let mut table_bytes = scan.table_bytes;
        let mut demoted = 0usize;
        if table_bytes + self.cache.resident_bytes() > high {
            for v in &scan.candidates {
                if table_bytes + self.cache.resident_bytes() <= low {
                    break;
                }
                let freed = v.table.resident_vector_bytes();
                self.demote_version_inner(v)?;
                table_bytes -= freed;
                demoted += 1;
            }
        }

        // Tables get first claim on the budget; the cache lives in what
        // is left (floored at one block so faults always have somewhere
        // to land).
        self.cache.set_budget(
            budget
                .saturating_sub(table_bytes)
                .max(self.config.block_bytes as u64),
        );

        // Gauges from a fresh snapshot (demotions republished the store).
        let store = self.db.snapshot();
        let pinned = self.pin_set(&store);
        let after = self.scan(&store, &pinned);
        let stats = &self.stats;
        stats
            .resident_table_bytes
            .store(after.table_bytes, Ordering::Relaxed);
        stats
            .pinned_bytes
            .store(after.pinned_bytes, Ordering::Relaxed);
        stats
            .spilled_bytes
            .store(after.spilled_bytes, Ordering::Relaxed);
        stats
            .spilled_versions
            .store(after.spilled_versions, Ordering::Relaxed);
        stats.note_resident();
        Ok(demoted)
    }

    /// Write `version` to a segment and swap the spilled table in.
    fn demote_version_inner(&self, version: &EmbeddingVersion) -> Result<()> {
        let file_name = format!(
            "{}-v{}.seg",
            version.name.replace(['/', '\\'], "_"),
            version.version
        );
        let path = self.config.dir.join(file_name);
        Segment::write(&path, version, self.config.block_bytes)?;
        let segment = Arc::new(Segment::open(&path)?);
        let id = self.next_segment_id.fetch_add(1, Ordering::Relaxed);
        let pager = Arc::new(SpilledTable::new(
            segment,
            id,
            Arc::clone(&self.cache),
            Arc::clone(&self.stats),
        ));
        let spilled = EmbeddingVersion {
            name: version.name.clone(),
            version: version.version,
            created_at: version.created_at,
            provenance: version.provenance.clone(),
            table: EmbeddingTable::from_pager(pager)?,
            consumers: version.consumers.clone(),
        };
        // The publish hook fires inside this write and only sets a flag,
        // so the extra self-wakeup is harmless (spilled versions are
        // skipped on the next pass).
        self.db.write(move |s| s.install_version(spilled))?;
        self.stats.demotions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// The attached tier: owns the demoter thread and the shared cache/stats.
pub struct TieredEmbeddings {
    inner: Arc<TierInner>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TieredEmbeddings {
    /// Attach tiering to `db`: creates the segment directory, registers a
    /// publish hook, and starts the background demoter.
    pub fn attach(db: &EmbeddingDb, config: TierConfig) -> Result<TieredEmbeddings> {
        if !(0.0..=1.0).contains(&config.low_watermark)
            || !(0.0..=1.0).contains(&config.high_watermark)
            || config.low_watermark > config.high_watermark
        {
            return Err(FsError::InvalidArgument(format!(
                "bad tier watermarks: low {} high {}",
                config.low_watermark, config.high_watermark
            )));
        }
        std::fs::create_dir_all(&config.dir)
            .map_err(|e| FsError::Storage(format!("create {}: {e}", config.dir.display())))?;
        let cache = Arc::new(BlockCache::new(config.budget_bytes, config.cache_shards));
        let stats = Arc::new(TierStats::new(Arc::clone(&cache), config.budget_bytes));
        let inner = Arc::new(TierInner {
            db: db.clone(),
            config,
            cache,
            stats,
            catalog: Mutex::new(None),
            next_segment_id: AtomicU64::new(1),
            demoter: DemoterState {
                wake: std::sync::Mutex::new(true), // run an initial pass
                cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
            },
            pass_lock: Mutex::new(()),
            last_error: Mutex::new(None),
        });

        // The hook holds a Weak so a dropped tier does not keep its state
        // alive through the db's hook list.
        let weak: Weak<TierInner> = Arc::downgrade(&inner);
        db.add_publish_hook(move |_| {
            if let Some(inner) = weak.upgrade() {
                inner.signal();
            }
        });

        let thread_inner = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name("fstore-tier-demoter".into())
            .spawn(move || loop {
                {
                    let mut wake = thread_inner.demoter.wake.lock().unwrap();
                    if !*wake {
                        wake = thread_inner
                            .demoter
                            .cv
                            .wait_timeout(wake, Duration::from_millis(250))
                            .unwrap()
                            .0;
                    }
                    *wake = false;
                }
                if thread_inner.demoter.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                if let Err(e) = thread_inner.demote_pass() {
                    *thread_inner.last_error.lock() = Some(e.to_string());
                }
            })
            .map_err(|e| FsError::Storage(format!("spawn demoter: {e}")))?;

        Ok(TieredEmbeddings {
            inner,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// Give the demoter the index catalog so index-referenced versions
    /// stay pinned in RAM.
    pub fn attach_catalog(&self, catalog: Arc<IndexCatalog>) {
        *self.inner.catalog.lock() = Some(catalog);
        self.inner.signal();
    }

    /// Wire the tier section into `metrics`: its snapshots gain a `tier`
    /// object polled from these stats.
    pub fn attach_metrics(&self, metrics: &fstore_serve::ServingMetrics) {
        let stats = Arc::clone(&self.inner.stats);
        metrics.set_tier_provider(move || stats.snapshot());
    }

    /// Run one synchronous demotion pass (tests and experiments; the
    /// background thread does this on every publication).
    pub fn demote_now(&self) -> Result<usize> {
        self.inner.demote_pass()
    }

    /// Demote one specific version regardless of watermarks. Refuses
    /// pinned versions (the latest of a name, or index-referenced).
    pub fn demote_version(&self, name: &str, version: u32) -> Result<()> {
        {
            let _guard = self.inner.pass_lock.lock();
            let store = self.inner.db.snapshot();
            let pinned = self.inner.pin_set(&store);
            let v = store.get(name, version)?;
            if v.table.is_spilled() {
                return Ok(());
            }
            if pinned.contains(&v.qualified_name()) {
                return Err(FsError::InvalidArgument(format!(
                    "{} is pinned (latest or index-referenced); refusing to demote",
                    v.qualified_name()
                )));
            }
            let v = Arc::new(v.clone());
            self.inner.demote_version_inner(&v)?;
        }
        self.inner.demote_pass().map(|_| ())
    }

    /// Shared tier stats (for metrics providers and assertions).
    pub fn stats(&self) -> Arc<TierStats> {
        Arc::clone(&self.inner.stats)
    }

    /// The shared block cache.
    pub fn cache(&self) -> Arc<BlockCache> {
        Arc::clone(&self.inner.cache)
    }

    /// The most recent background demotion error, if any.
    pub fn last_error(&self) -> Option<String> {
        self.inner.last_error.lock().clone()
    }

    /// Stop the demoter thread. Called by `Drop`; explicit for tests.
    pub fn shutdown(&self) {
        self.inner.demoter.shutdown.store(true, Ordering::Relaxed);
        self.inner.signal();
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for TieredEmbeddings {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for TieredEmbeddings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredEmbeddings")
            .field("budget", &self.inner.config.budget_bytes)
            .field("dir", &self.inner.config.dir)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::Timestamp;
    use fstore_embed::EmbeddingProvenance;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fstore_tier_pager_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn table(rows: usize, dim: usize, salt: f32) -> EmbeddingTable {
        let mut t = EmbeddingTable::new(dim).unwrap();
        for i in 0..rows {
            let v: Vec<f32> = (0..dim).map(|j| (i * dim + j) as f32 + salt).collect();
            t.insert(format!("k{i:04}"), v).unwrap();
        }
        t
    }

    fn publish(db: &EmbeddingDb, name: &str, rows: usize, dim: usize, at: i64) {
        db.publish(
            name,
            table(rows, dim, at as f32),
            EmbeddingProvenance::default(),
            Timestamp::millis(at),
        )
        .unwrap();
    }

    /// Demotion keeps the latest resident, spills old versions, and the
    /// spilled reads come back byte-identical.
    #[test]
    fn demotion_spills_cold_versions_and_reads_match() {
        let db = EmbeddingDb::new();
        // 4 versions × 64 rows × 16 dim × 4 B = 4 KiB each.
        for at in 1..=4 {
            publish(&db, "emb", 64, 16, at);
        }
        let mut config = TierConfig::new(tmp("demote"), 8 * 1024);
        config.block_bytes = 256;
        let tier = TieredEmbeddings::attach(&db, config).unwrap();
        // The background demoter may win the race; the pass itself is
        // idempotent, so assert on the outcome, not the return value.
        tier.demote_now().unwrap();
        let spilled = tier.stats().snapshot().spilled_versions;
        assert!(spilled >= 2, "spilled {spilled}");

        let store = db.snapshot();
        assert!(
            !store.latest("emb").unwrap().table.is_spilled(),
            "latest stays resident"
        );
        assert!(store.get("emb", 1).unwrap().table.is_spilled());

        // Spilled reads are byte-identical to what was published.
        let v1 = store.get("emb", 1).unwrap();
        let oracle = table(64, 16, 1.0);
        for key in oracle.keys() {
            let got = v1.table.fetch(key).unwrap().unwrap();
            assert_eq!(got.as_slice(), oracle.get(key).unwrap(), "key {key}");
            assert!(got.is_shared(), "spilled read is a cache window");
        }

        let snap = tier.stats().snapshot();
        assert!(snap.spilled_versions >= 2);
        assert!(snap.demotions >= 2);
        assert!(snap.faults > 0);
        assert!(snap.hit_rate.is_some());
        assert_eq!(tier.last_error(), None);
        tier.shutdown();
    }

    /// The publish hook wakes the background demoter; no manual pass.
    #[test]
    fn background_demoter_reacts_to_publications() {
        let db = EmbeddingDb::new();
        let mut config = TierConfig::new(tmp("bg"), 8 * 1024);
        config.block_bytes = 256;
        let tier = TieredEmbeddings::attach(&db, config).unwrap();
        for at in 1..=4 {
            publish(&db, "emb", 64, 16, at);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if tier.stats().snapshot().spilled_versions >= 2 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "demoter never spilled: {:?} err {:?}",
                tier.stats().snapshot(),
                tier.last_error()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        tier.shutdown();
    }

    /// Under budget nothing spills; `demote_version` still can, but
    /// refuses the pinned latest.
    #[test]
    fn under_budget_nothing_moves_and_pins_hold() {
        let db = EmbeddingDb::new();
        publish(&db, "emb", 16, 8, 1);
        publish(&db, "emb", 16, 8, 2);
        let tier = TieredEmbeddings::attach(&db, TierConfig::new(tmp("pin"), 1 << 20)).unwrap();
        assert_eq!(tier.demote_now().unwrap(), 0);
        assert!(!db.snapshot().get("emb", 1).unwrap().table.is_spilled());

        assert!(tier.demote_version("emb", 2).is_err(), "latest is pinned");
        tier.demote_version("emb", 1).unwrap();
        assert!(db.snapshot().get("emb", 1).unwrap().table.is_spilled());
        // Idempotent on an already-spilled version.
        tier.demote_version("emb", 1).unwrap();
        let snap = tier.stats().snapshot();
        assert_eq!(snap.spilled_versions, 1);
        assert!(snap.spilled_bytes > 0);
        tier.shutdown();
    }

    /// Resident bytes stay bounded by the budget while a cold working set
    /// 4× the budget is scanned.
    #[test]
    fn resident_bytes_stay_bounded_under_cold_scans() {
        let db = EmbeddingDb::new();
        // 8 versions × 8 KiB = 64 KiB working set, 16 KiB budget.
        for at in 1..=8 {
            publish(&db, "emb", 128, 16, at);
        }
        let mut config = TierConfig::new(tmp("bound"), 16 * 1024);
        config.block_bytes = 1024;
        let tier = TieredEmbeddings::attach(&db, config).unwrap();
        tier.demote_now().unwrap();

        let store = db.snapshot();
        for round in 0..3 {
            for version in 1..=7u32 {
                let v = store.get("emb", version).unwrap();
                for key in v.table.keys() {
                    let got = v.table.fetch(key).unwrap().unwrap();
                    assert_eq!(got.len(), 16, "round {round}");
                }
            }
        }
        let snap = tier.stats().snapshot();
        assert!(
            snap.peak_resident_bytes <= snap.budget_bytes,
            "peak {} budget {}",
            snap.peak_resident_bytes,
            snap.budget_bytes
        );
        assert!(snap.spilled_bytes >= 4 * snap.budget_bytes - 8 * 1024);
        assert!(snap.fault_p99_ms.is_some());
        tier.shutdown();
    }
}
