//! Opportunistic request batching.
//!
//! When a worker claims a job it also drains whatever else is already
//! queued (up to a cap) and coalesces single-entity `GetFeatures` lookups
//! that share a `(group, feature-list)` key into one
//! `FeatureServer::serve_batch` call — one pass over the online store's
//! shard locks instead of N. `SearchNearest` requests coalesce the same
//! way on `(table, k, options)`: the worker resolves the index snapshot
//! `Arc` once and runs the whole group as one multi-query pass, so a swap
//! cannot land between members of a batch. Under light load the drain
//! comes back empty and requests run singly with no added latency; no
//! timers are involved.

use crate::protocol::{Request, Response, SearchOptions};
use crossbeam::channel::{Receiver, Sender};
use std::collections::BTreeMap;
use std::time::Instant;

/// One admitted request plus the channel its response travels back on.
pub struct Job {
    pub request: Request,
    pub reply: Sender<Response>,
    /// When admission accepted the job; latency is measured from here so
    /// queue wait shows up in the percentiles.
    pub accepted_at: Instant,
    /// The client's deadline for this job, if it sent a budget
    /// (`Request::WithDeadline`). A worker that dequeues the job after
    /// this instant sheds it with `DeadlineExceeded` instead of running
    /// it — the caller has already given up.
    pub deadline: Option<Instant>,
}

/// A coalesced group of single-entity lookups: same group, same features.
pub struct FeatureBatch {
    pub group: String,
    pub features: Vec<String>,
    /// The member jobs; every request is `GetFeatures` for this key.
    pub jobs: Vec<Job>,
}

/// A coalesced group of vector searches: same table, same k, same options.
/// Every member resolves one index snapshot and runs as one multi-query
/// pass against it.
pub struct SearchBatch {
    pub table: String,
    pub k: u32,
    pub options: SearchOptions,
    /// The member jobs; every request is `SearchNearest` on this table.
    pub jobs: Vec<Job>,
}

/// The worker's execution plan for one drain.
pub struct Plan {
    /// Coalesced `GetFeatures` groups of two or more.
    pub batches: Vec<FeatureBatch>,
    /// Coalesced `SearchNearest` groups of two or more.
    pub searches: Vec<SearchBatch>,
    /// Everything else, executed one by one.
    pub singles: Vec<Job>,
}

/// Claim up to `max - 1` additional queued jobs without blocking.
pub fn drain(rx: &Receiver<Job>, first: Job, max: usize) -> Vec<Job> {
    let mut jobs = vec![first];
    while jobs.len() < max {
        match rx.try_recv() {
            Ok(job) => jobs.push(job),
            Err(_) => break,
        }
    }
    jobs
}

/// Partition drained jobs into coalesced feature batches and singles.
/// Order within each output bucket follows arrival order.
pub fn plan(jobs: Vec<Job>) -> Plan {
    let mut by_key: BTreeMap<(String, Vec<String>), Vec<Job>> = BTreeMap::new();
    let mut by_search: BTreeMap<(String, u32, SearchOptions), Vec<Job>> = BTreeMap::new();
    let mut singles = Vec::new();
    for job in jobs {
        match &job.request {
            Request::GetFeatures {
                group, features, ..
            } => {
                by_key
                    .entry((group.clone(), features.clone()))
                    .or_default()
                    .push(job);
            }
            Request::SearchNearest {
                table, k, options, ..
            } => {
                by_search
                    .entry((table.clone(), *k, *options))
                    .or_default()
                    .push(job);
            }
            _ => singles.push(job),
        }
    }
    let mut batches = Vec::new();
    for ((group, features), jobs) in by_key {
        if jobs.len() >= 2 {
            batches.push(FeatureBatch {
                group,
                features,
                jobs,
            });
        } else {
            // A batch of one gains nothing; keep the single-request path.
            singles.extend(jobs);
        }
    }
    let mut searches = Vec::new();
    for ((table, k, options), jobs) in by_search {
        if jobs.len() >= 2 {
            searches.push(SearchBatch {
                table,
                k,
                options,
                jobs,
            });
        } else {
            singles.extend(jobs);
        }
    }
    Plan {
        batches,
        searches,
        singles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    fn job(request: Request) -> Job {
        // The receiver side is dropped; these tests only inspect requests.
        let (reply, _) = bounded(1);
        Job {
            request,
            reply,
            accepted_at: Instant::now(),
            deadline: None,
        }
    }

    fn get(group: &str, entity: &str, features: &[&str]) -> Request {
        Request::GetFeatures {
            group: group.into(),
            entity: entity.into(),
            features: features.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn coalesces_matching_lookups_and_keeps_mismatches_single() {
        let jobs = vec![
            job(get("user", "u1", &["a", "b"])),
            job(get("user", "u2", &["a", "b"])),
            job(get("user", "u3", &["a"])), // different feature list
            job(get("item", "i1", &["a", "b"])), // different group
            job(Request::Health),
        ];
        let plan = plan(jobs);
        assert_eq!(plan.batches.len(), 1);
        assert_eq!(plan.batches[0].group, "user");
        assert_eq!(plan.batches[0].features, vec!["a", "b"]);
        assert_eq!(plan.batches[0].jobs.len(), 2);
        assert_eq!(plan.singles.len(), 3);
    }

    fn search(table: &str, k: u32, options: SearchOptions) -> Request {
        Request::SearchNearest {
            table: table.into(),
            query: vec![0.0, 0.0],
            k,
            options,
        }
    }

    #[test]
    fn coalesces_searches_on_table_k_and_options() {
        let ef = SearchOptions {
            ef: 64,
            ..SearchOptions::default()
        };
        let jobs = vec![
            job(search("emb", 10, ef)),
            job(search("emb", 10, ef)),
            job(search("emb", 10, SearchOptions::default())), // different options
            job(search("emb", 5, ef)),                        // different k
            job(search("other", 10, ef)),                     // different table
            job(Request::SearchNearestByKey {
                table: "emb".into(),
                key: "a".into(),
                k: 10,
                options: ef,
            }), // by-key never coalesces
        ];
        let plan = plan(jobs);
        assert_eq!(plan.searches.len(), 1);
        assert_eq!(plan.searches[0].table, "emb");
        assert_eq!(plan.searches[0].k, 10);
        assert_eq!(plan.searches[0].options, ef);
        assert_eq!(plan.searches[0].jobs.len(), 2);
        assert_eq!(plan.singles.len(), 4);
        assert!(plan.batches.is_empty());
    }

    #[test]
    fn drain_takes_queued_jobs_up_to_cap() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            assert!(tx.send(job(get("user", &format!("u{i}"), &["a"]))).is_ok());
        }
        let first = job(Request::Health);
        let jobs = drain(&rx, first, 4);
        assert_eq!(jobs.len(), 4, "first + three drained");
        assert_eq!(rx.len(), 2, "two left queued");
    }
}
