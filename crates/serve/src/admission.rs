//! Admission control: a bounded queue in front of the worker pool.
//!
//! Load shedding happens at submission time — if the queue is full the
//! request is refused immediately with a distinct `Overloaded` wire error
//! rather than queuing without bound (tail latency) or blocking the
//! connection thread (head-of-line stalls). During shutdown the controller
//! flips to draining: new work is refused with `ShuttingDown` while
//! already-admitted jobs run to completion.

use crate::batch::Job;
use crate::metrics::ServingMetrics;
use crossbeam::channel::{Sender, TrySendError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Why a request was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitReject {
    /// The bounded queue is full; the request was shed.
    Overloaded,
    /// The server is draining toward shutdown.
    Draining,
}

/// The submission side of the worker queue. Cheap to clone; one per
/// connection thread.
#[derive(Clone)]
pub struct AdmissionController {
    tx: Sender<Job>,
    draining: Arc<AtomicBool>,
    metrics: Arc<ServingMetrics>,
}

impl AdmissionController {
    pub fn new(tx: Sender<Job>, draining: Arc<AtomicBool>, metrics: Arc<ServingMetrics>) -> Self {
        AdmissionController {
            tx,
            draining,
            metrics,
        }
    }

    /// Admit `job` or refuse it without blocking.
    pub fn submit(&self, job: Job) -> Result<(), AdmitReject> {
        if self.draining.load(Ordering::Acquire) {
            self.metrics.record_rejected_draining();
            return Err(AdmitReject::Draining);
        }
        match self.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                self.metrics.record_shed();
                Err(AdmitReject::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.metrics.record_rejected_draining();
                Err(AdmitReject::Draining)
            }
        }
    }

    /// Jobs currently admitted but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        self.tx.len()
    }

    /// The shared metrics sink (connection threads record frame-level
    /// refusals through it).
    pub fn metrics(&self) -> &ServingMetrics {
        &self.metrics
    }

    /// An owned handle to the metrics sink, for threads that outlive the
    /// borrow (per-connection writer threads).
    pub fn shared_metrics(&self) -> Arc<ServingMetrics> {
        Arc::clone(&self.metrics)
    }

    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;
    use std::time::Instant;

    fn job() -> (Job, crossbeam::channel::Receiver<crate::protocol::Response>) {
        let (reply_tx, reply_rx) = crossbeam::channel::bounded(1);
        (
            Job {
                request: Request::Health,
                reply: reply_tx,
                accepted_at: Instant::now(),
                deadline: None,
            },
            reply_rx,
        )
    }

    #[test]
    fn sheds_when_queue_is_full() {
        let (tx, _rx) = crossbeam::channel::bounded(1);
        let metrics = Arc::new(ServingMetrics::new());
        let ctl = AdmissionController::new(tx, Arc::new(AtomicBool::new(false)), metrics.clone());
        assert_eq!(ctl.submit(job().0), Ok(()));
        assert_eq!(ctl.submit(job().0), Err(AdmitReject::Overloaded));
        assert_eq!(metrics.shed_count(), 1);
        assert_eq!(ctl.queue_depth(), 1);
    }

    #[test]
    fn refuses_new_work_while_draining() {
        let (tx, _rx) = crossbeam::channel::bounded(4);
        let draining = Arc::new(AtomicBool::new(true));
        let ctl = AdmissionController::new(tx, draining, Arc::new(ServingMetrics::new()));
        assert_eq!(ctl.submit(job().0), Err(AdmitReject::Draining));
    }
}
