//! A blocking client for the wire protocol. One request in flight per
//! connection; open several clients for concurrency (the load generator
//! in E14 does exactly that).

use crate::api::Transport;
use crate::protocol::{
    read_frame, write_frame, ErrorCode, Request, Response, WireDelta, WireError, WireHit,
};
use crate::repl::ReplLogState;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket deadlines for a [`FeatureClient`] connection. The defaults are
/// deliberately generous — they exist to turn a dead or wedged peer into
/// a typed error instead of an unbounded wait, not to enforce latency
/// SLOs (that is what [`Request::WithDeadline`] budgets are for).
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect bound; `None` falls back to the OS default (which can
    /// be minutes).
    pub connect_timeout: Option<Duration>,
    /// Bound on waiting for a response to arrive.
    pub read_timeout: Option<Duration>,
    /// Bound on pushing a request onto the socket.
    pub write_timeout: Option<Duration>,
    /// When set, every request is wrapped in a
    /// [`Request::WithDeadline`] envelope with this budget, letting the
    /// server shed it once the caller must have given up.
    pub deadline_budget: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            deadline_budget: None,
        }
    }
}

/// One embedding vector read over the wire, carrying the table version it
/// was served from — without the version a client cannot tell whether two
/// reads straddled a republish (the paper's §4 cross-version dot-product
/// hazard).
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingRead {
    pub vector: Vec<f32>,
    pub dim: usize,
    /// The embedding-table version that answered the read.
    pub version: u32,
    /// The embedding store's publication epoch at serve time; version and
    /// vector were resolved from that single snapshot, so an epoch that
    /// never decreases across reads proves the server's snapshot swaps are
    /// monotone.
    pub epoch: u64,
}

/// A nearest-neighbour answer, stamped with the snapshot identity that
/// produced it (see [`Response::Neighbors`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbors {
    /// The embedding-table version the index snapshot was built from.
    pub table_version: u32,
    /// The snapshot's swap generation (the catalog's publication epoch);
    /// a jump between calls means an index rebuild landed in between.
    pub index_generation: u64,
    /// Hits ascending by squared-L2 distance.
    pub hits: Vec<WireHit>,
}

/// One `ReplDeltas` exchange: the leader's epoch at answer time, whether
/// the requested range had already been evicted (`lagged`), and the
/// deltas themselves (empty when lagged — re-bootstrap instead).
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaBatch {
    pub leader_epoch: u64,
    pub lagged: bool,
    pub deltas: Vec<WireDelta>,
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The peer sent bytes that do not decode.
    Wire(WireError),
    /// The server refused or failed the request.
    Server {
        code: ErrorCode,
        message: String,
    },
    /// The server closed the connection mid-exchange.
    ConnectionClosed,
    /// The server answered with a different response type than the
    /// request calls for.
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::ConnectionClosed => write!(f, "connection closed by server"),
            ClientError::UnexpectedResponse(expected) => {
                write!(f, "unexpected response type, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server-side error code, if this failure carries one.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// Whether this failure is a connect/read/write timeout (a deadline
    /// fired, as opposed to a refusal or a protocol violation).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ClientError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            )
        )
    }
}

/// A blocking connection to a feature server.
///
/// The typed request surface (`get_features`, `search_nearest`, …) comes
/// from the [`StoreApi`](crate::StoreApi) trait, shared with every other
/// client in the crate; bring it into scope to use those methods.
pub struct FeatureClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    deadline_budget: Option<Duration>,
}

impl FeatureClient {
    /// Connect with the default [`ClientConfig`] — bounded connect, read,
    /// and write, no per-request deadline budget.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connect with explicit socket deadlines and (optionally) a
    /// per-request deadline budget. Prefer
    /// [`ClientBuilder`](crate::ClientBuilder), which validates the config
    /// and picks the right client shape.
    #[doc(hidden)]
    pub fn connect_with(addr: impl ToSocketAddrs, config: &ClientConfig) -> std::io::Result<Self> {
        let writer = match config.connect_timeout {
            Some(bound) => {
                // connect_timeout wants a resolved address; try each one
                // and keep the last error for the caller.
                let mut last_err = None;
                let mut connected = None;
                for addr in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&addr, bound) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                connected.ok_or_else(|| {
                    last_err.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            "address resolved to no endpoints",
                        )
                    })
                })?
            }
            None => TcpStream::connect(addr)?,
        };
        writer.set_nodelay(true)?;
        writer.set_read_timeout(config.read_timeout)?;
        writer.set_write_timeout(config.write_timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(FeatureClient {
            writer,
            reader,
            deadline_budget: config.deadline_budget,
        })
    }

    /// Change the per-request deadline budget on a live connection.
    pub fn set_deadline_budget(&mut self, budget: Option<Duration>) {
        self.deadline_budget = budget;
    }

    /// Send one request and wait for its response. A configured deadline
    /// budget wraps the request in a [`Request::WithDeadline`] envelope
    /// (unless the caller already wrapped it).
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let wrapped;
        let request = match self.deadline_budget {
            Some(budget) if !matches!(request, Request::WithDeadline { .. }) => {
                wrapped = Request::WithDeadline {
                    budget_ms: u32::try_from(budget.as_millis()).unwrap_or(u32::MAX),
                    inner: Box::new(request.clone()),
                };
                &wrapped
            }
            _ => request,
        };
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or(ClientError::ConnectionClosed)?;
        Response::decode(&payload).map_err(ClientError::Wire)
    }

    /// Liveness probe; returns `(queue_depth, draining)`.
    pub fn health(&mut self) -> Result<(u32, bool), ClientError> {
        match self.call(&Request::Health)? {
            Response::Health {
                queue_depth,
                draining,
            } => Ok((queue_depth, draining)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse("Health")),
        }
    }

    /// Subscribe to a replication leader: its log state, for deciding
    /// between delta catch-up and a full-snapshot bootstrap.
    pub fn repl_state(&mut self) -> Result<ReplLogState, ClientError> {
        match self.call(&Request::ReplSubscribe)? {
            Response::ReplState {
                leader_epoch,
                oldest_retained,
                retention,
            } => Ok(ReplLogState {
                leader_epoch,
                oldest_retained,
                retention,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse("ReplState")),
        }
    }

    /// A full leader snapshot as `(repl_epoch, payload)`; every delta with
    /// `seq <= repl_epoch` is already folded into the payload.
    pub fn repl_snapshot(&mut self) -> Result<(u64, Vec<u8>), ClientError> {
        match self.call(&Request::ReplSnapshot)? {
            Response::ReplSnapshot {
                repl_epoch,
                payload,
            } => Ok((repl_epoch, payload)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse("ReplSnapshot")),
        }
    }

    /// The deltas published after `from_epoch`.
    pub fn repl_deltas(&mut self, from_epoch: u64) -> Result<DeltaBatch, ClientError> {
        match self.call(&Request::ReplDeltas { from_epoch })? {
            Response::ReplDeltas {
                leader_epoch,
                lagged,
                deltas,
            } => Ok(DeltaBatch {
                leader_epoch,
                lagged,
                deltas,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse("ReplDeltas")),
        }
    }
}

impl Transport for FeatureClient {
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        FeatureClient::call(self, request)
    }
}
