//! A blocking client for the wire protocol.
//!
//! [`FeatureClient::call`] keeps one request in flight;
//! [`FeatureClient::call_many`] pipelines a whole slice of requests on the
//! same socket — every frame is written before the first response is
//! read, and responses come back in request order (the server guarantees
//! in-order responses per connection, see DESIGN §2.16). Both paths reuse
//! one encode buffer and one [`FrameReader`], so a warmed-up client does
//! zero per-request payload allocations.

use crate::api::Transport;
use crate::codec::{write_frame_vectored, FrameEvent, FrameReader, OwnedFrameEvent, MAX_FRAME_LEN};
use crate::protocol::{ErrorCode, Request, Response, WireDelta, WireError, WireHit};
use crate::repl::ReplLogState;
use bytes::{BufMut, Bytes, BytesMut};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket deadlines and frame bounds for a [`FeatureClient`] connection.
/// The timeout defaults are deliberately generous — they exist to turn a
/// dead or wedged peer into a typed error instead of an unbounded wait,
/// not to enforce latency SLOs (that is what [`Request::WithDeadline`]
/// budgets are for).
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect bound; `None` falls back to the OS default (which can
    /// be minutes).
    pub connect_timeout: Option<Duration>,
    /// Bound on waiting for a response to arrive.
    pub read_timeout: Option<Duration>,
    /// Bound on pushing a request onto the socket.
    pub write_timeout: Option<Duration>,
    /// When set, every request is wrapped in a
    /// [`Request::WithDeadline`] envelope with this budget, letting the
    /// server shed it once the caller must have given up.
    pub deadline_budget: Option<Duration>,
    /// Ceiling on a response frame's declared length; a peer declaring
    /// more is refused before any payload is allocated or read. Clamped
    /// by the protocol-wide [`MAX_FRAME_LEN`].
    pub max_response_frame: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            deadline_budget: None,
            max_response_frame: MAX_FRAME_LEN,
        }
    }
}

/// One embedding vector read over the wire, carrying the table version it
/// was served from — without the version a client cannot tell whether two
/// reads straddled a republish (the paper's §4 cross-version dot-product
/// hazard).
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingRead {
    pub vector: Vec<f32>,
    pub dim: usize,
    /// The embedding-table version that answered the read.
    pub version: u32,
    /// The embedding store's publication epoch at serve time; version and
    /// vector were resolved from that single snapshot, so an epoch that
    /// never decreases across reads proves the server's snapshot swaps are
    /// monotone.
    pub epoch: u64,
}

/// A nearest-neighbour answer, stamped with the snapshot identity that
/// produced it (see [`Response::Neighbors`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbors {
    /// The embedding-table version the index snapshot was built from.
    pub table_version: u32,
    /// The snapshot's swap generation (the catalog's publication epoch);
    /// a jump between calls means an index rebuild landed in between.
    pub index_generation: u64,
    /// Hits ascending by squared-L2 distance.
    pub hits: Vec<WireHit>,
}

/// One `ReplDeltas` exchange: the leader's epoch at answer time, whether
/// the requested range had already been evicted (`lagged`), and the
/// deltas themselves (empty when lagged — re-bootstrap instead).
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaBatch {
    pub leader_epoch: u64,
    pub lagged: bool,
    pub deltas: Vec<WireDelta>,
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The peer sent bytes that do not decode.
    Wire(WireError),
    /// The server refused or failed the request.
    Server {
        code: ErrorCode,
        message: String,
    },
    /// The server closed the connection mid-exchange.
    ConnectionClosed,
    /// The server answered with a different response type than the
    /// request calls for.
    UnexpectedResponse(&'static str),
    /// A write (or leadership admin request) was refused because the
    /// target is not the leader at the request's term. Carries the
    /// refusing node's current term so a router can refresh its map and
    /// re-route with the right term.
    NotLeader {
        /// The refusing node's leader term at the time of refusal.
        current_term: u64,
    },
    /// A non-idempotent request failed in transit and was **not**
    /// blind-retried. `applied` says what the client can prove:
    /// `Some(false)` means the request provably never reached a server
    /// (e.g. the connect failed), `None` means the outcome is unknown —
    /// the request was dispatched and the failure arrived before a
    /// response, so the write may or may not have been applied.
    WriteFailed {
        /// `Some(false)` = provably not applied; `None` = unknown.
        applied: Option<bool>,
        /// The underlying transport failure.
        cause: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::ConnectionClosed => write!(f, "connection closed by server"),
            ClientError::UnexpectedResponse(expected) => {
                write!(f, "unexpected response type, expected {expected}")
            }
            ClientError::NotLeader { current_term } => {
                write!(f, "not the leader (current_term={current_term})")
            }
            ClientError::WriteFailed { applied, cause } => {
                let outcome = match applied {
                    Some(false) => "not applied",
                    Some(true) => "applied",
                    None => "outcome unknown",
                };
                write!(f, "write failed ({outcome}): {cause}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server-side error code, if this failure carries one.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            ClientError::NotLeader { .. } => Some(ErrorCode::NotLeader),
            ClientError::WriteFailed { cause, .. } => cause.code(),
            _ => None,
        }
    }

    /// Whether this failure is a connect/read/write timeout (a deadline
    /// fired, as opposed to a refusal or a protocol violation).
    pub fn is_timeout(&self) -> bool {
        match self {
            ClientError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ),
            ClientError::WriteFailed { cause, .. } => cause.is_timeout(),
            _ => false,
        }
    }
}

/// A blocking connection to a feature server.
///
/// The typed request surface (`get_features`, `search_nearest`, …) comes
/// from the [`StoreApi`](crate::StoreApi) trait, shared with every other
/// client in the crate; bring it into scope to use those methods.
pub struct FeatureClient {
    stream: TcpStream,
    reader: FrameReader,
    /// Reusable encode buffer: grows to the connection's working request
    /// size once, then serves every call without allocating.
    buf: BytesMut,
    deadline_budget: Option<Duration>,
    read_timeout: Option<Duration>,
    max_response_frame: usize,
}

impl FeatureClient {
    /// Connect with the default [`ClientConfig`] — bounded connect, read,
    /// and write, no per-request deadline budget.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connect with explicit socket deadlines and (optionally) a
    /// per-request deadline budget. Prefer
    /// [`ClientBuilder`](crate::ClientBuilder), which validates the config
    /// and picks the right client shape.
    #[doc(hidden)]
    pub fn connect_with(addr: impl ToSocketAddrs, config: &ClientConfig) -> std::io::Result<Self> {
        let stream = match config.connect_timeout {
            Some(bound) => {
                // connect_timeout wants a resolved address; try each one
                // and keep the last error for the caller.
                let mut last_err = None;
                let mut connected = None;
                for addr in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&addr, bound) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                connected.ok_or_else(|| {
                    last_err.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            "address resolved to no endpoints",
                        )
                    })
                })?
            }
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_write_timeout(config.write_timeout)?;
        Ok(FeatureClient {
            stream,
            reader: FrameReader::new(),
            buf: BytesMut::new(),
            deadline_budget: config.deadline_budget,
            read_timeout: config.read_timeout,
            max_response_frame: config.max_response_frame.min(MAX_FRAME_LEN),
        })
    }

    /// Change the per-request deadline budget on a live connection.
    pub fn set_deadline_budget(&mut self, budget: Option<Duration>) {
        self.deadline_budget = budget;
    }

    /// Append `request` to the encode buffer, wrapping it in a
    /// [`Request::WithDeadline`] envelope when a budget is configured
    /// (and the caller did not wrap it already). Writes the envelope tag
    /// inline so no request clone is ever made.
    fn encode_wrapped(&mut self, request: &Request) {
        match self.deadline_budget {
            Some(budget) if !matches!(request, Request::WithDeadline { .. }) => {
                self.buf.put_u8(9);
                self.buf
                    .put_u32(u32::try_from(budget.as_millis()).unwrap_or(u32::MAX));
                request.encode_into(&mut self.buf);
            }
            _ => request.encode_into(&mut self.buf),
        }
    }

    /// Read and decode one response frame off the connection's reader.
    fn read_response(&mut self) -> Result<Response, ClientError> {
        match self.reader.read_frame(
            &self.stream,
            self.max_response_frame,
            self.read_timeout,
            self.read_timeout,
        )? {
            FrameEvent::Frame(payload) => Response::decode(payload).map_err(ClientError::Wire),
            FrameEvent::Eof => Err(ClientError::ConnectionClosed),
            FrameEvent::TooLarge { declared } => {
                Err(ClientError::Wire(WireError::Oversized(declared)))
            }
            FrameEvent::TimedOut => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "response frame stalled mid-read",
            ))),
        }
    }

    /// Send one request and wait for its response. A configured deadline
    /// budget wraps the request in a [`Request::WithDeadline`] envelope
    /// (unless the caller already wrapped it).
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.buf.clear();
        self.encode_wrapped(request);
        let mut w = &self.stream;
        write_frame_vectored(&mut w, self.buf.as_slice())?;
        self.read_response()
    }

    /// Pipeline `requests` on this connection: write every frame before
    /// reading the first response, then read the responses back in
    /// request order. One syscall writes the whole burst in the common
    /// case. Any transport failure poisons the connection (responses for
    /// in-flight requests are lost) — callers that retry must treat the
    /// batch as a unit, the way [`RetryingClient`] does.
    ///
    /// [`RetryingClient`]: crate::retry::RetryingClient
    pub fn call_many(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        self.buf.clear();
        for request in requests {
            // Reserve the length prefix, encode, backfill — the payload
            // is serialized exactly once, straight into the wire buffer.
            let at = self.buf.len();
            self.buf.put_u32(0);
            self.encode_wrapped(request);
            let len = self.buf.len() - at - 4;
            assert!(len <= MAX_FRAME_LEN, "request frame exceeds MAX_FRAME_LEN");
            self.buf.as_mut_slice()[at..at + 4].copy_from_slice(&(len as u32).to_be_bytes());
        }
        let mut w = &self.stream;
        w.write_all(self.buf.as_slice())?;
        w.flush()?;
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            responses.push(self.read_response()?);
        }
        Ok(responses)
    }

    /// Liveness probe; returns `(queue_depth, draining)`.
    pub fn health(&mut self) -> Result<(u32, bool), ClientError> {
        match self.call(&Request::Health)? {
            Response::Health {
                queue_depth,
                draining,
            } => Ok((queue_depth, draining)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse("Health")),
        }
    }

    /// Subscribe to a replication leader: its log state, for deciding
    /// between delta catch-up and a full-snapshot bootstrap.
    pub fn repl_state(&mut self) -> Result<ReplLogState, ClientError> {
        match self.call(&Request::ReplSubscribe)? {
            Response::ReplState {
                leader_epoch,
                oldest_retained,
                retention,
            } => Ok(ReplLogState {
                leader_epoch,
                oldest_retained,
                retention,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse("ReplState")),
        }
    }

    /// A full leader snapshot as `(repl_epoch, payload)`; every delta with
    /// `seq <= repl_epoch` is already folded into the payload.
    ///
    /// The frame is read into one owned buffer and the payload sliced out
    /// of it zero-copy ([`Response::decode_frame`]) — a multi-megabyte
    /// bootstrap costs one allocation, not frame-plus-payload copies.
    pub fn repl_snapshot(&mut self) -> Result<(u64, Bytes), ClientError> {
        self.buf.clear();
        self.encode_wrapped(&Request::ReplSnapshot);
        let mut w = &self.stream;
        write_frame_vectored(&mut w, self.buf.as_slice())?;
        let frame = match self.reader.read_frame_owned(
            &self.stream,
            self.max_response_frame,
            self.read_timeout,
            self.read_timeout,
        )? {
            OwnedFrameEvent::Frame(frame) => frame,
            OwnedFrameEvent::Eof => return Err(ClientError::ConnectionClosed),
            OwnedFrameEvent::TooLarge { declared } => {
                return Err(ClientError::Wire(WireError::Oversized(declared)))
            }
            OwnedFrameEvent::TimedOut => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "snapshot frame stalled mid-read",
                )))
            }
        };
        match Response::decode_frame(&frame).map_err(ClientError::Wire)? {
            Response::ReplSnapshot {
                repl_epoch,
                payload,
            } => Ok((repl_epoch, payload)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse("ReplSnapshot")),
        }
    }

    /// The deltas published after `from_epoch`.
    pub fn repl_deltas(&mut self, from_epoch: u64) -> Result<DeltaBatch, ClientError> {
        match self.call(&Request::ReplDeltas { from_epoch })? {
            Response::ReplDeltas {
                leader_epoch,
                lagged,
                deltas,
            } => Ok(DeltaBatch {
                leader_epoch,
                lagged,
                deltas,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse("ReplDeltas")),
        }
    }

    /// One pipelined replication round: `ReplSubscribe` and
    /// `ReplDeltas { from_epoch }` go out in a single write and both
    /// responses come back in order on the same connection — the follower
    /// learns the leader's log state *and* picks up new deltas in one
    /// network round trip instead of two.
    pub fn repl_sync(
        &mut self,
        from_epoch: u64,
    ) -> Result<(ReplLogState, DeltaBatch), ClientError> {
        let responses =
            self.call_many(&[Request::ReplSubscribe, Request::ReplDeltas { from_epoch }])?;
        let mut responses = responses.into_iter();
        let state = match responses.next() {
            Some(Response::ReplState {
                leader_epoch,
                oldest_retained,
                retention,
            }) => ReplLogState {
                leader_epoch,
                oldest_retained,
                retention,
            },
            Some(Response::Error { code, message }) => {
                return Err(ClientError::Server { code, message })
            }
            _ => return Err(ClientError::UnexpectedResponse("ReplState")),
        };
        let batch = match responses.next() {
            Some(Response::ReplDeltas {
                leader_epoch,
                lagged,
                deltas,
            }) => DeltaBatch {
                leader_epoch,
                lagged,
                deltas,
            },
            Some(Response::Error { code, message }) => {
                return Err(ClientError::Server { code, message })
            }
            _ => return Err(ClientError::UnexpectedResponse("ReplDeltas")),
        };
        Ok((state, batch))
    }
}

impl Transport for FeatureClient {
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        FeatureClient::call(self, request)
    }

    fn call_many(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        FeatureClient::call_many(self, requests)
    }
}
