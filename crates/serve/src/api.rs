//! The unified client API: one trait covering the full read surface, one
//! builder constructing any client.
//!
//! Before this module, every client wrapper re-implemented the typed
//! request surface by hand — [`FeatureClient`] carried the
//! `get_features`/`search_nearest` stack, and anything layered on top
//! ([`RetryingClient`], [`FailoverClient`]) either copied it or forced
//! callers down to raw [`Request`] values. The split here is:
//!
//! * [`Transport`] — the one thing a concrete client must provide: send a
//!   [`Request`], produce a [`Response`]. Retry loops, circuit breakers,
//!   and the shard router all live behind this seam.
//! * [`StoreApi`] — the typed request surface (`get_features{,_batch}`,
//!   `get_embedding`, `search_nearest{,_by_key}`), blanket-implemented
//!   for every [`Transport`] via the shared response decoders, so the
//!   encode/decode logic exists exactly once.
//! * [`ClientBuilder`] — the one documented way to construct a client:
//!   endpoints → socket timeouts and deadline budget → retry policy →
//!   failover. Validation mirrors [`ServeConfig::builder`]: a
//!   configuration that would silently degenerate is refused instead of
//!   constructed.
//!
//! [`ServeConfig::builder`]: crate::server::ServeConfig::builder

use crate::client::{ClientConfig, ClientError, EmbeddingRead, FeatureClient, Neighbors};
use crate::failover::{BreakerConfig, FailoverClient};
use crate::protocol::{ErrorCode, Request, Response, SearchOptions, WireVector};
use crate::retry::{RetryPolicy, RetryingClient};
use fstore_common::{FsError, Value};
use std::time::Duration;

/// A server's acknowledgement of a write or leadership admin request.
/// An ack means the write is *durable*: the leader appended it (and its
/// commit record) to the WAL before answering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// The publication epoch (log sequence) the write landed at; `0` for
    /// admin acks (promote/demote), which publish nothing.
    pub epoch: u64,
    /// The leader term the acknowledging node held when it applied the
    /// request.
    pub term: u64,
}

/// The one operation a concrete client must implement: one request in,
/// one response out. Everything typed rides on top via [`StoreApi`]'s
/// blanket implementation.
pub trait Transport {
    /// Send one request and wait for its response.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError>;

    /// Send a slice of requests and collect their responses in request
    /// order. The default implementation is sequential (one round trip
    /// per request); transports that own a socket override it to
    /// pipeline — all frames written before the first response is read,
    /// as [`FeatureClient::call_many`] does. Any failure fails the whole
    /// batch: responses are positional, so a partial result would leave
    /// the caller unable to say which request each response answers.
    fn call_many(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        requests.iter().map(|r| self.call(r)).collect()
    }
}

/// The full typed request surface of a feature store endpoint — local
/// server, failover group, or sharded cluster behind a router. Implemented
/// for free by every [`Transport`].
pub trait StoreApi {
    /// One entity's feature vector.
    fn get_features(
        &mut self,
        group: &str,
        entity: &str,
        features: &[&str],
    ) -> Result<WireVector, ClientError>;

    /// Many entities, one group and feature list.
    fn get_features_batch(
        &mut self,
        group: &str,
        entities: &[&str],
        features: &[&str],
    ) -> Result<Vec<WireVector>, ClientError>;

    /// One embedding vector; `table` is `"name"` (latest) or `"name@vN"`.
    fn get_embedding(&mut self, table: &str, key: &str) -> Result<EmbeddingRead, ClientError>;

    /// `k` nearest stored entities to an explicit query vector.
    fn search_nearest(
        &mut self,
        table: &str,
        query: &[f32],
        k: u32,
        options: SearchOptions,
    ) -> Result<Neighbors, ClientError>;

    /// `k` nearest stored entities to the vector stored under `key` (the
    /// key itself is excluded from the hits).
    fn search_nearest_by_key(
        &mut self,
        table: &str,
        key: &str,
        k: u32,
        options: SearchOptions,
    ) -> Result<Neighbors, ClientError>;

    /// Write one entity's feature values through the leader at `term`.
    /// Non-idempotent: layered clients never blind-retry it (see
    /// [`ClientError::WriteFailed`]), and a node whose leader term does
    /// not match answers [`ClientError::NotLeader`] instead of applying.
    fn put_online(
        &mut self,
        group: &str,
        entity: &str,
        values: &[(&str, Value)],
        term: u64,
    ) -> Result<WriteAck, ClientError>;

    /// Tell the node serving `shard` to assume leadership at `term`
    /// (control-plane admin; a sitting leader treats an equal-or-newer
    /// term as a no-op re-affirmation).
    fn promote(&mut self, shard: u32, term: u64) -> Result<WriteAck, ClientError>;

    /// Fence the node serving `shard`: drop its write authority and fast-
    /// forward it to `term` so writes stamped with any older term are
    /// refused (control-plane admin, sent to demoted ex-leaders).
    fn demote(&mut self, shard: u32, term: u64) -> Result<WriteAck, ClientError>;

    /// Send a burst of raw requests, responses in request order. On a
    /// pipelining transport every request is in flight at once; callers
    /// decode each response with the `expect_*` helpers in this module.
    fn send_many(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError>;
}

impl<T: Transport + ?Sized> StoreApi for T {
    fn get_features(
        &mut self,
        group: &str,
        entity: &str,
        features: &[&str],
    ) -> Result<WireVector, ClientError> {
        let request = Request::GetFeatures {
            group: group.to_string(),
            entity: entity.to_string(),
            features: features.iter().map(|s| s.to_string()).collect(),
        };
        expect_features(self.call(&request)?)
    }

    fn get_features_batch(
        &mut self,
        group: &str,
        entities: &[&str],
        features: &[&str],
    ) -> Result<Vec<WireVector>, ClientError> {
        let request = Request::GetFeaturesBatch {
            group: group.to_string(),
            entities: entities.iter().map(|s| s.to_string()).collect(),
            features: features.iter().map(|s| s.to_string()).collect(),
        };
        expect_features_batch(self.call(&request)?)
    }

    fn get_embedding(&mut self, table: &str, key: &str) -> Result<EmbeddingRead, ClientError> {
        let request = Request::GetEmbedding {
            table: table.to_string(),
            key: key.to_string(),
        };
        expect_embedding(self.call(&request)?)
    }

    fn search_nearest(
        &mut self,
        table: &str,
        query: &[f32],
        k: u32,
        options: SearchOptions,
    ) -> Result<Neighbors, ClientError> {
        let request = Request::SearchNearest {
            table: table.to_string(),
            query: query.to_vec(),
            k,
            options,
        };
        expect_neighbors(self.call(&request)?)
    }

    fn search_nearest_by_key(
        &mut self,
        table: &str,
        key: &str,
        k: u32,
        options: SearchOptions,
    ) -> Result<Neighbors, ClientError> {
        let request = Request::SearchNearestByKey {
            table: table.to_string(),
            key: key.to_string(),
            k,
            options,
        };
        expect_neighbors(self.call(&request)?)
    }

    fn put_online(
        &mut self,
        group: &str,
        entity: &str,
        values: &[(&str, Value)],
        term: u64,
    ) -> Result<WriteAck, ClientError> {
        let request = Request::PutOnline {
            group: group.to_string(),
            entity: entity.to_string(),
            values: values
                .iter()
                .map(|(f, v)| (f.to_string(), v.clone()))
                .collect(),
            term,
        };
        expect_put_ack(self.call(&request)?)
    }

    fn promote(&mut self, shard: u32, term: u64) -> Result<WriteAck, ClientError> {
        expect_put_ack(self.call(&Request::Promote { shard, term })?)
    }

    fn demote(&mut self, shard: u32, term: u64) -> Result<WriteAck, ClientError> {
        expect_put_ack(self.call(&Request::Demote { shard, term })?)
    }

    fn send_many(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        self.call_many(requests)
    }
}

// ------------------------------------------------------- response decoders
//
// The single home of "this request type expects that response type" — every
// StoreApi implementor (blanket or hand-rolled, like the shard router's
// scatter-gather paths) decodes through these.

/// Decode a [`Response::Features`] answer.
pub fn expect_features(response: Response) -> Result<WireVector, ClientError> {
    match response {
        Response::Features(v) => Ok(v),
        Response::Error { code, message } => Err(ClientError::Server { code, message }),
        _ => Err(ClientError::UnexpectedResponse("Features")),
    }
}

/// Decode a [`Response::FeaturesBatch`] answer.
pub fn expect_features_batch(response: Response) -> Result<Vec<WireVector>, ClientError> {
    match response {
        Response::FeaturesBatch(vs) => Ok(vs),
        Response::Error { code, message } => Err(ClientError::Server { code, message }),
        _ => Err(ClientError::UnexpectedResponse("FeaturesBatch")),
    }
}

/// Decode a [`Response::Embedding`] answer.
pub fn expect_embedding(response: Response) -> Result<EmbeddingRead, ClientError> {
    match response {
        Response::Embedding {
            dim,
            version,
            epoch,
            vector,
        } => Ok(EmbeddingRead {
            vector: vector.into_vec(),
            dim: dim as usize,
            version,
            epoch,
        }),
        Response::Error { code, message } => Err(ClientError::Server { code, message }),
        _ => Err(ClientError::UnexpectedResponse("Embedding")),
    }
}

/// Decode a [`Response::PutAck`] answer. A `NotLeader` error frame is
/// lifted into the typed [`ClientError::NotLeader`] — the server encodes
/// its current term as the error message (`current_term=N`), and this is
/// the one place that parses it back out.
pub fn expect_put_ack(response: Response) -> Result<WriteAck, ClientError> {
    match response {
        Response::PutAck { epoch, term } => Ok(WriteAck { epoch, term }),
        Response::Error {
            code: ErrorCode::NotLeader,
            message,
        } => {
            let current_term = message
                .strip_prefix("current_term=")
                .and_then(|t| t.parse().ok())
                .unwrap_or(0);
            Err(ClientError::NotLeader { current_term })
        }
        Response::Error { code, message } => Err(ClientError::Server { code, message }),
        _ => Err(ClientError::UnexpectedResponse("PutAck")),
    }
}

/// Decode a [`Response::Neighbors`] answer.
pub fn expect_neighbors(response: Response) -> Result<Neighbors, ClientError> {
    match response {
        Response::Neighbors {
            table_version,
            index_generation,
            hits,
        } => Ok(Neighbors {
            table_version,
            index_generation,
            hits,
        }),
        Response::Error { code, message } => Err(ClientError::Server { code, message }),
        _ => Err(ClientError::UnexpectedResponse("Neighbors")),
    }
}

// ------------------------------------------------------------ the builder

/// Any client the builder can produce, behind one [`Transport`] (and
/// therefore one [`StoreApi`]). The variant is decided by what the builder
/// was given, not by the caller naming a concrete type.
pub enum AnyClient {
    /// One endpoint, no retries: a bare connection.
    Direct(FeatureClient),
    /// One endpoint with reconnect-and-retry.
    Retrying(RetryingClient),
    /// An ordered endpoint list behind per-endpoint circuit breakers.
    Failover(FailoverClient),
}

impl Transport for AnyClient {
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self {
            AnyClient::Direct(c) => c.call(request),
            AnyClient::Retrying(c) => c.call(request),
            AnyClient::Failover(c) => c.call(request),
        }
    }

    fn call_many(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        match self {
            AnyClient::Direct(c) => c.call_many(requests),
            AnyClient::Retrying(c) => c.call_many(requests),
            AnyClient::Failover(c) => c.call_many(requests),
        }
    }
}

impl std::fmt::Debug for AnyClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnyClient::Direct(_) => f.write_str("AnyClient::Direct"),
            AnyClient::Retrying(_) => f.write_str("AnyClient::Retrying"),
            AnyClient::Failover(_) => f.write_str("AnyClient::Failover"),
        }
    }
}

/// The one documented way to construct a client — endpoints, then socket
/// timeouts and deadline budget, then retry policy, then failover tuning.
///
/// What [`ClientBuilder::build`] produces follows from what was given:
///
/// * one endpoint, no retry policy → [`AnyClient::Direct`]
/// * one endpoint + [`retry`](Self::retry) → [`AnyClient::Retrying`]
/// * several endpoints (leader first) → [`AnyClient::Failover`], using the
///   retry policy between endpoint rounds and the breaker config per
///   endpoint
///
/// ```no_run
/// use fstore_serve::{ClientBuilder, RetryPolicy, StoreApi};
/// use std::time::Duration;
///
/// let mut client = ClientBuilder::new()
///     .endpoint("127.0.0.1:7600")
///     .endpoint("127.0.0.1:7601") // follower: two endpoints → failover
///     .deadline_budget(Duration::from_millis(250))
///     .retry(RetryPolicy::default())
///     .build()
///     .unwrap();
/// let v = client.get_features("user", "u1", &["score"]).unwrap();
/// # let _ = v;
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClientBuilder {
    endpoints: Vec<String>,
    config: ClientConfig,
    retry: Option<RetryPolicy>,
    breakers: Option<BreakerConfig>,
}

impl ClientBuilder {
    pub fn new() -> Self {
        ClientBuilder::default()
    }

    /// Append one endpoint. Order is preference order: leader first,
    /// followers after.
    pub fn endpoint(mut self, addr: impl Into<String>) -> Self {
        self.endpoints.push(addr.into());
        self
    }

    /// Append several endpoints in preference order.
    pub fn endpoints<I, S>(mut self, addrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.endpoints.extend(addrs.into_iter().map(Into::into));
        self
    }

    /// TCP connect bound (`None` falls back to the OS default).
    pub fn connect_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.config.connect_timeout = timeout;
        self
    }

    /// Bound on waiting for a response to arrive.
    pub fn read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.config.read_timeout = timeout;
        self
    }

    /// Bound on pushing a request onto the socket.
    pub fn write_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.config.write_timeout = timeout;
        self
    }

    /// Wrap every request in a server-side deadline budget (see
    /// [`Request::WithDeadline`]).
    pub fn deadline_budget(mut self, budget: Duration) -> Self {
        self.config.deadline_budget = Some(budget);
        self
    }

    /// Ceiling on a response frame's declared length (clamped by the
    /// protocol-wide [`MAX_FRAME_LEN`](crate::MAX_FRAME_LEN)); a peer
    /// declaring more gets a typed refusal before any payload is read.
    pub fn max_response_frame(mut self, bound: usize) -> Self {
        self.config.max_response_frame = bound;
        self
    }

    /// Retry transient failures of idempotent requests per `policy`.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Per-endpoint circuit-breaker tuning for the failover path (implies
    /// nothing with a single endpoint and no retry policy).
    pub fn breakers(mut self, config: BreakerConfig) -> Self {
        self.breakers = Some(config);
        self
    }

    /// The socket-deadline config the builder has accumulated so far —
    /// for call sites that still need a raw [`ClientConfig`].
    pub fn client_config(&self) -> ClientConfig {
        self.config.clone()
    }

    /// Validate and construct. Refused configurations (mirroring
    /// [`ServeConfig::builder`](crate::ServeConfig::builder)'s stance on
    /// degenerate configs):
    ///
    /// * no endpoints — nothing to connect to;
    /// * a zero deadline budget — every request would be shed at dequeue;
    /// * a retry policy with zero attempts, a multiplier below 1, jitter
    ///   outside `[0, 1]`, or an inverted backoff envelope
    ///   (`base > max`) — the backoff curve would be nonsense;
    /// * a breaker config with a zero failure threshold — the breaker
    ///   could never close.
    pub fn build(self) -> fstore_common::Result<AnyClient> {
        if self.endpoints.is_empty() {
            return Err(FsError::InvalidArgument(
                "client builder needs at least one endpoint".into(),
            ));
        }
        if self.config.deadline_budget == Some(Duration::ZERO) {
            return Err(FsError::InvalidArgument(
                "deadline budget must be positive".into(),
            ));
        }
        if self.config.max_response_frame == 0 {
            return Err(FsError::InvalidArgument(
                "max response frame must be positive".into(),
            ));
        }
        if let Some(policy) = &self.retry {
            if policy.max_attempts == 0 {
                return Err(FsError::InvalidArgument(
                    "retry policy needs at least one attempt".into(),
                ));
            }
            if policy.multiplier < 1.0 {
                return Err(FsError::InvalidArgument(
                    "retry multiplier must be >= 1".into(),
                ));
            }
            if !(0.0..=1.0).contains(&policy.jitter) {
                return Err(FsError::InvalidArgument(
                    "retry jitter must be in [0, 1]".into(),
                ));
            }
            if policy.base_backoff > policy.max_backoff {
                return Err(FsError::InvalidArgument(
                    "retry base backoff exceeds its max backoff".into(),
                ));
            }
        }
        if let Some(breakers) = &self.breakers {
            if breakers.failure_threshold == 0 {
                return Err(FsError::InvalidArgument(
                    "breaker failure threshold must be positive".into(),
                ));
            }
        }

        let multi = self.endpoints.len() > 1;
        if multi || self.breakers.is_some() {
            let addrs: Vec<&str> = self.endpoints.iter().map(String::as_str).collect();
            return Ok(AnyClient::Failover(FailoverClient::connect(
                &addrs,
                self.config,
                self.retry.unwrap_or_default(),
                self.breakers.unwrap_or_default(),
            )));
        }
        let addr = self.endpoints.into_iter().next().expect("checked above");
        match self.retry {
            Some(policy) => Ok(AnyClient::Retrying(RetryingClient::new(
                addr,
                self.config,
                policy,
            ))),
            None => Ok(AnyClient::Direct(
                FeatureClient::connect_with(&addr, &self.config)
                    .map_err(|e| FsError::Storage(format!("connect {addr}: {e}")))?,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrorCode;

    #[test]
    fn builder_refuses_degenerate_configs() {
        assert!(ClientBuilder::new().build().is_err(), "no endpoints");
        assert!(ClientBuilder::new()
            .endpoint("127.0.0.1:1")
            .deadline_budget(Duration::ZERO)
            .build()
            .is_err());
        assert!(ClientBuilder::new()
            .endpoint("127.0.0.1:1")
            .max_response_frame(0)
            .build()
            .is_err());
        assert!(ClientBuilder::new()
            .endpoint("127.0.0.1:1")
            .retry(RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            })
            .build()
            .is_err());
        assert!(ClientBuilder::new()
            .endpoint("127.0.0.1:1")
            .retry(RetryPolicy {
                multiplier: 0.5,
                ..RetryPolicy::default()
            })
            .build()
            .is_err());
        assert!(ClientBuilder::new()
            .endpoint("127.0.0.1:1")
            .retry(RetryPolicy {
                jitter: 1.5,
                ..RetryPolicy::default()
            })
            .build()
            .is_err());
        assert!(ClientBuilder::new()
            .endpoint("127.0.0.1:1")
            .retry(RetryPolicy {
                base_backoff: Duration::from_secs(2),
                max_backoff: Duration::from_secs(1),
                ..RetryPolicy::default()
            })
            .build()
            .is_err());
        assert!(ClientBuilder::new()
            .endpoint("127.0.0.1:1")
            .breakers(BreakerConfig {
                failure_threshold: 0,
                ..BreakerConfig::default()
            })
            .build()
            .is_err());
    }

    #[test]
    fn builder_picks_the_client_shape_from_its_inputs() {
        // Lazy-connecting shapes build without a live server.
        let retrying = ClientBuilder::new()
            .endpoint("127.0.0.1:1")
            .retry(RetryPolicy::default())
            .build()
            .unwrap();
        assert!(matches!(retrying, AnyClient::Retrying(_)));
        let failover = ClientBuilder::new()
            .endpoints(["127.0.0.1:1", "127.0.0.1:2"])
            .build()
            .unwrap();
        assert!(matches!(failover, AnyClient::Failover(_)));
        // A single endpoint with breaker tuning still gets the failover
        // machinery (that is where breakers live).
        let single_breaker = ClientBuilder::new()
            .endpoint("127.0.0.1:1")
            .breakers(BreakerConfig::default())
            .build()
            .unwrap();
        assert!(matches!(single_breaker, AnyClient::Failover(_)));
    }

    #[test]
    fn put_ack_decoder_lifts_not_leader_into_typed_error() {
        let ack = expect_put_ack(Response::PutAck { epoch: 7, term: 3 }).unwrap();
        assert_eq!(ack, WriteAck { epoch: 7, term: 3 });
        let err =
            expect_put_ack(Response::error(ErrorCode::NotLeader, "current_term=5")).unwrap_err();
        assert!(matches!(err, ClientError::NotLeader { current_term: 5 }));
        assert_eq!(err.code(), Some(ErrorCode::NotLeader));
        // A malformed message still yields the typed refusal, with an
        // unknown (zero) term rather than a decode failure.
        let err = expect_put_ack(Response::error(ErrorCode::NotLeader, "???")).unwrap_err();
        assert!(matches!(err, ClientError::NotLeader { current_term: 0 }));
        // Other server errors pass through untyped.
        let err = expect_put_ack(Response::error(ErrorCode::Internal, "wal")).unwrap_err();
        assert_eq!(err.code(), Some(ErrorCode::Internal));
    }

    #[test]
    fn decoders_map_server_errors_and_type_mismatches() {
        let err = expect_features(Response::error(ErrorCode::NotFound, "missing")).unwrap_err();
        assert_eq!(err.code(), Some(ErrorCode::NotFound));
        assert!(matches!(
            expect_features(Response::Health {
                queue_depth: 0,
                draining: false
            }),
            Err(ClientError::UnexpectedResponse("Features"))
        ));
        assert!(matches!(
            expect_neighbors(Response::Features(WireVector {
                entity: String::new(),
                features: vec![],
                values: vec![],
                ages_ms: vec![],
                stale: vec![],
                epoch: 0,
            })),
            Err(ClientError::UnexpectedResponse("Neighbors"))
        ));
    }
}
