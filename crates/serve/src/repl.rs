//! The serving layer's view of replication (DESIGN.md §2.12).
//!
//! The serve crate answers the three `Repl*` wire requests but does not
//! know how leader state is captured or serialized — that lives in
//! `fstore-repl`, which sits *above* this crate in the dependency graph.
//! [`ReplProvider`] is the seam: a leader-side implementation hands the
//! server (1) publication-log state for `ReplSubscribe`, (2) a full
//! serialized snapshot for follower bootstrap, and (3) the epoch-tagged
//! deltas since a given epoch for catch-up. The server stays a dumb pipe:
//! it frames whatever the provider returns and never interprets payloads.

use crate::protocol::MAX_FRAME_LEN;
use fstore_common::{DeltaQuery, FsError};

/// Leader publication-log state, as reported to a subscribing follower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplLogState {
    /// The leader's current replication epoch (its last published delta).
    pub leader_epoch: u64,
    /// The oldest delta epoch still retained; a follower whose applied
    /// epoch has fallen below `oldest_retained - 1` cannot catch up from
    /// deltas and must re-bootstrap from a full snapshot.
    pub oldest_retained: u64,
    /// The publication log's retention capacity, in deltas.
    pub retention: u32,
}

/// What a leader must expose for followers to replicate from it.
///
/// Implementations live outside this crate (see `fstore-repl`); the
/// server only requires that calls are safe under concurrent publishes —
/// in particular [`full_snapshot`](Self::full_snapshot) must capture a
/// state consistent with the epoch it reports even while writers keep
/// publishing.
pub trait ReplProvider: Send + Sync {
    /// Current log state (answers `ReplSubscribe`).
    fn log_state(&self) -> ReplLogState;

    /// Serialize the full leader state; returns `(repl_epoch, payload)`
    /// where every delta with `seq <= repl_epoch` is already reflected in
    /// the payload (answers `ReplSnapshot`).
    fn full_snapshot(&self) -> Result<(u64, Vec<u8>), FsError>;

    /// The deltas a follower at `from_epoch` still needs; returns the
    /// leader epoch alongside so the follower can measure its lag
    /// (answers `ReplDeltas`).
    fn deltas_since(&self, from_epoch: u64) -> (u64, DeltaQuery);
}

/// Guard a snapshot payload against the wire's frame ceiling. The frame
/// adds the response tag + epoch + length prefix on top of the payload;
/// 64 bytes of headroom covers all of it.
pub(crate) fn check_snapshot_len(payload: &[u8]) -> Result<(), FsError> {
    if payload.len() + 64 > MAX_FRAME_LEN {
        return Err(FsError::InvalidArgument(format!(
            "replication snapshot ({} bytes) exceeds the wire frame limit ({MAX_FRAME_LEN} bytes)",
            payload.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_len_guard_trips_at_the_frame_ceiling() {
        assert!(check_snapshot_len(&[0u8; 1024]).is_ok());
        let oversized = vec![0u8; MAX_FRAME_LEN];
        assert!(check_snapshot_len(&oversized).is_err());
    }
}
