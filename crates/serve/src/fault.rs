//! Deterministic fault injection for chaos tests and experiments
//! (compiled only with the `testing` feature).
//!
//! [`FaultyProxy`] is a TCP proxy that sits between a client and a real
//! server and injects the failure modes the resilience stack claims to
//! tolerate: refused connections, mid-frame disconnects, byte-level
//! stalls and delays, and garbage frames. Faults are toggled live through
//! the shared [`Faults`] handle, so a test can run clean traffic, flip a
//! fault on mid-stream, and watch the client recover.
//!
//! Determinism: every probabilistic decision draws from a
//! [`Xoshiro256`] stream forked from the proxy seed and the connection
//! ordinal, never from ambient entropy — the same seed and schedule
//! reproduce the same fault pattern bit-for-bit.
//!
//! Corruption is frame-aware on the server→client leg: the proxy parses
//! the 4-byte length prefix and replaces the payload with random bytes of
//! the same length. The framing stays intact while the payload becomes
//! noise, which a correct client must surface as a typed decode error —
//! never a hang, a panic, or (within ~2⁻⁶⁴ odds) a silently wrong answer.

use fstore_common::rng::{Rng, SplitMix64, Xoshiro256};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Live-tunable fault switches, shared between the proxy's pump threads
/// and the test driving them. All methods are safe to call while traffic
/// flows.
#[derive(Debug, Default)]
pub struct Faults {
    /// Accept-then-slam-shut: new connections are closed immediately.
    refuse_connections: AtomicBool,
    /// Stop forwarding bytes (in both directions) while set; traffic
    /// resumes where it left off when cleared.
    stall: AtomicBool,
    /// Probability (per mille) that a server→client frame's payload is
    /// replaced with random bytes.
    corrupt_permille: AtomicU32,
    /// Probability (per mille) that a server→client frame is cut short:
    /// the proxy forwards half the frame and drops the connection.
    drop_midframe_permille: AtomicU32,
    /// Added latency before each forwarded chunk, in microseconds.
    chunk_delay_us: AtomicU64,

    // Observability for assertions.
    connections_refused: AtomicU64,
    connections_opened: AtomicU64,
    frames_corrupted: AtomicU64,
    frames_cut: AtomicU64,
}

impl Faults {
    pub fn set_refuse_connections(&self, on: bool) {
        self.refuse_connections.store(on, Ordering::Release);
    }

    pub fn set_stall(&self, on: bool) {
        self.stall.store(on, Ordering::Release);
    }

    /// `p` is clamped to `[0, 1]` and stored with per-mille resolution.
    pub fn set_corrupt_probability(&self, p: f64) {
        let pm = (p.clamp(0.0, 1.0) * 1000.0).round() as u32;
        self.corrupt_permille.store(pm, Ordering::Release);
    }

    /// `p` is clamped to `[0, 1]` and stored with per-mille resolution.
    pub fn set_drop_midframe_probability(&self, p: f64) {
        let pm = (p.clamp(0.0, 1.0) * 1000.0).round() as u32;
        self.drop_midframe_permille.store(pm, Ordering::Release);
    }

    pub fn set_chunk_delay(&self, delay: Duration) {
        self.chunk_delay_us.store(
            delay.as_micros().min(u64::MAX as u128) as u64,
            Ordering::Release,
        );
    }

    /// Clear every fault at once (traffic becomes transparent again).
    pub fn clear(&self) {
        self.set_refuse_connections(false);
        self.set_stall(false);
        self.corrupt_permille.store(0, Ordering::Release);
        self.drop_midframe_permille.store(0, Ordering::Release);
        self.chunk_delay_us.store(0, Ordering::Release);
    }

    pub fn connections_refused(&self) -> u64 {
        self.connections_refused.load(Ordering::Acquire)
    }

    pub fn connections_opened(&self) -> u64 {
        self.connections_opened.load(Ordering::Acquire)
    }

    pub fn frames_corrupted(&self) -> u64 {
        self.frames_corrupted.load(Ordering::Acquire)
    }

    pub fn frames_cut(&self) -> u64 {
        self.frames_cut.load(Ordering::Acquire)
    }

    fn stalled(&self) -> bool {
        self.stall.load(Ordering::Acquire)
    }

    /// Block while the stall switch is on (polling; pump threads only).
    fn wait_out_stall(&self) {
        while self.stalled() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn apply_chunk_delay(&self) {
        let us = self.chunk_delay_us.load(Ordering::Acquire);
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
    }
}

/// A fault-injecting TCP proxy in front of `upstream`.
pub struct FaultyProxy {
    addr: SocketAddr,
    faults: Arc<Faults>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl FaultyProxy {
    /// Listen on an ephemeral local port and forward to `upstream`.
    /// `seed` drives every probabilistic fault decision.
    pub fn start(upstream: SocketAddr, seed: u64) -> std::io::Result<FaultyProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let faults = Arc::new(Faults::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let faults = faults.clone();
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name("faulty-proxy-accept".into())
                .spawn(move || {
                    let mut seeder = SplitMix64::new(seed);
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(client) = conn else { continue };
                        let conn_seed = seeder.next_u64();
                        if faults.refuse_connections.load(Ordering::Acquire) {
                            faults.connections_refused.fetch_add(1, Ordering::AcqRel);
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        }
                        let Ok(server) = TcpStream::connect(upstream) else {
                            // Upstream is down; the client sees a hang-up,
                            // exactly as if the proxy were not there.
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        };
                        faults.connections_opened.fetch_add(1, Ordering::AcqRel);
                        spawn_pumps(client, server, faults.clone(), conn_seed);
                    }
                })
                .expect("spawn proxy acceptor")
        };
        Ok(FaultyProxy {
            addr,
            faults,
            shutdown,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients should connect to instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live fault switches.
    pub fn faults(&self) -> Arc<Faults> {
        self.faults.clone()
    }

    /// Stop accepting; existing pump threads die with their sockets.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultyProxy {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop();
        }
    }
}

/// Start the two pump threads for one proxied connection. The
/// client→server leg is a transparent byte pump (plus stall/delay); the
/// server→client leg is frame-aware so corruption and mid-frame cuts
/// line up with protocol frames.
fn spawn_pumps(client: TcpStream, server: TcpStream, faults: Arc<Faults>, seed: u64) {
    let mut base = Xoshiro256::seeded(seed);
    let rng = base.fork(1);
    // The proxy must not add latency of its own: without nodelay, Nagle
    // against delayed ACKs costs tens of milliseconds per hop.
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    // Short read timeouts so the pumps notice stall toggles and peer
    // closes promptly instead of blocking forever.
    let _ = client.set_read_timeout(Some(Duration::from_millis(20)));
    let _ = server.set_read_timeout(Some(Duration::from_millis(20)));
    {
        let (client, server, faults) = (
            client.try_clone().expect("clone client"),
            server.try_clone().expect("clone server"),
            faults.clone(),
        );
        std::thread::Builder::new()
            .name("faulty-proxy-up".into())
            .spawn(move || pump_raw(client, server, &faults))
            .expect("spawn up pump");
    }
    std::thread::Builder::new()
        .name("faulty-proxy-down".into())
        .spawn(move || pump_frames(server, client, &faults, rng))
        .expect("spawn down pump");
}

/// Forward raw bytes until either side goes away.
fn pump_raw(mut from: TcpStream, mut to: TcpStream, faults: &Faults) {
    let mut buf = [0u8; 4096];
    loop {
        faults.wait_out_stall();
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                faults.apply_chunk_delay();
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// Forward protocol frames, optionally corrupting payloads or cutting the
/// connection halfway through a frame.
fn pump_frames(mut from: TcpStream, mut to: TcpStream, faults: &Faults, mut rng: Xoshiro256) {
    loop {
        faults.wait_out_stall();
        let mut prefix = [0u8; 4];
        if !read_exact_patient(&mut from, &mut prefix, faults) {
            break;
        }
        let len = u32::from_be_bytes(prefix) as usize;
        let mut payload = vec![0u8; len];
        if !read_exact_patient(&mut from, &mut payload, faults) {
            break;
        }
        faults.apply_chunk_delay();

        let cut_pm = faults.drop_midframe_permille.load(Ordering::Acquire) as u64;
        if cut_pm > 0 && rng.below(1000) < cut_pm {
            // Forward the prefix and half the payload, then vanish: the
            // client is left holding a truncated frame.
            faults.frames_cut.fetch_add(1, Ordering::AcqRel);
            let _ = to.write_all(&prefix);
            let _ = to.write_all(&payload[..len / 2]);
            break;
        }

        let corrupt_pm = faults.corrupt_permille.load(Ordering::Acquire) as u64;
        if corrupt_pm > 0 && rng.below(1000) < corrupt_pm {
            faults.frames_corrupted.fetch_add(1, Ordering::AcqRel);
            for byte in payload.iter_mut() {
                *byte = rng.next_u64() as u8;
            }
        }

        if to.write_all(&prefix).is_err() || to.write_all(&payload).is_err() {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// `read_exact` that rides out read-timeout ticks (checking stalls in
/// between) and reports `false` on EOF or a real error.
fn read_exact_patient(from: &mut TcpStream, buf: &mut [u8], faults: &Faults) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        faults.wait_out_stall();
        match from.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permille_settings_round_and_clamp() {
        let faults = Faults::default();
        faults.set_corrupt_probability(0.5);
        assert_eq!(faults.corrupt_permille.load(Ordering::Acquire), 500);
        faults.set_corrupt_probability(7.0);
        assert_eq!(faults.corrupt_permille.load(Ordering::Acquire), 1000);
        faults.set_drop_midframe_probability(-1.0);
        assert_eq!(faults.drop_midframe_permille.load(Ordering::Acquire), 0);
        faults.clear();
        assert_eq!(faults.corrupt_permille.load(Ordering::Acquire), 0);
    }
}
