//! The shared byte-level codec under the wire protocol: one set of
//! primitives for everything that encodes or decodes length-prefixed
//! binary structures — [`Request`]/[`Response`] payloads (via
//! [`Reader`]), CRC-guarded durable blocks (`fstore_durable` re-exports
//! the [`crc_block`] helpers), pooled frame buffers ([`FramePool`]),
//! vectored frame writes ([`write_frame_vectored`]), and the
//! per-connection [`FrameReader`] that carries partial frames across
//! socket reads without a per-frame allocation.
//!
//! [`Request`]: crate::protocol::Request
//! [`Response`]: crate::protocol::Response
//! [`crc_block`]: self::crc_block

use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use std::io::{IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Hard ceiling on a frame payload (16 MiB).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Decode-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Payload ended before the structure was complete.
    Truncated,
    /// Structure complete but bytes were left over.
    TrailingBytes(usize),
    /// Unknown discriminant for the named type.
    BadTag { ty: &'static str, tag: u8 },
    /// A declared length exceeds the frame ceiling.
    Oversized(usize),
    /// String field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated mid-structure"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after structure"),
            WireError::BadTag { ty, tag } => write!(f, "unknown {ty} tag {tag}"),
            WireError::Oversized(n) => write!(f, "declared length {n} exceeds frame ceiling"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------- decoding

/// A bounds-checked decode cursor over one frame payload. All integers
/// are big-endian; every failure is a typed [`WireError`], never a panic.
///
/// Constructed [`shared`](Reader::shared) over a [`Bytes`] frame, blob
/// fields ([`take_blob`](Reader::take_blob)) come back as zero-copy
/// slices of that frame; constructed [`new`](Reader::new) over a plain
/// slice they are copied out once.
pub struct Reader<'a> {
    full: &'a [u8],
    pos: usize,
    shared: Option<&'a Bytes>,
}

impl<'a> Reader<'a> {
    /// A cursor over a borrowed payload slice.
    pub fn new(payload: &'a [u8]) -> Reader<'a> {
        Reader {
            full: payload,
            pos: 0,
            shared: None,
        }
    }

    /// A cursor over a shared frame: blob fields alias the frame's
    /// storage instead of copying.
    pub fn shared(frame: &'a Bytes) -> Reader<'a> {
        Reader {
            full: frame.as_slice(),
            pos: 0,
            shared: Some(frame),
        }
    }

    pub fn remaining(&self) -> usize {
        self.full.len() - self.pos
    }

    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.need(n)?;
        let at = self.pos;
        self.pos += n;
        Ok(&self.full[at..at + n])
    }

    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn take_i64(&mut self) -> Result<i64, WireError> {
        Ok(self.take_u64()? as i64)
    }

    pub fn take_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.take_u32()?))
    }

    pub fn take_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// A `u32` length that must still be plausible within one frame.
    pub fn take_len(&mut self) -> Result<usize, WireError> {
        let n = self.take_u32()? as usize;
        if n > MAX_FRAME_LEN {
            return Err(WireError::Oversized(n));
        }
        Ok(n)
    }

    pub fn take_str(&mut self) -> Result<String, WireError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError::BadUtf8)
    }

    pub fn take_str_seq(&mut self) -> Result<Vec<String>, WireError> {
        let n = self.take_len()?;
        let mut items = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            items.push(self.take_str()?);
        }
        Ok(items)
    }

    pub fn take_f32_seq(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.take_len()?;
        let mut items = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            items.push(self.take_f32()?);
        }
        Ok(items)
    }

    /// A `u32`-length-prefixed opaque byte blob. Zero-copy (a refcount
    /// bump) when the cursor was built over a shared frame.
    pub fn take_blob(&mut self) -> Result<Bytes, WireError> {
        let len = self.take_len()?;
        self.need(len)?;
        let at = self.pos;
        self.pos += len;
        Ok(match self.shared {
            Some(frame) => frame.slice(at..at + len),
            None => Bytes::copy_from_slice(&self.full[at..at + len]),
        })
    }

    /// The payload must be consumed exactly; trailing bytes are an error
    /// so a round-trip is byte-identical.
    pub fn finish(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }
}

// ---------------------------------------------------------------- encoding

/// `u32` length prefix, then the UTF-8 bytes.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// `u32` count, then each string via [`put_str`].
pub fn put_str_seq(buf: &mut BytesMut, items: &[String]) {
    buf.put_u32(items.len() as u32);
    for s in items {
        put_str(buf, s);
    }
}

// ----------------------------------------------------------------- framing

/// Write `payload` as one frame — `u32` big-endian length, then bytes —
/// with a single vectored syscall in the common case, so the payload is
/// never copied into a contiguous header+body staging buffer.
pub fn write_frame_vectored<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "frame exceeds MAX_FRAME_LEN"
    );
    let header = (payload.len() as u32).to_be_bytes();
    let total = header.len() + payload.len();
    let mut written = 0usize;
    while written < total {
        let result = if written < header.len() {
            let bufs = [IoSlice::new(&header[written..]), IoSlice::new(payload)];
            w.write_vectored(&bufs)
        } else {
            w.write(&payload[written - header.len()..])
        };
        match result {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket refused frame bytes",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    w.flush()
}

/// Outcome of a [`FrameReader::read_frame`] call. The `Frame` payload
/// borrows the reader's buffer — decode it before the next read.
#[derive(Debug)]
pub enum FrameEvent<'a> {
    /// A complete frame payload, valid until the next `read_frame`.
    Frame(&'a [u8]),
    /// Clean EOF at a frame boundary.
    Eof,
    /// The declared length exceeds the caller's ceiling; nothing past the
    /// prefix was consumed, so the caller can still write a typed refusal
    /// before closing.
    TooLarge { declared: usize },
    /// The peer started a frame but did not deliver the rest within the
    /// budget (slow-loris, stall, or mid-frame death by firewall).
    TimedOut,
}

/// Outcome of a [`FrameReader::read_frame_owned`] call: like
/// [`FrameEvent`] but the payload owns its storage, so large frames can
/// be decoded zero-copy via [`Reader::shared`] and kept past the next
/// read without ballooning the connection's reusable buffer.
#[derive(Debug)]
pub enum OwnedFrameEvent {
    Frame(Bytes),
    Eof,
    TooLarge { declared: usize },
    TimedOut,
}

enum Fill {
    Got,
    Eof,
    TimedOut,
}

/// A per-connection frame reader: one reusable buffer that carries
/// partial frames across socket reads. At steady state a connection
/// performs **zero** per-frame allocations on the read path — the buffer
/// grows to the connection's working frame size once and is reused; each
/// growth is counted so metrics can prove it.
///
/// Timeout semantics match the two-phase contract the server has always
/// had: waiting for the *first byte* of a frame honours `idle_timeout`
/// (`None` blocks forever — an idle keep-alive connection is not a
/// fault), but once a frame has started the rest must arrive within
/// `frame_timeout`, enforced as a hard deadline via `set_read_timeout`.
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
    end: usize,
    allocs: u64,
    bytes_rx: u64,
}

impl FrameReader {
    pub fn new() -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            start: 0,
            end: 0,
            allocs: 0,
            bytes_rx: 0,
        }
    }

    /// Unparsed bytes currently buffered (already read off the socket).
    pub fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Drain the count of buffer allocations/growths since the last call.
    pub fn take_allocs(&mut self) -> u64 {
        std::mem::take(&mut self.allocs)
    }

    /// Drain the count of bytes read off the socket since the last call.
    pub fn take_bytes_rx(&mut self) -> u64 {
        std::mem::take(&mut self.bytes_rx)
    }

    /// Make sure the buffer can hold `needed` bytes measured from
    /// `start`, compacting (one memmove per frame, amortized) before
    /// growing (counted).
    fn ensure_room(&mut self, needed: usize) {
        if self.buf.len() - self.start >= needed && self.end < self.buf.len() {
            return;
        }
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.buf.len() < needed || self.end == self.buf.len() {
            let target = needed.max(self.buf.len() * 2).max(4 * 1024);
            let before = self.buf.capacity();
            self.buf.resize(target, 0);
            if self.buf.capacity() > before {
                self.allocs += 1;
            }
        }
    }

    /// One socket read into spare room, bounded by `deadline`.
    fn fill(&mut self, socket: &TcpStream, deadline: Option<Instant>) -> std::io::Result<Fill> {
        match deadline {
            Some(d) => {
                let Some(remaining) = d.checked_duration_since(Instant::now()) else {
                    return Ok(Fill::TimedOut);
                };
                // set_read_timeout(Some(0)) is an error; clamp to 1 ms.
                socket.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            }
            None => socket.set_read_timeout(None)?,
        }
        loop {
            match (&mut (&*socket)).read(&mut self.buf[self.end..]) {
                Ok(0) => return Ok(Fill::Eof),
                Ok(n) => {
                    self.end += n;
                    self.bytes_rx += n as u64;
                    return Ok(Fill::Got);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(Fill::TimedOut)
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Block (up to `idle_timeout`) until at least one byte of the next
    /// frame is buffered. `Ok(Some(event))` short-circuits the caller.
    fn await_first_byte(
        &mut self,
        socket: &TcpStream,
        idle_timeout: Option<Duration>,
    ) -> std::io::Result<Option<Fill>> {
        if self.buffered() > 0 {
            return Ok(None);
        }
        self.start = 0;
        self.end = 0;
        self.ensure_room(4 * 1024);
        let deadline = idle_timeout.map(|t| Instant::now() + t);
        Ok(Some(self.fill(socket, deadline)?))
    }

    /// Read one frame. `socket` must be the same fd this reader always
    /// reads (its `SO_RCVTIMEO` is adjusted to enforce the deadlines).
    pub fn read_frame(
        &mut self,
        socket: &TcpStream,
        max_len: usize,
        idle_timeout: Option<Duration>,
        frame_timeout: Option<Duration>,
    ) -> std::io::Result<FrameEvent<'_>> {
        match self.await_first_byte(socket, idle_timeout)? {
            Some(Fill::Eof) => return Ok(FrameEvent::Eof),
            Some(Fill::TimedOut) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "timed out waiting for a frame",
                ))
            }
            Some(Fill::Got) | None => {}
        }
        let deadline = frame_timeout.map(|t| Instant::now() + t);
        let (at, len) = loop {
            if self.buffered() >= 4 {
                let h = &self.buf[self.start..self.start + 4];
                let len = u32::from_be_bytes(h.try_into().unwrap()) as usize;
                if len > max_len.min(MAX_FRAME_LEN) {
                    return Ok(FrameEvent::TooLarge { declared: len });
                }
                if self.buffered() >= 4 + len {
                    let at = self.start + 4;
                    self.start += 4 + len;
                    break (at, len);
                }
                self.ensure_room(4 + len);
            } else {
                self.ensure_room(4 * 1024);
            }
            match self.fill(socket, deadline)? {
                Fill::Got => {}
                Fill::Eof => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                }
                Fill::TimedOut => return Ok(FrameEvent::TimedOut),
            }
        };
        Ok(FrameEvent::Frame(&self.buf[at..at + len]))
    }

    /// Read one frame into owned storage: exactly one allocation sized to
    /// the payload, filled straight off the socket. For big transfers
    /// (snapshot bootstrap) this replaces frame-vec-plus-payload-copy
    /// with one buffer that blob fields then slice zero-copy.
    pub fn read_frame_owned(
        &mut self,
        socket: &TcpStream,
        max_len: usize,
        idle_timeout: Option<Duration>,
        frame_timeout: Option<Duration>,
    ) -> std::io::Result<OwnedFrameEvent> {
        match self.await_first_byte(socket, idle_timeout)? {
            Some(Fill::Eof) => return Ok(OwnedFrameEvent::Eof),
            Some(Fill::TimedOut) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "timed out waiting for a frame",
                ))
            }
            Some(Fill::Got) | None => {}
        }
        let deadline = frame_timeout.map(|t| Instant::now() + t);
        while self.buffered() < 4 {
            self.ensure_room(4 * 1024);
            match self.fill(socket, deadline)? {
                Fill::Got => {}
                Fill::Eof => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                }
                Fill::TimedOut => return Ok(OwnedFrameEvent::TimedOut),
            }
        }
        let h = &self.buf[self.start..self.start + 4];
        let len = u32::from_be_bytes(h.try_into().unwrap()) as usize;
        if len > max_len.min(MAX_FRAME_LEN) {
            return Ok(OwnedFrameEvent::TooLarge { declared: len });
        }
        self.start += 4;
        let mut payload = vec![0u8; len];
        self.allocs += 1;
        // Move whatever payload bytes are already buffered.
        let have = self.buffered().min(len);
        payload[..have].copy_from_slice(&self.buf[self.start..self.start + have]);
        self.start += have;
        // Read the rest straight into the owned buffer, deadline-bounded.
        let mut filled = have;
        while filled < len {
            match deadline {
                Some(d) => {
                    let Some(remaining) = d.checked_duration_since(Instant::now()) else {
                        return Ok(OwnedFrameEvent::TimedOut);
                    };
                    socket.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
                }
                None => socket.set_read_timeout(None)?,
            }
            match (&mut (&*socket)).read(&mut payload[filled..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                }
                Ok(n) => {
                    filled += n;
                    self.bytes_rx += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(OwnedFrameEvent::TimedOut)
                }
                Err(e) => return Err(e),
            }
        }
        Ok(OwnedFrameEvent::Frame(Bytes::from(payload)))
    }
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader::new()
    }
}

// ------------------------------------------------------------ frame pool

/// A free-list of reusable [`BytesMut`] encode buffers. A connection
/// writer takes a buffer, encodes a response into it, writes it out
/// vectored, and returns it — at steady state the pool absorbs every
/// per-response payload allocation.
///
/// Bounded two ways: at most `max_pooled` buffers are retained, and a
/// buffer that ballooned past `max_retained_capacity` (one huge snapshot
/// response) is dropped rather than pinned in memory forever.
#[derive(Debug)]
pub struct FramePool {
    free: Mutex<Vec<BytesMut>>,
    max_pooled: usize,
    max_retained_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FramePool {
    pub fn new(max_pooled: usize, max_retained_capacity: usize) -> FramePool {
        FramePool {
            free: Mutex::new(Vec::with_capacity(max_pooled.min(64))),
            max_pooled,
            max_retained_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cleared buffer, reused when the free list has one.
    pub fn get(&self) -> BytesMut {
        if let Some(buf) = self.free.lock().pop() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return buf;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        BytesMut::with_capacity(4 * 1024)
    }

    /// Return a buffer for reuse; oversize or surplus buffers are dropped.
    pub fn put(&self, mut buf: BytesMut) {
        if buf.capacity() > self.max_retained_capacity {
            return;
        }
        buf.clear();
        let mut free = self.free.lock();
        if free.len() < self.max_pooled {
            free.push(buf);
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl Default for FramePool {
    fn default() -> Self {
        // 256 buffers × 1 MiB retained ceiling: plenty for a busy server,
        // bounded at 256 MiB worst case (reached only if 256 writers all
        // pin megabyte responses simultaneously).
        FramePool::new(256, 1024 * 1024)
    }
}

// -------------------------------------------------------------- crc block

/// CRC-guarded binary blocks: the `magic | crc32 u32 LE | body` envelope
/// every durable artifact (snapshot cache, checkpoint blobs) shares.
pub mod crc_block {
    use fstore_common::crc32;

    /// Why a block failed to decode.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum BlockError {
        /// Too short for the envelope, or the magic did not match.
        BadMagic,
        /// Stored vs computed checksum.
        CrcMismatch { stored: u32, computed: u32 },
    }

    impl std::fmt::Display for BlockError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                BlockError::BadMagic => write!(f, "bad magic"),
                BlockError::CrcMismatch { stored, computed } => write!(
                    f,
                    "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                ),
            }
        }
    }

    impl std::error::Error for BlockError {}

    /// Wrap `body` in the envelope: `magic | crc32(body) LE | body`.
    pub fn encode(magic: &[u8; 4], body: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(magic);
        out.extend_from_slice(&crc32(body).to_le_bytes());
        out.extend_from_slice(body);
        out
    }

    /// Verify the envelope and return the body slice.
    pub fn decode<'a>(magic: &[u8; 4], bytes: &'a [u8]) -> Result<&'a [u8], BlockError> {
        if bytes.len() < 8 || &bytes[..4] != magic {
            return Err(BlockError::BadMagic);
        }
        let stored = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let body = &bytes[8..];
        let computed = crc32(body);
        if computed != stored {
            return Err(BlockError::CrcMismatch { stored, computed });
        }
        Ok(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_primitives_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(42);
        buf.put_u64(u64::MAX);
        buf.put_i64(-5);
        buf.put_f32(1.5);
        buf.put_f64(-2.25);
        put_str(&mut buf, "héllo");
        put_str_seq(&mut buf, &["a".to_string(), String::new()]);
        let mut r = Reader::new(buf.as_slice());
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 42);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_i64().unwrap(), -5);
        assert_eq!(r.take_f32().unwrap(), 1.5);
        assert_eq!(r.take_f64().unwrap(), -2.25);
        assert_eq!(r.take_str().unwrap(), "héllo");
        assert_eq!(
            r.take_str_seq().unwrap(),
            vec!["a".to_string(), String::new()]
        );
        r.finish().unwrap();
    }

    #[test]
    fn reader_errors_are_typed() {
        let mut r = Reader::new(&[0, 0]);
        assert_eq!(r.take_u32(), Err(WireError::Truncated));
        let mut r = Reader::new(&[0xFF, 0xFF, 0xFF, 0xFF, 1]);
        assert!(matches!(r.take_str(), Err(WireError::Oversized(_))));
        let mut r = Reader::new(&[0, 0, 0, 1, 0xFF]);
        assert_eq!(r.take_str(), Err(WireError::BadUtf8));
        let r = Reader::new(&[1, 2]);
        assert_eq!(r.finish(), Err(WireError::TrailingBytes(2)));
    }

    #[test]
    fn shared_blob_aliases_the_frame() {
        let mut buf = BytesMut::new();
        buf.put_u32(5);
        buf.put_slice(b"abcde");
        buf.put_u8(9);
        let frame = buf.freeze();
        let mut r = Reader::shared(&frame);
        let blob = r.take_blob().unwrap();
        assert_eq!(&*blob, b"abcde");
        assert_eq!(r.take_u8().unwrap(), 9);
        r.finish().unwrap();
        // Borrowed-slice readers copy instead.
        let mut r = Reader::new(frame.as_slice());
        assert_eq!(&*r.take_blob().unwrap(), b"abcde");
    }

    #[test]
    fn vectored_frame_writes_match_the_plain_layout() {
        let mut wire = Vec::new();
        write_frame_vectored(&mut wire, b"hello").unwrap();
        write_frame_vectored(&mut wire, b"").unwrap();
        assert_eq!(&wire[..4], &5u32.to_be_bytes());
        assert_eq!(&wire[4..9], b"hello");
        assert_eq!(&wire[9..13], &0u32.to_be_bytes());
        assert_eq!(wire.len(), 13);
    }

    #[test]
    fn frame_pool_reuses_buffers_and_counts() {
        let pool = FramePool::new(2, 8192);
        let a = pool.get();
        let b = pool.get();
        assert_eq!(pool.misses(), 2);
        pool.put(a);
        pool.put(b);
        let mut c = pool.get();
        assert_eq!(pool.hits(), 1);
        c.put_slice(b"data");
        pool.put(c);
        let d = pool.get();
        assert!(d.is_empty(), "pooled buffers come back cleared");
        pool.put(d);
        // A ballooned buffer is dropped, not retained.
        let big = BytesMut::with_capacity(16 * 1024);
        pool.put(big);
        assert_eq!(pool.free.lock().len(), 2);
    }

    #[test]
    fn crc_block_round_trips_and_rejects_flips() {
        let block = crc_block::encode(b"TEST", b"payload");
        assert_eq!(crc_block::decode(b"TEST", &block).unwrap(), b"payload");
        assert_eq!(
            crc_block::decode(b"NOPE", &block),
            Err(crc_block::BlockError::BadMagic)
        );
        let mut bad = block.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            crc_block::decode(b"TEST", &bad),
            Err(crc_block::BlockError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn frame_reader_carries_partial_frames_across_reads() {
        // Loopback socket pair via a real listener.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();

        // Two frames written in three odd-sized chunks.
        let mut wire = Vec::new();
        write_frame_vectored(&mut wire, b"first").unwrap();
        write_frame_vectored(&mut wire, b"second!").unwrap();
        tx.write_all(&wire[..3]).unwrap();
        tx.flush().unwrap();

        let mut reader = FrameReader::new();
        let t = std::thread::spawn(move || {
            tx.write_all(&wire[3..11]).unwrap();
            tx.write_all(&wire[11..]).unwrap();
            tx.flush().unwrap();
            tx
        });
        match reader
            .read_frame(&rx, MAX_FRAME_LEN, None, Some(Duration::from_secs(5)))
            .unwrap()
        {
            FrameEvent::Frame(p) => assert_eq!(p, b"first"),
            other => panic!("expected first frame, got {other:?}"),
        }
        match reader
            .read_frame(&rx, MAX_FRAME_LEN, None, Some(Duration::from_secs(5)))
            .unwrap()
        {
            FrameEvent::Frame(p) => assert_eq!(p, b"second!"),
            other => panic!("expected second frame, got {other:?}"),
        }
        let tx = t.join().unwrap();
        drop(tx);
        match reader.read_frame(&rx, MAX_FRAME_LEN, None, None).unwrap() {
            FrameEvent::Eof => {}
            other => panic!("expected EOF, got {other:?}"),
        }
        // Warmed up: both frames arrived through one buffer growth phase.
        assert!(reader.take_allocs() >= 1);
        assert_eq!(reader.take_allocs(), 0, "steady state allocates nothing");
    }

    #[test]
    fn frame_reader_refuses_oversized_and_times_out_midframe() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();

        // Oversized declared length.
        tx.write_all(&(1024u32 * 1024).to_be_bytes()).unwrap();
        let mut reader = FrameReader::new();
        match reader
            .read_frame(&rx, 1024, None, Some(Duration::from_secs(5)))
            .unwrap()
        {
            FrameEvent::TooLarge { declared } => assert_eq!(declared, 1024 * 1024),
            other => panic!("expected TooLarge, got {other:?}"),
        }

        // Fresh pair: a started-but-stalled frame times out.
        let mut tx2 = TcpStream::connect(addr).unwrap();
        let (rx2, _) = listener.accept().unwrap();
        tx2.write_all(&[0, 0]).unwrap(); // half a header, then silence
        tx2.flush().unwrap();
        let mut reader = FrameReader::new();
        match reader
            .read_frame(&rx2, MAX_FRAME_LEN, None, Some(Duration::from_millis(50)))
            .unwrap()
        {
            FrameEvent::TimedOut => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn owned_frames_read_into_exactly_one_buffer() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();

        let payload: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
        let send = payload.clone();
        let t = std::thread::spawn(move || {
            write_frame_vectored(&mut tx, &send).unwrap();
            tx
        });
        let mut reader = FrameReader::new();
        match reader
            .read_frame_owned(&rx, MAX_FRAME_LEN, None, Some(Duration::from_secs(5)))
            .unwrap()
        {
            OwnedFrameEvent::Frame(frame) => {
                assert_eq!(frame.len(), payload.len());
                assert_eq!(&*frame, &payload[..]);
                // Slices of the owned frame are zero-copy.
                let head = frame.slice(..10);
                assert_eq!(&*head, &payload[..10]);
            }
            other => panic!("expected owned frame, got {other:?}"),
        }
        drop(t.join().unwrap());
        // The reusable buffer never grew to the payload's size.
        assert!(reader.buf.len() < payload.len());
    }
}
