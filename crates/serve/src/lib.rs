//! `fstore-serve` — the network serving layer (paper §2.2.2: online
//! feature serving under production traffic).
//!
//! The feature store's `FeatureServer` answers in-process calls; this
//! crate puts it behind a socket with the properties a production serving
//! tier needs:
//!
//! * [`codec`] — the shared byte-level substrate: zero-copy decode
//!   cursors over pooled `Bytes` frames, a [`codec::FramePool`] free-list
//!   of encode buffers, vectored frame writes, and the per-connection
//!   [`codec::FrameReader`] that carries partial frames across reads
//!   without per-frame allocation.
//! * [`protocol`] — a compact length-prefixed binary wire protocol with
//!   typed error responses; decoding is total (no panics on hostile
//!   input) and oversized frames are refused before allocation.
//! * [`server`] — a std-only threaded TCP server: connection threads do
//!   framing, a bounded crossbeam channel feeds a worker pool.
//! * [`catalog`] — per-table ANN index snapshots behind atomically
//!   swappable `Arc`s: background rebuild + swap while search traffic
//!   keeps flowing, with generation counters and staleness metrics.
//! * [`batch`] — workers opportunistically coalesce queued single-entity
//!   lookups that share `(group, features)` into one batch serve, and
//!   vector searches that share `(table, k, options)` into one
//!   multi-query pass.
//! * [`admission`] — the bounded queue *is* the admission limit; overflow
//!   is shed immediately with a distinct `Overloaded` error, and shutdown
//!   drains admitted work before the pool exits.
//! * [`metrics`] — per-endpoint counters and p50/p95/p99 latency from
//!   streaming P² estimators, dumpable as JSON.
//! * [`api`] — the unified client API: the [`api::Transport`] seam (one
//!   request in, one response out), the [`api::StoreApi`] typed request
//!   surface blanket-implemented for every transport, and the
//!   [`api::ClientBuilder`] that is the one documented way to construct
//!   any client.
//! * [`client`] — a blocking client with connect/read/write deadlines and
//!   optional per-request deadline budgets; also the E14 load generator.
//! * [`retry`] — jittered exponential backoff with idempotency-aware
//!   failure classification, and a reconnecting [`retry::RetryingClient`].
//! * [`failover`] — [`failover::FailoverClient`]: an ordered endpoint list
//!   (leader first, then followers) behind per-endpoint circuit breakers.
//! * [`fault`] (feature `testing`) — a deterministic fault-injecting TCP
//!   proxy for chaos tests and the E18 experiment.
//! * [`repl`] — the [`repl::ReplProvider`] seam: a leader built with
//!   `fstore-repl` answers the `Repl*` endpoints through it, so followers
//!   can bootstrap from a snapshot and stream epoch-tagged deltas.

pub mod admission;
pub mod api;
pub mod batch;
pub mod catalog;
pub mod client;
pub mod codec;
pub mod failover;
#[cfg(feature = "testing")]
pub mod fault;
pub mod metrics;
pub mod protocol;
pub mod repl;
pub mod retry;
pub mod server;

pub use admission::{AdmissionController, AdmitReject};
pub use api::{AnyClient, ClientBuilder, StoreApi, Transport, WriteAck};
pub use catalog::{CatalogError, IndexCatalog, IndexMap, IndexSnapshot, IndexSpec, SearchOutcome};
pub use client::{ClientConfig, ClientError, DeltaBatch, EmbeddingRead, FeatureClient, Neighbors};
pub use codec::{
    write_frame_vectored, FrameEvent, FramePool, FrameReader, OwnedFrameEvent, Reader,
};
pub use failover::{BreakerConfig, BreakerState, CircuitBreaker, FailoverClient, FailoverStats};
#[cfg(feature = "testing")]
pub use fault::{Faults, FaultyProxy};
pub use metrics::{
    ControlSnapshot, Endpoint, EndpointSnapshot, IndexStatus, MetricsSnapshot, ServingMetrics,
    TierSnapshot, WireSnapshot,
};
pub use protocol::{
    read_frame_bounded, write_frame, ErrorCode, FrameOutcome, Request, Response, SearchOptions,
    WireDelta, WireError, WireHit, WireVector, MAX_FRAME_LEN,
};
pub use repl::{ReplLogState, ReplProvider};
pub use retry::{classify, ErrorClass, RetryPolicy, RetryingClient};
pub use server::{
    atomic_clock, fixed_clock, start, Clock, PromoteHook, ServeConfig, ServeConfigBuilder,
    ServeEngine, ServerHandle, WriteProvider, WriteState,
};
