//! The TCP feature-serving server.
//!
//! Architecture (std threads only — no async runtime):
//!
//! ```text
//!   acceptor ──spawns──▶ connection reader threads (one per socket):
//!       │                  frame in ─▶ admit ─▶ push reply-slot, in order
//!       │                        │ submit (admission: bounded, non-blocking)
//!       │                        ▼
//!       │               bounded crossbeam channel
//!       │                        │ recv + opportunistic drain
//!       │                        ▼
//!       └──────────────▶ worker pool (batch coalescing, FeatureServer /
//!                                     EmbeddingStore, metrics)
//!                                │ reply (per-request slot)
//!                                ▼
//!                        connection writer threads (one per socket):
//!                          pop slots in order ─▶ pooled encode ─▶ frame out
//! ```
//!
//! Connection threads never execute store code. Each connection is a
//! *pipeline*: the reader keeps admitting frames (up to
//! [`ServeConfig::pipeline_depth`] in flight) while the writer streams
//! responses back **in request order** — ordering is carried by the queue
//! of reply slots, so the wire needs no correlation IDs (DESIGN §2.16).
//! Workers claim a job plus whatever else is queued and coalesce
//! compatible lookups into one batch serve. Shutdown is graceful:
//! admission flips to draining, open sockets are shut down, and workers
//! finish every admitted job before exiting.

use crate::admission::{AdmissionController, AdmitReject};
use crate::batch::{self, Job};
use crate::catalog::{CatalogError, IndexCatalog, SearchOutcome};
use crate::codec::{write_frame_vectored, FrameEvent, FrameReader};
use crate::metrics::ServingMetrics;
use crate::protocol::{ErrorCode, Request, Response, WireDelta, WireVector};
use crate::repl::{check_snapshot_len, ReplProvider};
use crossbeam::channel::{bounded, Receiver};
use fstore_common::DeltaQuery;
use fstore_common::{EntityKey, FsError, Timestamp, Value};
use fstore_core::FeatureServer;
use fstore_embed::{EmbeddingDb, EmbeddingStore};
use parking_lot::Mutex;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded queue depth between connections and workers — the admission
    /// control limit. Submissions beyond this are shed as `Overloaded`.
    pub queue_depth: usize,
    /// Most jobs one worker claims per drain (batch ceiling).
    pub max_batch: usize,
    /// Artificial per-claim delay — fault injection for load-shedding
    /// tests and experiments. `None` in production configurations.
    pub handler_delay: Option<std::time::Duration>,
    /// Once a request frame has *started*, the rest of it must arrive
    /// within this bound or the connection is cut — a slow-loris peer can
    /// hold only its own connection thread, never a worker. Waiting for a
    /// frame to start (an idle keep-alive connection) is unbounded.
    pub frame_timeout: Option<std::time::Duration>,
    /// Write timeout on every connection socket: a peer that stops
    /// reading its responses cannot wedge a connection thread forever.
    pub write_timeout: Option<std::time::Duration>,
    /// Per-request frame ceiling; frames declaring more are refused with
    /// a typed `FrameTooLarge` error before any payload is read. Clamped
    /// by the protocol-wide [`crate::protocol::MAX_FRAME_LEN`].
    pub max_request_frame: usize,
    /// Most requests one connection may have in flight (admitted but not
    /// yet answered). The connection reader stalls at the ceiling, which
    /// backpressures a pipelining client through TCP itself.
    pub pipeline_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 256,
            max_batch: 32,
            handler_delay: None,
            frame_timeout: Some(std::time::Duration::from_secs(10)),
            write_timeout: Some(std::time::Duration::from_secs(10)),
            max_request_frame: crate::protocol::MAX_FRAME_LEN,
            pipeline_depth: 128,
        }
    }
}

impl ServeConfig {
    /// A validated builder seeded with the defaults. Unlike struct-literal
    /// construction, the builder refuses configurations that would
    /// silently degenerate (zero workers, zero queue depth, zero batch).
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }
}

/// Builder for [`ServeConfig`]; see [`ServeConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.config.queue_depth = queue_depth;
        self
    }

    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    pub fn handler_delay(mut self, delay: std::time::Duration) -> Self {
        self.config.handler_delay = Some(delay);
        self
    }

    /// Bound on finishing a request frame once it has started (`None`
    /// disables the bound — not recommended outside loopback tests).
    pub fn frame_timeout(mut self, timeout: Option<std::time::Duration>) -> Self {
        self.config.frame_timeout = timeout;
        self
    }

    /// Socket write timeout per connection (`None` disables it).
    pub fn write_timeout(mut self, timeout: Option<std::time::Duration>) -> Self {
        self.config.write_timeout = timeout;
        self
    }

    /// Per-request frame ceiling in bytes.
    pub fn max_request_frame(mut self, bytes: usize) -> Self {
        self.config.max_request_frame = bytes;
        self
    }

    /// Most requests one connection may have in flight at once.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.config.pipeline_depth = depth;
        self
    }

    /// Validate and produce the config. Zero workers, zero queue depth,
    /// and zero max batch are each rejected: a server built from them
    /// would deadlock (no workers), shed everything (no queue), or stall
    /// its drain loop (no batch budget).
    pub fn build(self) -> fstore_common::Result<ServeConfig> {
        if self.config.workers == 0 {
            return Err(FsError::InvalidArgument(
                "serve config needs at least one worker".into(),
            ));
        }
        if self.config.queue_depth == 0 {
            return Err(FsError::InvalidArgument(
                "serve config needs a positive queue depth".into(),
            ));
        }
        if self.config.max_batch == 0 {
            return Err(FsError::InvalidArgument(
                "serve config needs a positive max batch".into(),
            ));
        }
        if self.config.max_request_frame == 0
            || self.config.max_request_frame > crate::protocol::MAX_FRAME_LEN
        {
            return Err(FsError::InvalidArgument(format!(
                "max_request_frame must be in 1..={}",
                crate::protocol::MAX_FRAME_LEN
            )));
        }
        if self.config.pipeline_depth == 0 {
            return Err(FsError::InvalidArgument(
                "serve config needs a positive pipeline depth".into(),
            ));
        }
        Ok(self.config)
    }
}

/// The clock requests are served at (the workspace simulates time; wall
/// clocks would make freshness nondeterministic).
pub type Clock = Arc<dyn Fn() -> Timestamp + Send + Sync>;

/// A clock pinned to one instant.
pub fn fixed_clock(now: Timestamp) -> Clock {
    Arc::new(move || now)
}

/// A clock backed by a shared atomic; advance it from outside the server.
pub fn atomic_clock(millis: Arc<AtomicI64>) -> Clock {
    Arc::new(move || Timestamp::millis(millis.load(Ordering::Acquire)))
}

/// The engine-side sink for fenced online writes. A replication leader
/// implements this by applying the row, appending it to its publication
/// log, and — when durability is attached — returning only after the
/// delta's WAL commit point, so a `PutAck` always names a committed write.
pub trait WriteProvider: Send + Sync {
    /// Apply one entity's features and return the replication sequence
    /// number the write was published at.
    fn put_online(
        &self,
        group: &str,
        entity: &EntityKey,
        values: &[(String, Value)],
        now: Timestamp,
    ) -> fstore_common::Result<u64>;
}

/// What a promotion hook does: turn this node into a write leader (stop
/// follower sync, wrap the replicated components in a fresh leader) and
/// hand back the provider writes should flow through.
pub type PromoteHook =
    Arc<dyn Fn(u64) -> fstore_common::Result<Arc<dyn WriteProvider>> + Send + Sync>;

struct WriteInner {
    /// The leader term this node currently operates under. 0 = never
    /// promoted (a read replica or a plain read-only server).
    term: u64,
    /// Present iff this node is the write leader at `term`.
    provider: Option<Arc<dyn WriteProvider>>,
}

/// A node's fenced write state: its leader term plus the provider writes
/// flow through. One mutex serializes every write, promotion, and fence,
/// so term checks and row application are atomic — a concurrent demotion
/// can never interleave between "term matched" and "row applied", which
/// is exactly the window a zombie acknowledgment would need.
pub struct WriteState {
    inner: Mutex<WriteInner>,
    promote_hook: Mutex<Option<PromoteHook>>,
}

impl WriteState {
    fn new() -> Arc<WriteState> {
        Arc::new(WriteState {
            inner: Mutex::new(WriteInner {
                term: 0,
                provider: None,
            }),
            promote_hook: Mutex::new(None),
        })
    }

    fn not_leader(current: u64) -> Response {
        // Fixed message shape: clients parse the current term back out
        // into the typed `ClientError::NotLeader`.
        Response::error(ErrorCode::NotLeader, format!("current_term={current}"))
    }

    /// Install a write provider at `term` (startup wiring for a node that
    /// begins life as the leader).
    pub fn install(&self, provider: Arc<dyn WriteProvider>, term: u64) {
        let mut inner = self.inner.lock();
        inner.provider = Some(provider);
        inner.term = term;
    }

    /// Register the hook [`Request::Promote`] runs to turn this node into
    /// a leader.
    pub fn set_promote_hook(&self, hook: PromoteHook) {
        *self.promote_hook.lock() = Some(hook);
    }

    /// The node's current leader term (0 = never promoted).
    pub fn current_term(&self) -> u64 {
        self.inner.lock().term
    }

    /// Whether this node currently holds a write provider.
    pub fn is_leader(&self) -> bool {
        self.inner.lock().provider.is_some()
    }

    /// Handle one fenced write. The write applies only when `term` equals
    /// the node's current term and a provider is installed; a *newer*
    /// term proves this node was superseded by a promotion it never heard
    /// about, so it self-fences (drops its provider) before refusing.
    pub fn put_online(
        &self,
        group: &str,
        entity: &str,
        values: &[(String, Value)],
        term: u64,
        now: Timestamp,
    ) -> Response {
        let mut inner = self.inner.lock();
        if term > inner.term {
            // Someone holds a map from a later promotion: this node's
            // leadership (if any) is over. Fence first, then refuse.
            inner.term = term;
            inner.provider = None;
            return Self::not_leader(inner.term);
        }
        let Some(provider) = inner.provider.clone() else {
            return Self::not_leader(inner.term);
        };
        if term < inner.term {
            return Self::not_leader(inner.term);
        }
        // Applying under the lock keeps "term matched" and "row applied"
        // one atomic step; the provider returns only after the write is
        // in the WAL (when durability is attached), so the ack below
        // always names a committed write.
        match provider.put_online(group, &EntityKey::new(entity), values, now) {
            Ok(epoch) => Response::PutAck {
                epoch,
                term: inner.term,
            },
            Err(e) => Response::error(
                ErrorCode::Internal,
                format!("write not committed (retry may duplicate): {e}"),
            ),
        }
    }

    /// Handle [`Request::Promote`]: become (or remain) the leader at
    /// `term`. Idempotent for a node already leading at `term` or above;
    /// a stale term is refused so a delayed promote frame can never
    /// regress leadership.
    pub fn promote(&self, term: u64) -> Response {
        let mut inner = self.inner.lock();
        if term < inner.term {
            return Self::not_leader(inner.term);
        }
        if inner.provider.is_some() {
            inner.term = term;
            return Response::PutAck {
                epoch: 0,
                term: inner.term,
            };
        }
        let hook = self.promote_hook.lock().clone();
        let Some(hook) = hook else {
            return Response::error(
                ErrorCode::BadRequest,
                "this node has no promotion hook (not a promotable replica)",
            );
        };
        match hook(term) {
            Ok(provider) => {
                inner.provider = Some(provider);
                inner.term = term;
                Response::PutAck {
                    epoch: 0,
                    term: inner.term,
                }
            }
            Err(e) => Response::error(ErrorCode::Internal, format!("promotion failed: {e}")),
        }
    }

    /// Handle [`Request::Demote`]: fence this node at `term` — drop any
    /// provider and refuse every write below the fenced term from now on.
    /// A demote carrying a term *below* the node's current one is stale
    /// (it predates a newer promotion) and is refused without touching
    /// the provider.
    pub fn demote(&self, term: u64) -> Response {
        let mut inner = self.inner.lock();
        if term < inner.term {
            return Self::not_leader(inner.term);
        }
        inner.term = term;
        inner.provider = None;
        Response::PutAck {
            epoch: 0,
            term: inner.term,
        }
    }
}

/// Everything a worker needs to answer requests.
pub struct ServeEngine {
    server: FeatureServer,
    embeddings: Option<EmbeddingDb>,
    indexes: Option<Arc<IndexCatalog>>,
    repl: Option<Arc<dyn ReplProvider>>,
    writes: Arc<WriteState>,
    clock: Clock,
}

impl ServeEngine {
    pub fn new(server: FeatureServer, clock: Clock) -> Self {
        ServeEngine {
            server,
            embeddings: None,
            indexes: None,
            repl: None,
            writes: WriteState::new(),
            clock,
        }
    }

    /// Attach an embedding catalog for `GetEmbedding`. Each read resolves
    /// one immutable snapshot — a republish never blocks it — and the
    /// response is stamped with that snapshot's epoch.
    pub fn with_embeddings(mut self, embeddings: EmbeddingDb) -> Self {
        self.embeddings = Some(embeddings);
        self
    }

    /// Convenience for a catalog the server owns outright.
    pub fn with_embedding_catalog(self, catalog: EmbeddingStore) -> Self {
        self.with_embeddings(EmbeddingDb::from_store(catalog))
    }

    /// Attach an ANN index catalog for the `SearchNearest` endpoints; also
    /// attaches the catalog's embedding store for `GetEmbedding` if none
    /// was set yet.
    pub fn with_index_catalog(mut self, catalog: Arc<IndexCatalog>) -> Self {
        if self.embeddings.is_none() {
            self.embeddings = Some(catalog.store());
        }
        self.indexes = Some(catalog);
        self
    }

    /// The attached index catalog, if any.
    pub fn index_catalog(&self) -> Option<&Arc<IndexCatalog>> {
        self.indexes.as_ref()
    }

    /// Make this server a replication leader: the provider answers the
    /// `ReplSubscribe` / `ReplSnapshot` / `ReplDeltas` endpoints. Without
    /// one, those requests get a typed `BadRequest` error.
    pub fn with_replication(mut self, provider: Arc<dyn ReplProvider>) -> Self {
        self.repl = Some(provider);
        self
    }

    /// Make this server the write leader at `term`: `PutOnline` requests
    /// carrying exactly that term flow through `provider`; every other
    /// term is refused with [`ErrorCode::NotLeader`].
    pub fn with_write_provider(self, provider: Arc<dyn WriteProvider>, term: u64) -> Self {
        self.writes.install(provider, term);
        self
    }

    /// Make this server promotable: [`Request::Promote`] runs `hook` to
    /// turn the node into a write leader in place (the serving threads
    /// keep running throughout).
    pub fn with_promote_hook(self, hook: PromoteHook) -> Self {
        self.writes.set_promote_hook(hook);
        self
    }

    /// The node's fenced write state — shared with the running server, so
    /// a harness (or the control plane, over the wire) can observe terms
    /// and leadership after `start()` consumed the engine.
    pub fn write_state(&self) -> Arc<WriteState> {
        Arc::clone(&self.writes)
    }

    pub fn now(&self) -> Timestamp {
        (self.clock)()
    }

    /// Answer one request. Total: every failure becomes a wire error.
    pub fn handle(&self, request: &Request, queue_depth: u32, draining: bool) -> Response {
        match request {
            Request::Health => Response::Health {
                queue_depth,
                draining,
            },
            Request::GetFeatures {
                group,
                entity,
                features,
            } => {
                let refs: Vec<&str> = features.iter().map(String::as_str).collect();
                match self
                    .server
                    .serve(group, &EntityKey::new(entity.clone()), &refs, self.now())
                {
                    Ok(v) => Response::Features(WireVector::from(&v)),
                    Err(e) => fs_error_response(&e),
                }
            }
            Request::GetFeaturesBatch {
                group,
                entities,
                features,
            } => {
                let keys: Vec<EntityKey> =
                    entities.iter().map(|e| EntityKey::new(e.clone())).collect();
                let refs: Vec<&str> = features.iter().map(String::as_str).collect();
                match self.server.serve_batch(group, &keys, &refs, self.now()) {
                    Ok(vs) => Response::FeaturesBatch(vs.iter().map(WireVector::from).collect()),
                    Err(e) => fs_error_response(&e),
                }
            }
            Request::GetEmbedding { table, key } => {
                let Some(embeddings) = &self.embeddings else {
                    return Response::error(
                        ErrorCode::NotFound,
                        "no embedding catalog attached to this server",
                    );
                };
                // One consistent (snapshot, epoch) pair answers the whole
                // request; a concurrent republish cannot tear it.
                let view = embeddings.read();
                match view.value.resolve(table) {
                    // `fetch` is zero-copy on a resident table (the row is
                    // a shared block) and faults through the tier cache on
                    // a spilled one — either way the response aliases the
                    // stored bytes instead of copying them per request.
                    Ok(version) => match version.table.fetch(key) {
                        Ok(Some(vector)) => Response::Embedding {
                            dim: version.table.dim() as u32,
                            version: version.version,
                            epoch: view.epoch.as_u64(),
                            vector,
                        },
                        Ok(None) => Response::error(
                            ErrorCode::NotFound,
                            format!(
                                "key `{key}` not in embedding `{}`",
                                version.qualified_name()
                            ),
                        ),
                        Err(e) => fs_error_response(&e),
                    },
                    Err(e) => fs_error_response(&e),
                }
            }
            Request::SearchNearest {
                table,
                query,
                k,
                options,
            } => {
                let Some(catalog) = &self.indexes else {
                    return no_index_catalog();
                };
                search_response(catalog.search(table, query, *k as usize, &options.to_params()))
            }
            Request::SearchNearestByKey {
                table,
                key,
                k,
                options,
            } => {
                let Some(catalog) = &self.indexes else {
                    return no_index_catalog();
                };
                search_response(catalog.search_by_key(
                    table,
                    key,
                    *k as usize,
                    &options.to_params(),
                ))
            }
            Request::ReplSubscribe => {
                let Some(repl) = &self.repl else {
                    return no_replication();
                };
                let state = repl.log_state();
                Response::ReplState {
                    leader_epoch: state.leader_epoch,
                    oldest_retained: state.oldest_retained,
                    retention: state.retention,
                }
            }
            Request::ReplSnapshot => {
                let Some(repl) = &self.repl else {
                    return no_replication();
                };
                match repl.full_snapshot().and_then(|(epoch, payload)| {
                    check_snapshot_len(&payload).map(|()| (epoch, payload))
                }) {
                    Ok((repl_epoch, payload)) => Response::ReplSnapshot {
                        repl_epoch,
                        payload: payload.into(),
                    },
                    Err(e) => Response::error(ErrorCode::Internal, e.to_string()),
                }
            }
            // Workers never see the envelope (the connection thread
            // unwraps it), but `handle` stays total for direct callers:
            // the budget is meaningless without an admission timestamp,
            // so execute the inner request.
            Request::WithDeadline { inner, .. } => self.handle(inner, queue_depth, draining),
            Request::ReplDeltas { from_epoch } => {
                let Some(repl) = &self.repl else {
                    return no_replication();
                };
                let (leader_epoch, query) = repl.deltas_since(*from_epoch);
                match query {
                    DeltaQuery::Deltas(records) => Response::ReplDeltas {
                        leader_epoch,
                        lagged: false,
                        deltas: records.iter().map(WireDelta::from).collect(),
                    },
                    // The follower fell past retention; an empty delta set
                    // with `lagged` raised tells it to re-bootstrap from a
                    // full snapshot.
                    DeltaQuery::Lagged { .. } => Response::ReplDeltas {
                        leader_epoch,
                        lagged: true,
                        deltas: Vec::new(),
                    },
                }
            }
            Request::PutOnline {
                group,
                entity,
                values,
                term,
            } => self
                .writes
                .put_online(group, entity, values, *term, self.now()),
            Request::Promote { shard: _, term } => self.writes.promote(*term),
            Request::Demote { shard: _, term } => self.writes.demote(*term),
        }
    }
}

fn no_replication() -> Response {
    Response::error(
        ErrorCode::BadRequest,
        "this server is not a replication leader",
    )
}

fn no_index_catalog() -> Response {
    Response::error(
        ErrorCode::IndexNotReady,
        "no index catalog attached to this server",
    )
}

/// Map a catalog search result onto the wire.
fn search_response(result: Result<SearchOutcome, CatalogError>) -> Response {
    match result {
        Ok(outcome) => Response::Neighbors {
            table_version: outcome.table_version,
            index_generation: outcome.index_generation,
            hits: outcome.hits,
        },
        Err(e) => {
            let code = match &e {
                CatalogError::IndexNotReady { .. } => ErrorCode::IndexNotReady,
                CatalogError::DimensionMismatch { .. } => ErrorCode::DimensionMismatch,
                CatalogError::KeyNotFound { .. } => ErrorCode::NotFound,
                CatalogError::Failed(_) => ErrorCode::BadRequest,
            };
            Response::error(code, e.to_string())
        }
    }
}

/// Map a store error onto a wire error code.
fn fs_error_response(e: &FsError) -> Response {
    let code = match e {
        FsError::NotFound { .. } => ErrorCode::NotFound,
        FsError::InvalidArgument(_) => ErrorCode::BadRequest,
        // The serving path's only Storage error is the FailOnStale refusal.
        FsError::Storage(_) => ErrorCode::Stale,
        _ => ErrorCode::Internal,
    };
    Response::error(code, e.to_string())
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts ungracefully (threads detach).
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<ServingMetrics>,
    admission: Option<AdmissionController>,
    draining: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conns: Arc<Mutex<Vec<(u64, TcpStream)>>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn metrics(&self) -> Arc<ServingMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Jobs admitted but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        self.admission
            .as_ref()
            .map_or(0, AdmissionController::queue_depth)
    }

    /// Graceful shutdown: refuse new work, finish every admitted job, then
    /// join the acceptor, all connection threads, and all workers.
    pub fn shutdown(mut self) {
        self.draining.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor thread panicked");
        }
        // Shut sockets down so connection threads fall out of read_frame.
        for (_, conn) in self.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let conn_threads: Vec<_> = std::mem::take(&mut *self.conn_threads.lock());
        for t in conn_threads {
            t.join().expect("connection thread panicked");
        }
        // Last senders go away here; workers drain the queue and exit.
        drop(self.admission.take());
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
    }
}

/// Bind, spawn the acceptor and worker pool, and return a handle.
pub fn start(engine: ServeEngine, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let metrics = Arc::new(ServingMetrics::new());
    let draining = Arc::new(AtomicBool::new(false));
    let (tx, rx) = bounded::<Job>(config.queue_depth.max(1));
    let admission = AdmissionController::new(tx, Arc::clone(&draining), Arc::clone(&metrics));
    let engine = Arc::new(engine);
    if let Some(catalog) = engine.index_catalog() {
        catalog.attach_metrics(Arc::clone(&metrics));
    }

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|i| {
            let rx = rx.clone();
            let engine = Arc::clone(&engine);
            let metrics = Arc::clone(&metrics);
            let draining = Arc::clone(&draining);
            let config = config.clone();
            std::thread::Builder::new()
                .name(format!("fstore-serve-worker-{i}"))
                .spawn(move || worker_loop(&rx, &engine, &metrics, &draining, &config))
                .expect("spawn worker")
        })
        .collect();

    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let conns: Arc<Mutex<Vec<(u64, TcpStream)>>> = Arc::new(Mutex::new(Vec::new()));

    let acceptor = {
        let draining = Arc::clone(&draining);
        let admission = admission.clone();
        let conn_threads = Arc::clone(&conn_threads);
        let conns = Arc::clone(&conns);
        let config = config.clone();
        std::thread::Builder::new()
            .name("fstore-serve-acceptor".to_string())
            .spawn(move || {
                let mut next_conn_id: u64 = 0;
                for stream in listener.incoming() {
                    if draining.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Small request/response frames: Nagle + delayed ACK
                    // would add milliseconds per round trip.
                    let _ = stream.set_nodelay(true);
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    if let Ok(registered) = stream.try_clone() {
                        conns.lock().push((conn_id, registered));
                    }
                    let admission = admission.clone();
                    let draining = Arc::clone(&draining);
                    let conns = Arc::clone(&conns);
                    let config = config.clone();
                    let handle = std::thread::Builder::new()
                        .name("fstore-serve-conn".to_string())
                        .spawn(move || {
                            connection_loop(stream, &admission, &draining, &config);
                            // Deregister so the clone doesn't hold the fd
                            // open after the connection is done — the peer
                            // must see EOF, and dead sockets must not pile
                            // up until shutdown.
                            conns.lock().retain(|(id, _)| *id != conn_id);
                        })
                        .expect("spawn connection thread");
                    conn_threads.lock().push(handle);
                }
            })
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        addr,
        metrics,
        admission: Some(admission),
        draining,
        acceptor: Some(acceptor),
        workers,
        conn_threads,
        conns,
    })
}

/// A reply slot already holding its response — used for refusals decided
/// on the reader thread (bad frames, admission rejects), which must still
/// flow through the writer's ordered queue so responses never reorder.
fn ready(response: Response) -> Receiver<Response> {
    let (tx, rx) = bounded(1);
    let _ = tx.send(response);
    rx
}

/// Per-socket reader: frame in, admit, push the request's reply slot onto
/// the writer's ordered queue. The queue is bounded by
/// [`ServeConfig::pipeline_depth`], so a client pumping requests faster
/// than workers answer them is backpressured through TCP rather than
/// queuing without limit.
fn connection_loop(
    stream: TcpStream,
    admission: &AdmissionController,
    draining: &AtomicBool,
    config: &ServeConfig,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let _ = write_half.set_write_timeout(config.write_timeout);
    let (slot_tx, slot_rx) = bounded::<Receiver<Response>>(config.pipeline_depth.max(1));
    let writer = {
        let metrics = admission.shared_metrics();
        std::thread::Builder::new()
            .name("fstore-serve-conn-writer".to_string())
            .spawn(move || writer_loop(&write_half, &slot_rx, &metrics))
            .expect("spawn connection writer")
    };
    let metrics = admission.metrics();
    let mut reader = FrameReader::new();
    loop {
        if draining.load(Ordering::Acquire) {
            break;
        }
        // Idle bound: none (a keep-alive connection may sit quiet forever);
        // frame bound: once a frame starts, it must finish or the peer is
        // a slow-loris and the connection is cut.
        let decoded = match reader.read_frame(
            &stream,
            config.max_request_frame,
            None,
            config.frame_timeout,
        ) {
            Ok(FrameEvent::Frame(payload)) => Request::decode(payload),
            Ok(FrameEvent::TooLarge { declared }) => {
                // Refuse with a typed error, then close: the payload was
                // never read, so the stream position is unrecoverable. The
                // refusal still rides the ordered queue, behind every
                // response already in flight.
                metrics.record_frame_too_large();
                let _ = slot_tx.send(ready(Response::error(
                    ErrorCode::FrameTooLarge,
                    format!(
                        "request frame of {declared} bytes exceeds the {} byte ceiling",
                        config.max_request_frame
                    ),
                )));
                break;
            }
            Ok(FrameEvent::TimedOut) => {
                // The peer started a frame and stalled; it is not reading
                // responses either, so cut the connection silently.
                metrics.record_frame_timeout();
                break;
            }
            Ok(FrameEvent::Eof) | Err(_) => break,
        };
        metrics.record_wire_rx(reader.take_bytes_rx(), 1, reader.take_allocs());
        let slot = match decoded {
            Err(e) => ready(Response::error(ErrorCode::BadRequest, e.to_string())),
            Ok(request) => {
                let accepted_at = Instant::now();
                // Unwrap the deadline envelope here so workers and the
                // batch planner only ever see plain requests.
                let (request, deadline) = match request {
                    Request::WithDeadline { budget_ms, inner } => (
                        *inner,
                        Some(accepted_at + std::time::Duration::from_millis(u64::from(budget_ms))),
                    ),
                    other => (other, None),
                };
                let (reply_tx, reply_rx) = bounded(1);
                let job = Job {
                    request,
                    reply: reply_tx,
                    accepted_at,
                    deadline,
                };
                match admission.submit(job) {
                    Ok(()) => reply_rx,
                    Err(AdmitReject::Overloaded) => ready(Response::error(
                        ErrorCode::Overloaded,
                        "serving queue is full",
                    )),
                    Err(AdmitReject::Draining) => ready(Response::error(
                        ErrorCode::ShuttingDown,
                        "server is draining",
                    )),
                }
            }
        };
        if slot_tx.send(slot).is_err() {
            // The writer died on a socket error; the peer is gone.
            break;
        }
    }
    // Closing the queue lets the writer drain whatever is still in flight
    // and exit; join so the socket outlives every pending write.
    drop(slot_tx);
    let _ = writer.join();
}

/// Per-socket writer: pop reply slots in request order, wait on each one,
/// encode into a pooled buffer, and write the frame vectored (header +
/// payload, one syscall, no copy). Popping in push order is the entire
/// ordering guarantee — responses leave the socket in exactly the order
/// requests arrived, so the wire needs no correlation IDs.
fn writer_loop(stream: &TcpStream, slots: &Receiver<Receiver<Response>>, metrics: &ServingMetrics) {
    let pool = metrics.frame_pool();
    let mut w = stream;
    for slot in slots.iter() {
        let response = match slot.recv() {
            Ok(response) => response,
            Err(_) => Response::error(ErrorCode::Internal, "worker dropped the request"),
        };
        let mut buf = pool.get();
        response.encode_into(&mut buf);
        let result = write_frame_vectored(&mut w, buf.as_slice());
        metrics.record_wire_tx(4 + buf.len() as u64, 1);
        pool.put(buf);
        if result.is_err() {
            // Peer stopped reading; drop the remaining slots (their
            // workers' replies go nowhere) and let the reader find out
            // via the closed queue.
            break;
        }
    }
}

/// Worker: claim one job, drain the queue opportunistically, coalesce,
/// execute, reply, record.
fn worker_loop(
    rx: &Receiver<Job>,
    engine: &ServeEngine,
    metrics: &ServingMetrics,
    draining: &AtomicBool,
    config: &ServeConfig,
) {
    while let Ok(first) = rx.recv() {
        if let Some(delay) = config.handler_delay {
            std::thread::sleep(delay);
        }
        let jobs = batch::drain(rx, first, config.max_batch.max(1));
        // Deadline check at dequeue: a job whose budget lapsed while it
        // sat in the queue is shed unexecuted — its caller has already
        // timed out, so running it would only delay live requests.
        let now = Instant::now();
        let (jobs, expired): (Vec<Job>, Vec<Job>) = jobs
            .into_iter()
            .partition(|j| j.deadline.is_none_or(|d| d > now));
        for job in expired {
            metrics.record_deadline_shed();
            finish(
                metrics,
                job,
                Response::error(
                    ErrorCode::DeadlineExceeded,
                    "deadline budget expired before a worker dequeued the request",
                ),
            );
        }
        let plan = batch::plan(jobs);
        let is_draining = draining.load(Ordering::Acquire);

        for batch in plan.batches {
            metrics.record_batch(batch.jobs.len());
            let keys: Vec<EntityKey> = batch
                .jobs
                .iter()
                .map(|j| match &j.request {
                    Request::GetFeatures { entity, .. } => EntityKey::new(entity.clone()),
                    _ => unreachable!("plan() only batches GetFeatures"),
                })
                .collect();
            let refs: Vec<&str> = batch.features.iter().map(String::as_str).collect();
            match engine
                .server
                .serve_batch(&batch.group, &keys, &refs, engine.now())
            {
                Ok(vectors) => {
                    for (job, vector) in batch.jobs.into_iter().zip(&vectors) {
                        finish(metrics, job, Response::Features(WireVector::from(vector)));
                    }
                }
                // A batch fails as a unit (e.g. FailOnStale tripped by one
                // member); re-serve singly to preserve per-request answers.
                Err(_) => {
                    for job in batch.jobs {
                        let response = engine.handle(&job.request, rx.len() as u32, is_draining);
                        finish(metrics, job, response);
                    }
                }
            }
        }
        for batch in plan.searches {
            metrics.record_batch(batch.jobs.len());
            let outcome = engine.index_catalog().and_then(|catalog| {
                let queries: Vec<Vec<f32>> = batch
                    .jobs
                    .iter()
                    .map(|j| match &j.request {
                        Request::SearchNearest { query, .. } => query.clone(),
                        _ => unreachable!("plan() only batches SearchNearest"),
                    })
                    .collect();
                catalog
                    .search_many(
                        &batch.table,
                        &queries,
                        batch.k as usize,
                        &batch.options.to_params(),
                    )
                    .ok()
            });
            match outcome {
                Some(results) => {
                    for (job, result) in batch.jobs.into_iter().zip(results) {
                        finish(metrics, job, search_response(result));
                    }
                }
                // No catalog or no snapshot: re-serve singly so each job
                // gets the same typed error the single path produces.
                None => {
                    for job in batch.jobs {
                        let response = engine.handle(&job.request, rx.len() as u32, is_draining);
                        finish(metrics, job, response);
                    }
                }
            }
        }
        for job in plan.singles {
            let response = engine.handle(&job.request, rx.len() as u32, is_draining);
            finish(metrics, job, response);
        }
    }
}

/// Reply and record one finished job.
fn finish(metrics: &ServingMetrics, job: Job, response: Response) {
    let ok = !matches!(response, Response::Error { .. });
    let latency_ms = job.accepted_at.elapsed().as_secs_f64() * 1e3;
    metrics.record(job.request.endpoint(), latency_ms, ok);
    // E21's embedding phase asserts this stays flat: a response whose
    // vector owns a private buffer means the store path copied.
    if let Response::Embedding { vector, .. } = &response {
        if !vector.is_shared() {
            metrics.record_embed_copy();
        }
    }
    // The connection may already be gone; its loss is not the worker's
    // problem.
    let _ = job.reply.send(response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::Value;
    use fstore_storage::OnlineStore;

    fn engine() -> ServeEngine {
        let online = Arc::new(OnlineStore::default());
        online.put(
            "user",
            &EntityKey::new("u1"),
            "score",
            Value::Float(0.5),
            Timestamp::millis(100),
        );
        ServeEngine::new(
            FeatureServer::new(online),
            fixed_clock(Timestamp::millis(1_000)),
        )
    }

    #[test]
    fn engine_serves_features_and_maps_missing_groups_to_nulls() {
        let e = engine();
        let resp = e.handle(
            &Request::GetFeatures {
                group: "user".into(),
                entity: "u1".into(),
                features: vec!["score".into()],
            },
            0,
            false,
        );
        match resp {
            Response::Features(v) => {
                assert_eq!(v.values, vec![Value::Float(0.5)]);
                assert_eq!(v.ages_ms, vec![Some(900)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn engine_reports_missing_embedding_catalog() {
        let e = engine();
        let resp = e.handle(
            &Request::GetEmbedding {
                table: "emb".into(),
                key: "k".into(),
            },
            0,
            false,
        );
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::NotFound,
                ..
            }
        ));
    }

    #[test]
    fn builder_rejects_degenerate_configs_and_keeps_defaults() {
        assert!(ServeConfig::builder().workers(0).build().is_err());
        assert!(ServeConfig::builder().queue_depth(0).build().is_err());
        assert!(ServeConfig::builder().max_batch(0).build().is_err());
        assert!(ServeConfig::builder().pipeline_depth(0).build().is_err());
        let config = ServeConfig::builder()
            .addr("127.0.0.1:0")
            .workers(2)
            .queue_depth(8)
            .max_batch(4)
            .handler_delay(std::time::Duration::from_millis(1))
            .build()
            .unwrap();
        assert_eq!(config.workers, 2);
        assert_eq!(config.queue_depth, 8);
        assert_eq!(config.max_batch, 4);
        assert!(config.handler_delay.is_some());
        // Default-seeded builder passes validation untouched.
        assert!(ServeConfig::builder().build().is_ok());
    }

    #[test]
    fn engine_without_index_catalog_reports_index_not_ready() {
        let e = engine();
        let resp = e.handle(
            &Request::SearchNearest {
                table: "emb".into(),
                query: vec![0.0],
                k: 1,
                options: crate::protocol::SearchOptions::default(),
            },
            0,
            false,
        );
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::IndexNotReady,
                ..
            }
        ));
    }

    #[test]
    fn engine_serves_search_through_an_attached_catalog() {
        use crate::catalog::IndexSpec;
        use fstore_common::Timestamp;
        use fstore_embed::{EmbeddingProvenance, EmbeddingStore, EmbeddingTable};

        let mut table = EmbeddingTable::new(2).unwrap();
        for i in 0..8 {
            table.insert(format!("e{i}"), vec![i as f32, 0.0]).unwrap();
        }
        let mut store = EmbeddingStore::new();
        store
            .publish(
                "emb",
                table,
                EmbeddingProvenance::default(),
                Timestamp::EPOCH,
            )
            .unwrap();
        let catalog = Arc::new(crate::catalog::IndexCatalog::new(EmbeddingDb::from_store(
            store,
        )));
        catalog.build("emb", &IndexSpec::Flat).unwrap();
        let e = engine().with_index_catalog(Arc::clone(&catalog));

        let resp = e.handle(
            &Request::SearchNearest {
                table: "emb".into(),
                query: vec![2.2, 0.0],
                k: 2,
                options: crate::protocol::SearchOptions::default(),
            },
            0,
            false,
        );
        match resp {
            Response::Neighbors {
                table_version,
                index_generation,
                hits,
            } => {
                assert_eq!(table_version, 1);
                assert_eq!(index_generation, 1);
                assert_eq!(hits[0].key, "e2");
            }
            other => panic!("unexpected {other:?}"),
        }

        // By-key excludes the query entity; wrong dim is typed.
        let resp = e.handle(
            &Request::SearchNearestByKey {
                table: "emb".into(),
                key: "e3".into(),
                k: 2,
                options: crate::protocol::SearchOptions::default(),
            },
            0,
            false,
        );
        match resp {
            Response::Neighbors { hits, .. } => {
                assert!(hits.iter().all(|h| h.key != "e3"));
                assert_eq!(hits.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        let resp = e.handle(
            &Request::SearchNearest {
                table: "emb".into(),
                query: vec![0.0; 7],
                k: 1,
                options: crate::protocol::SearchOptions::default(),
            },
            0,
            false,
        );
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::DimensionMismatch,
                ..
            }
        ));

        // GetEmbedding rides the catalog's store and reports the version.
        let resp = e.handle(
            &Request::GetEmbedding {
                table: "emb".into(),
                key: "e1".into(),
            },
            0,
            false,
        );
        assert_eq!(
            resp,
            Response::Embedding {
                dim: 2,
                version: 1,
                epoch: 0,
                vector: vec![1.0, 0.0].into(),
            }
        );
        // Served straight from the store's shared row — no copy.
        if let Response::Embedding { vector, .. } = &resp {
            assert!(vector.is_shared());
        }
    }

    #[test]
    fn health_reflects_queue_and_drain_state() {
        let e = engine();
        let resp = e.handle(&Request::Health, 7, true);
        assert_eq!(
            resp,
            Response::Health {
                queue_depth: 7,
                draining: true
            }
        );
    }
}
