//! The TCP feature-serving server.
//!
//! Architecture (std threads only — no async runtime):
//!
//! ```text
//!   acceptor ──spawns──▶ connection threads (frame I/O, one per socket)
//!       │                        │ submit (admission: bounded, non-blocking)
//!       │                        ▼
//!       │               bounded crossbeam channel
//!       │                        │ recv + opportunistic drain
//!       │                        ▼
//!       └──────────────▶ worker pool (batch coalescing, FeatureServer /
//!                                     EmbeddingStore, metrics)
//! ```
//!
//! Connection threads never execute store code; they frame bytes and wait
//! on a per-request reply channel. Workers claim a job plus whatever else
//! is queued and coalesce compatible lookups into one batch serve.
//! Shutdown is graceful: admission flips to draining, open sockets are
//! shut down, and workers finish every admitted job before exiting.

use crate::admission::{AdmissionController, AdmitReject};
use crate::batch::{self, Job};
use crate::metrics::ServingMetrics;
use crate::protocol::{read_frame, write_frame, ErrorCode, Request, Response, WireVector};
use crossbeam::channel::{bounded, Receiver};
use fstore_common::{EntityKey, FsError, Timestamp};
use fstore_core::FeatureServer;
use fstore_embed::EmbeddingStore;
use parking_lot::{Mutex, RwLock};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded queue depth between connections and workers — the admission
    /// control limit. Submissions beyond this are shed as `Overloaded`.
    pub queue_depth: usize,
    /// Most jobs one worker claims per drain (batch ceiling).
    pub max_batch: usize,
    /// Artificial per-claim delay — fault injection for load-shedding
    /// tests and experiments. `None` in production configurations.
    pub handler_delay: Option<std::time::Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 256,
            max_batch: 32,
            handler_delay: None,
        }
    }
}

/// The clock requests are served at (the workspace simulates time; wall
/// clocks would make freshness nondeterministic).
pub type Clock = Arc<dyn Fn() -> Timestamp + Send + Sync>;

/// A clock pinned to one instant.
pub fn fixed_clock(now: Timestamp) -> Clock {
    Arc::new(move || now)
}

/// A clock backed by a shared atomic; advance it from outside the server.
pub fn atomic_clock(millis: Arc<AtomicI64>) -> Clock {
    Arc::new(move || Timestamp::millis(millis.load(Ordering::Acquire)))
}

/// Everything a worker needs to answer requests.
pub struct ServeEngine {
    server: FeatureServer,
    embeddings: Option<Arc<RwLock<EmbeddingStore>>>,
    clock: Clock,
}

impl ServeEngine {
    pub fn new(server: FeatureServer, clock: Clock) -> Self {
        ServeEngine {
            server,
            embeddings: None,
            clock,
        }
    }

    /// Attach an embedding catalog for `GetEmbedding`.
    pub fn with_embeddings(mut self, embeddings: Arc<RwLock<EmbeddingStore>>) -> Self {
        self.embeddings = Some(embeddings);
        self
    }

    /// Convenience for a catalog the server owns outright.
    pub fn with_embedding_catalog(self, catalog: EmbeddingStore) -> Self {
        self.with_embeddings(Arc::new(RwLock::new(catalog)))
    }

    pub fn now(&self) -> Timestamp {
        (self.clock)()
    }

    /// Answer one request. Total: every failure becomes a wire error.
    pub fn handle(&self, request: &Request, queue_depth: u32, draining: bool) -> Response {
        match request {
            Request::Health => Response::Health {
                queue_depth,
                draining,
            },
            Request::GetFeatures {
                group,
                entity,
                features,
            } => {
                let refs: Vec<&str> = features.iter().map(String::as_str).collect();
                match self
                    .server
                    .serve(group, &EntityKey::new(entity.clone()), &refs, self.now())
                {
                    Ok(v) => Response::Features(WireVector::from(&v)),
                    Err(e) => fs_error_response(&e),
                }
            }
            Request::GetFeaturesBatch {
                group,
                entities,
                features,
            } => {
                let keys: Vec<EntityKey> =
                    entities.iter().map(|e| EntityKey::new(e.clone())).collect();
                let refs: Vec<&str> = features.iter().map(String::as_str).collect();
                match self.server.serve_batch(group, &keys, &refs, self.now()) {
                    Ok(vs) => Response::FeaturesBatch(vs.iter().map(WireVector::from).collect()),
                    Err(e) => fs_error_response(&e),
                }
            }
            Request::GetEmbedding { table, key } => {
                let Some(embeddings) = &self.embeddings else {
                    return Response::error(
                        ErrorCode::NotFound,
                        "no embedding catalog attached to this server",
                    );
                };
                let catalog = embeddings.read();
                match catalog.resolve(table) {
                    Ok(version) => match version.table.get(key) {
                        Some(vector) => Response::Embedding {
                            dim: version.table.dim() as u32,
                            vector: vector.to_vec(),
                        },
                        None => Response::error(
                            ErrorCode::NotFound,
                            format!(
                                "key `{key}` not in embedding `{}`",
                                version.qualified_name()
                            ),
                        ),
                    },
                    Err(e) => fs_error_response(&e),
                }
            }
        }
    }
}

/// Map a store error onto a wire error code.
fn fs_error_response(e: &FsError) -> Response {
    let code = match e {
        FsError::NotFound { .. } => ErrorCode::NotFound,
        FsError::InvalidArgument(_) => ErrorCode::BadRequest,
        // The serving path's only Storage error is the FailOnStale refusal.
        FsError::Storage(_) => ErrorCode::Stale,
        _ => ErrorCode::Internal,
    };
    Response::error(code, e.to_string())
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts ungracefully (threads detach).
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<ServingMetrics>,
    admission: Option<AdmissionController>,
    draining: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conns: Arc<Mutex<Vec<(u64, TcpStream)>>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn metrics(&self) -> Arc<ServingMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Jobs admitted but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        self.admission
            .as_ref()
            .map_or(0, AdmissionController::queue_depth)
    }

    /// Graceful shutdown: refuse new work, finish every admitted job, then
    /// join the acceptor, all connection threads, and all workers.
    pub fn shutdown(mut self) {
        self.draining.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor thread panicked");
        }
        // Shut sockets down so connection threads fall out of read_frame.
        for (_, conn) in self.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let conn_threads: Vec<_> = std::mem::take(&mut *self.conn_threads.lock());
        for t in conn_threads {
            t.join().expect("connection thread panicked");
        }
        // Last senders go away here; workers drain the queue and exit.
        drop(self.admission.take());
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
    }
}

/// Bind, spawn the acceptor and worker pool, and return a handle.
pub fn start(engine: ServeEngine, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let metrics = Arc::new(ServingMetrics::new());
    let draining = Arc::new(AtomicBool::new(false));
    let (tx, rx) = bounded::<Job>(config.queue_depth.max(1));
    let admission = AdmissionController::new(tx, Arc::clone(&draining), Arc::clone(&metrics));
    let engine = Arc::new(engine);

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|i| {
            let rx = rx.clone();
            let engine = Arc::clone(&engine);
            let metrics = Arc::clone(&metrics);
            let draining = Arc::clone(&draining);
            let config = config.clone();
            std::thread::Builder::new()
                .name(format!("fstore-serve-worker-{i}"))
                .spawn(move || worker_loop(&rx, &engine, &metrics, &draining, &config))
                .expect("spawn worker")
        })
        .collect();

    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let conns: Arc<Mutex<Vec<(u64, TcpStream)>>> = Arc::new(Mutex::new(Vec::new()));

    let acceptor = {
        let draining = Arc::clone(&draining);
        let admission = admission.clone();
        let conn_threads = Arc::clone(&conn_threads);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("fstore-serve-acceptor".to_string())
            .spawn(move || {
                let mut next_conn_id: u64 = 0;
                for stream in listener.incoming() {
                    if draining.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Small request/response frames: Nagle + delayed ACK
                    // would add milliseconds per round trip.
                    let _ = stream.set_nodelay(true);
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    if let Ok(registered) = stream.try_clone() {
                        conns.lock().push((conn_id, registered));
                    }
                    let admission = admission.clone();
                    let draining = Arc::clone(&draining);
                    let conns = Arc::clone(&conns);
                    let handle = std::thread::Builder::new()
                        .name("fstore-serve-conn".to_string())
                        .spawn(move || {
                            connection_loop(stream, &admission, &draining);
                            // Deregister so the clone doesn't hold the fd
                            // open after the connection is done — the peer
                            // must see EOF, and dead sockets must not pile
                            // up until shutdown.
                            conns.lock().retain(|(id, _)| *id != conn_id);
                        })
                        .expect("spawn connection thread");
                    conn_threads.lock().push(handle);
                }
            })
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        addr,
        metrics,
        admission: Some(admission),
        draining,
        acceptor: Some(acceptor),
        workers,
        conn_threads,
        conns,
    })
}

/// Per-socket loop: read a frame, admit it, wait for the reply, write it.
fn connection_loop(mut stream: TcpStream, admission: &AdmissionController, draining: &AtomicBool) {
    let mut reader = match stream.try_clone() {
        Ok(s) => std::io::BufReader::new(s),
        Err(_) => return,
    };
    loop {
        if draining.load(Ordering::Acquire) {
            break;
        }
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) | Err(_) => break,
        };
        let response = match Request::decode(&payload) {
            Err(e) => Response::error(ErrorCode::BadRequest, e.to_string()),
            Ok(request) => {
                let (reply_tx, reply_rx) = bounded(1);
                let job = Job {
                    request,
                    reply: reply_tx,
                    accepted_at: Instant::now(),
                };
                match admission.submit(job) {
                    Ok(()) => match reply_rx.recv() {
                        Ok(response) => response,
                        Err(_) => {
                            Response::error(ErrorCode::Internal, "worker dropped the request")
                        }
                    },
                    Err(AdmitReject::Overloaded) => {
                        Response::error(ErrorCode::Overloaded, "serving queue is full")
                    }
                    Err(AdmitReject::Draining) => {
                        Response::error(ErrorCode::ShuttingDown, "server is draining")
                    }
                }
            }
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            break;
        }
    }
}

/// Worker: claim one job, drain the queue opportunistically, coalesce,
/// execute, reply, record.
fn worker_loop(
    rx: &Receiver<Job>,
    engine: &ServeEngine,
    metrics: &ServingMetrics,
    draining: &AtomicBool,
    config: &ServeConfig,
) {
    while let Ok(first) = rx.recv() {
        if let Some(delay) = config.handler_delay {
            std::thread::sleep(delay);
        }
        let jobs = batch::drain(rx, first, config.max_batch.max(1));
        let plan = batch::plan(jobs);
        let is_draining = draining.load(Ordering::Acquire);

        for batch in plan.batches {
            metrics.record_batch(batch.jobs.len());
            let keys: Vec<EntityKey> = batch
                .jobs
                .iter()
                .map(|j| match &j.request {
                    Request::GetFeatures { entity, .. } => EntityKey::new(entity.clone()),
                    _ => unreachable!("plan() only batches GetFeatures"),
                })
                .collect();
            let refs: Vec<&str> = batch.features.iter().map(String::as_str).collect();
            match engine
                .server
                .serve_batch(&batch.group, &keys, &refs, engine.now())
            {
                Ok(vectors) => {
                    for (job, vector) in batch.jobs.into_iter().zip(&vectors) {
                        finish(metrics, job, Response::Features(WireVector::from(vector)));
                    }
                }
                // A batch fails as a unit (e.g. FailOnStale tripped by one
                // member); re-serve singly to preserve per-request answers.
                Err(_) => {
                    for job in batch.jobs {
                        let response = engine.handle(&job.request, rx.len() as u32, is_draining);
                        finish(metrics, job, response);
                    }
                }
            }
        }
        for job in plan.singles {
            let response = engine.handle(&job.request, rx.len() as u32, is_draining);
            finish(metrics, job, response);
        }
    }
}

/// Reply and record one finished job.
fn finish(metrics: &ServingMetrics, job: Job, response: Response) {
    let ok = !matches!(response, Response::Error { .. });
    let latency_ms = job.accepted_at.elapsed().as_secs_f64() * 1e3;
    metrics.record(job.request.endpoint(), latency_ms, ok);
    // The connection may already be gone; its loss is not the worker's
    // problem.
    let _ = job.reply.send(response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::Value;
    use fstore_storage::OnlineStore;

    fn engine() -> ServeEngine {
        let online = Arc::new(OnlineStore::default());
        online.put(
            "user",
            &EntityKey::new("u1"),
            "score",
            Value::Float(0.5),
            Timestamp::millis(100),
        );
        ServeEngine::new(
            FeatureServer::new(online),
            fixed_clock(Timestamp::millis(1_000)),
        )
    }

    #[test]
    fn engine_serves_features_and_maps_missing_groups_to_nulls() {
        let e = engine();
        let resp = e.handle(
            &Request::GetFeatures {
                group: "user".into(),
                entity: "u1".into(),
                features: vec!["score".into()],
            },
            0,
            false,
        );
        match resp {
            Response::Features(v) => {
                assert_eq!(v.values, vec![Value::Float(0.5)]);
                assert_eq!(v.ages_ms, vec![Some(900)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn engine_reports_missing_embedding_catalog() {
        let e = engine();
        let resp = e.handle(
            &Request::GetEmbedding {
                table: "emb".into(),
                key: "k".into(),
            },
            0,
            false,
        );
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::NotFound,
                ..
            }
        ));
    }

    #[test]
    fn health_reflects_queue_and_drain_state() {
        let e = engine();
        let resp = e.handle(&Request::Health, 7, true);
        assert_eq!(
            resp,
            Response::Health {
                queue_depth: 7,
                draining: true
            }
        );
    }
}
