//! Client-side retries: jittered exponential backoff plus an
//! idempotency-aware classification of failures.
//!
//! The policy is deliberately split into pure functions —
//! [`RetryPolicy::backoff`] maps `(attempt, unit-uniform)` to a delay and
//! [`classify`] maps a [`ClientError`] to an [`ErrorClass`] — so property
//! tests can pin down the retry behaviour without sockets or sleeps. The
//! [`RetryingClient`] wrapper glues them to a real connection: it
//! reconnects after transport failures, backs off before every retry
//! (crucially including `Overloaded`, so a shedding server is never
//! hammered by its own rejects), and refuses to retry anything that is
//! not idempotent or not transient.

use crate::api::Transport;
use crate::client::{ClientConfig, ClientError, FeatureClient};
use crate::protocol::{ErrorCode, Request, Response};
use fstore_common::rng::{Rng, Xoshiro256};
use std::time::Duration;

/// How a failed call should be treated by a retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Connection-level trouble (I/O error, peer hang-up, undecodable
    /// bytes): the connection is poisoned, reconnect and retry.
    Transport,
    /// The server explicitly pushed back (`Overloaded`, `ShuttingDown`):
    /// retry, but only after backing off — retrying immediately feeds the
    /// very overload that caused the refusal.
    Backoff,
    /// A definitive answer (`NotFound`, `BadRequest`, dimension errors,
    /// an expired deadline budget, …): retrying cannot change it.
    Fatal,
}

/// Classify a client failure for retry purposes.
pub fn classify(error: &ClientError) -> ErrorClass {
    match error {
        ClientError::Io(_) | ClientError::ConnectionClosed | ClientError::Wire(_) => {
            ErrorClass::Transport
        }
        ClientError::Server { code, .. } => match code {
            ErrorCode::Overloaded | ErrorCode::ShuttingDown => ErrorClass::Backoff,
            _ => ErrorClass::Fatal,
        },
        ClientError::UnexpectedResponse(_) => ErrorClass::Fatal,
        // A fencing refusal is definitive for *this* endpoint — only a
        // router holding a fresher shard map can act on it.
        ClientError::NotLeader { .. } => ErrorClass::Fatal,
        // Already the sealed verdict on a non-idempotent request; retrying
        // it is exactly what the wrapper exists to prevent.
        ClientError::WriteFailed { .. } => ErrorClass::Fatal,
    }
}

/// Seal the failure of a non-idempotent request so no outer layer
/// blind-retries it: transport-class failures are wrapped in
/// [`ClientError::WriteFailed`] (classified [`ErrorClass::Fatal`]),
/// recording whether the request was ever dispatched — `dispatched =
/// false` (e.g. the connect failed) proves the write was not applied,
/// while a failure after dispatch leaves the outcome unknown. Idempotent
/// requests and typed server refusals (which prove non-application by
/// themselves) pass through untouched.
pub fn seal_write_failure(request: &Request, dispatched: bool, error: ClientError) -> ClientError {
    if request.is_idempotent() || classify(&error) != ErrorClass::Transport {
        return error;
    }
    ClientError::WriteFailed {
        applied: if dispatched { None } else { Some(false) },
        cause: Box::new(error),
    }
}

/// Server pushback hidden inside a *successful* wire exchange: on the
/// wire, `Overloaded` and `ShuttingDown` are ordinary `Response::Error`
/// frames, so a transport-level `call` returns them as `Ok`. Retry loops
/// must treat them as failures — otherwise a draining or shedding server
/// "answers" and the retry/breaker machinery never fires. Returns the
/// pushback as a [`ClientError::Server`] so it flows through [`classify`]
/// like any other failure; definitive errors (`NotFound`, …) return
/// `None` and pass through as responses.
pub fn pushback(response: &Response) -> Option<ClientError> {
    match response {
        Response::Error { code, message }
            if matches!(code, ErrorCode::Overloaded | ErrorCode::ShuttingDown) =>
        {
            Some(ClientError::Server {
                code: *code,
                message: message.clone(),
            })
        }
        _ => None,
    }
}

/// Jittered exponential backoff with a retry budget.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total tries including the first (so `1` disables retries).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_backoff: Duration,
    /// Growth factor per retry (≥ 1).
    pub multiplier: f64,
    /// Ceiling on any single delay.
    pub max_backoff: Duration,
    /// Fraction of the delay that jitter may subtract, in `[0, 1]`.
    /// `0.25` means each delay is uniform in `[0.75·d, d]` — spreading
    /// out retries from clients that failed at the same instant.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based), given a uniform
    /// draw `unit` in `[0, 1)` for jitter. Pure: the policy never touches
    /// a clock or an RNG itself.
    pub fn backoff(&self, attempt: u32, unit: f64) -> Duration {
        let unit = unit.clamp(0.0, 1.0);
        let jitter = self.jitter.clamp(0.0, 1.0);
        // Work in float seconds and cap before constructing the Duration:
        // multiplier^attempt overflows Duration arithmetic long before it
        // overflows f64 (which saturates harmlessly to infinity here).
        let exp = self
            .multiplier
            .max(1.0)
            .powi(attempt.min(i32::MAX as u32) as i32);
        let full_s = (self.base_backoff.as_secs_f64() * exp).min(self.max_backoff.as_secs_f64());
        let full = Duration::from_secs_f64(full_s).min(self.max_backoff);
        full.mul_f64(1.0 - jitter * unit)
    }

    /// The delay with jitter disabled — the upper envelope of
    /// [`RetryPolicy::backoff`], useful for bounding total retry time.
    pub fn backoff_ceiling(&self, attempt: u32) -> Duration {
        self.backoff(attempt, 0.0)
    }

    /// Whether a retry loop should try again: the request must be
    /// idempotent, the failure transient, and the budget not exhausted.
    /// `attempt` is 0-based (the try that just failed).
    pub fn should_retry(&self, request: &Request, error: &ClientError, attempt: u32) -> bool {
        request.is_idempotent()
            && attempt + 1 < self.max_attempts
            && classify(error) != ErrorClass::Fatal
    }
}

/// A [`FeatureClient`] wrapper that reconnects and retries per a
/// [`RetryPolicy`]. One endpoint only — for an ordered endpoint list with
/// circuit breakers see [`crate::failover::FailoverClient`].
pub struct RetryingClient {
    addr: String,
    config: ClientConfig,
    policy: RetryPolicy,
    conn: Option<FeatureClient>,
    rng: Xoshiro256,
    retries: u64,
}

impl RetryingClient {
    /// Prefer [`ClientBuilder`](crate::ClientBuilder) with a
    /// [`retry`](crate::ClientBuilder::retry) policy, which validates the
    /// policy before constructing the client.
    #[doc(hidden)]
    pub fn new(addr: impl Into<String>, config: ClientConfig, policy: RetryPolicy) -> Self {
        RetryingClient {
            addr: addr.into(),
            config,
            policy,
            conn: None,
            rng: Xoshiro256::seeded(0x5e77_1e5e_ed5e_ed00),
            retries: 0,
        }
    }

    /// Retries performed so far (not counting first attempts).
    pub fn retry_count(&self) -> u64 {
        self.retries
    }

    fn ensure_conn(&mut self) -> Result<&mut FeatureClient, ClientError> {
        if self.conn.is_none() {
            self.conn = Some(
                FeatureClient::connect_with(self.addr.as_str(), &self.config)
                    .map_err(ClientError::Io)?,
            );
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Send one request, retrying transient failures of idempotent
    /// requests with backoff. Non-idempotent requests get exactly one
    /// try on an established connection, and a transport failure of one
    /// comes back as [`ClientError::WriteFailed`] — `applied:
    /// Some(false)` when the connect itself failed (provably never
    /// dispatched), `applied: None` when the failure arrived after
    /// dispatch. Typed server pushback (`Overloaded`, `ShuttingDown`)
    /// counts as a transient failure even though it arrives as a
    /// well-formed response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut attempt: u32 = 0;
        loop {
            let (error, dispatched) = match self.ensure_conn() {
                Err(error) => (error, false),
                Ok(conn) => match conn.call(request) {
                    Ok(response) => match pushback(&response) {
                        Some(error) => (error, true),
                        None => return Ok(response),
                    },
                    Err(error) => {
                        if classify(&error) == ErrorClass::Transport {
                            // The stream may hold half a frame; never
                            // reuse it.
                            self.conn = None;
                        }
                        (error, true)
                    }
                },
            };
            if !self.policy.should_retry(request, &error, attempt) {
                return Err(seal_write_failure(request, dispatched, error));
            }
            let unit = self.rng.next_f64();
            std::thread::sleep(self.policy.backoff(attempt, unit));
            self.retries += 1;
            attempt += 1;
        }
    }

    /// Pipeline a batch of requests ([`FeatureClient::call_many`]) with
    /// the same reconnect-and-retry treatment as [`RetryingClient::call`].
    /// The batch is the retry unit: it is retried only when *every*
    /// request in it is idempotent (a transport failure mid-batch cannot
    /// say which requests already executed), and one typed pushback
    /// response fails the whole batch — responses are positional, so a
    /// partially-shed batch has no honest success value.
    pub fn call_many(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let retryable = requests.iter().all(Request::is_idempotent);
        let mut attempt: u32 = 0;
        loop {
            let (error, dispatched) = match self.ensure_conn() {
                Err(error) => (error, false),
                Ok(conn) => match conn.call_many(requests) {
                    Ok(responses) => match responses.iter().find_map(pushback) {
                        Some(error) => (error, true),
                        None => return Ok(responses),
                    },
                    Err(error) => {
                        if classify(&error) == ErrorClass::Transport {
                            self.conn = None;
                        }
                        (error, true)
                    }
                },
            };
            if !retryable
                || attempt + 1 >= self.policy.max_attempts
                || classify(&error) == ErrorClass::Fatal
            {
                // A batch holding any write gets the same sealed verdict
                // as a single write: never blind-retried, outcome typed.
                return Err(match requests.iter().find(|r| !r.is_idempotent()) {
                    Some(write) => seal_write_failure(write, dispatched, error),
                    None => error,
                });
            }
            let unit = self.rng.next_f64();
            std::thread::sleep(self.policy.backoff(attempt, unit));
            self.retries += 1;
            attempt += 1;
        }
    }
}

impl Transport for RetryingClient {
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        RetryingClient::call(self, request)
    }

    fn call_many(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        RetryingClient::call_many(self, requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err(code: ErrorCode) -> ClientError {
        ClientError::Server {
            code,
            message: String::new(),
        }
    }

    #[test]
    fn classification_matches_the_failure_table() {
        let io = ClientError::Io(std::io::Error::new(std::io::ErrorKind::TimedOut, "t"));
        assert_eq!(classify(&io), ErrorClass::Transport);
        assert_eq!(
            classify(&ClientError::ConnectionClosed),
            ErrorClass::Transport
        );
        assert_eq!(classify(&err(ErrorCode::Overloaded)), ErrorClass::Backoff);
        assert_eq!(classify(&err(ErrorCode::ShuttingDown)), ErrorClass::Backoff);
        assert_eq!(classify(&err(ErrorCode::NotFound)), ErrorClass::Fatal);
        assert_eq!(
            classify(&err(ErrorCode::DeadlineExceeded)),
            ErrorClass::Fatal
        );
        assert_eq!(
            classify(&ClientError::UnexpectedResponse("x")),
            ErrorClass::Fatal
        );
        assert_eq!(
            classify(&ClientError::NotLeader { current_term: 3 }),
            ErrorClass::Fatal
        );
        assert_eq!(
            classify(&ClientError::WriteFailed {
                applied: None,
                cause: Box::new(ClientError::ConnectionClosed),
            }),
            ErrorClass::Fatal
        );
    }

    #[test]
    fn write_failures_are_sealed_and_never_retried() {
        let write = Request::PutOnline {
            group: "g".into(),
            entity: "e".into(),
            values: vec![],
            term: 1,
        };
        // Connect failure: provably never dispatched.
        let refused = ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            "refused",
        ));
        let sealed = seal_write_failure(&write, false, refused);
        assert!(matches!(
            sealed,
            ClientError::WriteFailed {
                applied: Some(false),
                ..
            }
        ));
        // Failure after dispatch: outcome unknown.
        let sealed = seal_write_failure(&write, true, ClientError::ConnectionClosed);
        assert!(matches!(
            sealed,
            ClientError::WriteFailed { applied: None, .. }
        ));
        // The sealed verdict classifies Fatal, so no retry loop touches it.
        assert_eq!(classify(&sealed), ErrorClass::Fatal);
        assert!(!RetryPolicy::default().should_retry(&write, &sealed, 0));
        // A typed refusal proves non-application by itself: untouched.
        let not_leader = ClientError::NotLeader { current_term: 2 };
        assert!(matches!(
            seal_write_failure(&write, true, not_leader),
            ClientError::NotLeader { current_term: 2 }
        ));
        // Idempotent requests pass through unchanged.
        assert!(matches!(
            seal_write_failure(&Request::Health, true, ClientError::ConnectionClosed),
            ClientError::ConnectionClosed
        ));
    }

    #[test]
    fn pushback_surfaces_only_backoff_class_responses() {
        let shed = Response::error(ErrorCode::Overloaded, "queue full");
        let drain = Response::error(ErrorCode::ShuttingDown, "draining");
        for response in [&shed, &drain] {
            let error = pushback(response).expect("pushback is a failure");
            assert_eq!(classify(&error), ErrorClass::Backoff);
        }
        // Definitive errors and real answers pass through untouched.
        assert!(pushback(&Response::error(ErrorCode::NotFound, "nope")).is_none());
        assert!(pushback(&Response::Health {
            queue_depth: 0,
            draining: true
        })
        .is_none());
    }

    #[test]
    fn backoff_caps_at_the_ceiling() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_ceiling(30), policy.max_backoff);
    }

    #[test]
    fn exhausted_budget_stops_retrying() {
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let request = Request::Health;
        let overload = err(ErrorCode::Overloaded);
        assert!(policy.should_retry(&request, &overload, 0));
        assert!(!policy.should_retry(&request, &overload, 1));
    }
}
