//! Client-side failover across an ordered endpoint list.
//!
//! A [`FailoverClient`] holds the leader first and any followers after it.
//! Reads go to the healthiest endpoint in list order; each endpoint sits
//! behind its own [`CircuitBreaker`], so an endpoint that keeps failing is
//! taken out of rotation for a cooldown instead of eating a connect
//! timeout on every call. After the cooldown the breaker goes half-open
//! and admits a single probe: success closes the circuit, failure re-opens
//! it. Because followers converge to byte-identical snapshot answers
//! (PR 6's replication invariant), failing a read over to a follower can
//! change staleness but never correctness.
//!
//! The breaker takes `Instant`s as arguments rather than reading the
//! clock itself, which keeps the closed → open → half-open → closed walk
//! unit-testable without sleeps.

use crate::api::Transport;
use crate::client::{ClientConfig, ClientError, FeatureClient};
use crate::protocol::{Request, Response};
use crate::retry::{classify, ErrorClass, RetryPolicy};
use fstore_common::rng::{Rng, Xoshiro256};
use std::time::{Duration, Instant};

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker refuses traffic before allowing a
    /// half-open probe.
    pub open_cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(500),
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows, failures are counted.
    Closed,
    /// Tripped: traffic is refused until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe is in flight; its outcome
    /// decides between `Closed` and `Open`.
    HalfOpen,
}

/// A per-endpoint circuit breaker (closed → open → half-open → closed).
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    consecutive_failures: u32,
    /// `Some(when)` while open/half-open: the instant the breaker tripped.
    opened_at: Option<Instant>,
    /// True while a half-open probe is outstanding.
    probing: bool,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            consecutive_failures: 0,
            opened_at: None,
            probing: false,
        }
    }

    /// The state as of `now`.
    pub fn state(&self, now: Instant) -> BreakerState {
        match self.opened_at {
            None => BreakerState::Closed,
            Some(at) if now.duration_since(at) >= self.config.open_cooldown => {
                BreakerState::HalfOpen
            }
            Some(_) => BreakerState::Open,
        }
    }

    /// Whether a call may proceed at `now`. Half-open admits only one
    /// probe at a time; callers that get `true` must report the outcome
    /// via [`CircuitBreaker::record_success`] / [`CircuitBreaker::record_failure`].
    pub fn allow(&mut self, now: Instant) -> bool {
        match self.state(now) {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probing {
                    false
                } else {
                    self.probing = true;
                    true
                }
            }
        }
    }

    /// A call succeeded: close the circuit and forget past failures.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.opened_at = None;
        self.probing = false;
    }

    /// A call failed at `now`: count it, trip the breaker at the
    /// threshold, and re-open on a failed half-open probe.
    pub fn record_failure(&mut self, now: Instant) {
        self.probing = false;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= self.config.failure_threshold || self.opened_at.is_some() {
            // Tripping (or re-tripping after a failed probe) restarts the
            // cooldown from this failure.
            self.opened_at = Some(now);
        }
    }

    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }
}

struct Endpoint {
    addr: String,
    breaker: CircuitBreaker,
    conn: Option<FeatureClient>,
}

/// Counters a chaos experiment reads to show the failover actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailoverStats {
    /// Calls answered by an endpoint other than the first (the leader).
    pub failed_over_calls: u64,
    /// Retries across all endpoints (beyond each call's first attempt).
    pub retries: u64,
    /// Calls that exhausted every endpoint and the retry budget.
    pub exhausted_calls: u64,
}

/// A client over an ordered endpoint list with per-endpoint circuit
/// breakers and retry/backoff between rounds.
pub struct FailoverClient {
    endpoints: Vec<Endpoint>,
    config: ClientConfig,
    policy: RetryPolicy,
    breaker_config: BreakerConfig,
    rng: Xoshiro256,
    stats: FailoverStats,
}

impl FailoverClient {
    /// `addrs` in preference order — leader first, then followers. Prefer
    /// [`ClientBuilder`](crate::ClientBuilder) with several endpoints,
    /// which validates the policy and breaker config first.
    #[doc(hidden)]
    pub fn connect(
        addrs: &[&str],
        config: ClientConfig,
        policy: RetryPolicy,
        breaker_config: BreakerConfig,
    ) -> Self {
        assert!(
            !addrs.is_empty(),
            "FailoverClient needs at least one endpoint"
        );
        FailoverClient {
            endpoints: addrs
                .iter()
                .map(|addr| Endpoint {
                    addr: addr.to_string(),
                    breaker: CircuitBreaker::new(breaker_config),
                    conn: None,
                })
                .collect(),
            config,
            policy,
            breaker_config,
            rng: Xoshiro256::seeded(0xfa11_04e2_9e37_79b9),
            stats: FailoverStats::default(),
        }
    }

    pub fn stats(&self) -> FailoverStats {
        self.stats
    }

    /// The breaker state of endpoint `i` (list order), for tests and
    /// experiment assertions.
    pub fn breaker_state(&self, i: usize, now: Instant) -> BreakerState {
        self.endpoints[i].breaker.state(now)
    }

    /// Pick the healthiest endpoint that will accept a call right now:
    /// first closed breaker in list order, else first half-open breaker
    /// willing to probe.
    fn pick(&mut self, now: Instant) -> Option<usize> {
        let closed = self
            .endpoints
            .iter()
            .position(|e| e.breaker.state(now) == BreakerState::Closed);
        if let Some(i) = closed {
            // Closed breakers always allow.
            self.endpoints[i].breaker.allow(now);
            return Some(i);
        }
        (0..self.endpoints.len()).find(|&i| self.endpoints[i].breaker.allow(now))
    }

    /// Run `op` against endpoint `i`'s connection, establishing it first
    /// if needed and poisoning it on a transport-class failure (the
    /// stream may hold half a frame; never reuse it). The error side
    /// carries whether the request was ever dispatched: a connect failure
    /// proves the peer saw nothing, which is what lets a write failure be
    /// sealed as provably-not-applied.
    fn with_endpoint<T>(
        &mut self,
        i: usize,
        op: impl FnOnce(&mut FeatureClient) -> Result<T, ClientError>,
    ) -> Result<T, (ClientError, bool)> {
        let config = self.config.clone();
        let endpoint = &mut self.endpoints[i];
        if endpoint.conn.is_none() {
            match FeatureClient::connect_with(endpoint.addr.as_str(), &config) {
                Ok(conn) => endpoint.conn = Some(conn),
                Err(e) => return Err((ClientError::Io(e), false)),
            }
        }
        let result = op(endpoint.conn.as_mut().expect("just connected"));
        result.map_err(|e| {
            if classify(&e) == ErrorClass::Transport {
                endpoint.conn = None;
            }
            (e, true)
        })
    }

    /// The shared endpoint walk behind [`FailoverClient::call`] and
    /// [`FailoverClient::call_many`]: pick the healthiest endpoint, run
    /// `op` against it, and classify the outcome. A definitive answer
    /// (including a typed fatal error) returns immediately; transport
    /// failures and typed pushback (`Overloaded`, `ShuttingDown` —
    /// well-formed responses on the wire, but refusals all the same) trip
    /// the breaker and move on, retrying with backoff while `retryable`
    /// and the attempt budget allow.
    fn run<T>(
        &mut self,
        retryable: bool,
        mut op: impl FnMut(&mut FeatureClient) -> Result<T, ClientError>,
        outcome_pushback: impl Fn(&T) -> Option<ClientError>,
        seal: impl Fn(bool, ClientError) -> ClientError,
    ) -> Result<T, ClientError> {
        let mut attempt: u32 = 0;
        let mut last_err: Option<(ClientError, bool)> = None;
        loop {
            let now = Instant::now();
            match self.pick(now) {
                Some(i) => match self.with_endpoint(i, &mut op) {
                    Ok(value) => match outcome_pushback(&value) {
                        Some(error) => {
                            self.endpoints[i].breaker.record_failure(Instant::now());
                            last_err = Some((error, true));
                        }
                        None => {
                            self.endpoints[i].breaker.record_success();
                            if i != 0 {
                                self.stats.failed_over_calls += 1;
                            }
                            return Ok(value);
                        }
                    },
                    Err((error, dispatched)) => {
                        self.endpoints[i].breaker.record_failure(Instant::now());
                        if classify(&error) == ErrorClass::Fatal {
                            // A definitive server answer; another endpoint
                            // would (byte-identically) say the same.
                            return Err(error);
                        }
                        last_err = Some((error, dispatched));
                    }
                },
                None => {
                    // Every breaker is open; treat it like a shed and back
                    // off until a cooldown admits a probe. Nothing was
                    // dispatched this round.
                    if last_err.is_none() {
                        last_err = Some((
                            ClientError::Io(std::io::Error::new(
                                std::io::ErrorKind::ConnectionRefused,
                                "all endpoints circuit-broken",
                            )),
                            false,
                        ));
                    }
                }
            }
            if !retryable || attempt + 1 >= self.policy.max_attempts {
                self.stats.exhausted_calls += 1;
                let (error, dispatched) =
                    last_err.expect("loop always records an error before exiting");
                return Err(seal(dispatched, error));
            }
            let unit = self.rng.next_f64();
            std::thread::sleep(self.policy.backoff(attempt, unit));
            self.stats.retries += 1;
            attempt += 1;
        }
    }

    /// Send one request, walking endpoints healthiest-first with retries
    /// and backoff (the private `run` loop holds the outcome rules).
    /// Non-idempotent requests get exactly one attempt, and a transport
    /// failure of one is sealed as [`ClientError::WriteFailed`] (see
    /// [`crate::retry::seal_write_failure`]).
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.run(
            request.is_idempotent(),
            |conn| conn.call(request),
            crate::retry::pushback,
            |dispatched, error| crate::retry::seal_write_failure(request, dispatched, error),
        )
    }

    /// Pipeline a batch on the healthiest endpoint
    /// ([`FeatureClient::call_many`]) with the same endpoint walk as
    /// [`FailoverClient::call`]. The batch is the retry unit: it moves to
    /// another endpoint only when *every* request in it is idempotent,
    /// and one typed pushback response fails (and re-routes) the whole
    /// batch — responses are positional, so a partially-shed batch has no
    /// honest success value.
    pub fn call_many(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let write = requests.iter().find(|r| !r.is_idempotent());
        self.run(
            write.is_none(),
            |conn| conn.call_many(requests),
            |responses| responses.iter().find_map(crate::retry::pushback),
            |dispatched, error| match write {
                Some(w) => crate::retry::seal_write_failure(w, dispatched, error),
                None => error,
            },
        )
    }

    /// Expose the breaker config (tests construct matching breakers).
    pub fn breaker_config(&self) -> BreakerConfig {
        self.breaker_config
    }

    /// The current endpoint list, in preference order.
    pub fn endpoints(&self) -> Vec<String> {
        self.endpoints.iter().map(|e| e.addr.clone()).collect()
    }

    /// Replace the endpoint list (leader first). Endpoints that stay in
    /// the list keep their live connection and breaker history; new ones
    /// start with a fresh closed breaker. The shard router calls this when
    /// the control plane publishes a new shard map — e.g. after a
    /// promotion rotates a dead leader behind its followers.
    pub fn set_endpoints(&mut self, addrs: &[&str]) {
        assert!(
            !addrs.is_empty(),
            "FailoverClient needs at least one endpoint"
        );
        let mut old: Vec<Endpoint> = std::mem::take(&mut self.endpoints);
        self.endpoints = addrs
            .iter()
            .map(|addr| match old.iter().position(|e| e.addr == *addr) {
                Some(i) => old.swap_remove(i),
                None => Endpoint {
                    addr: addr.to_string(),
                    breaker: CircuitBreaker::new(self.breaker_config),
                    conn: None,
                },
            })
            .collect();
    }
}

impl Transport for FailoverClient {
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        FailoverClient::call(self, request)
    }

    fn call_many(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        FailoverClient::call_many(self, requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn walks_closed_open_half_open_closed() {
        let t0 = Instant::now();
        let mut b = breaker(2, 100);
        assert_eq!(b.state(t0), BreakerState::Closed);
        assert!(b.allow(t0));
        b.record_failure(t0);
        assert_eq!(
            b.state(t0),
            BreakerState::Closed,
            "one failure under threshold"
        );
        b.record_failure(t0);
        assert_eq!(
            b.state(t0),
            BreakerState::Open,
            "threshold trips the breaker"
        );
        assert!(!b.allow(t0), "open refuses traffic");

        let later = t0 + Duration::from_millis(100);
        assert_eq!(b.state(later), BreakerState::HalfOpen);
        assert!(b.allow(later), "half-open admits one probe");
        assert!(!b.allow(later), "…but only one");
        b.record_success();
        assert_eq!(b.state(later), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn failed_probe_reopens_with_a_fresh_cooldown() {
        let t0 = Instant::now();
        let mut b = breaker(1, 100);
        b.record_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Open);

        let probe_at = t0 + Duration::from_millis(150);
        assert!(b.allow(probe_at));
        b.record_failure(probe_at);
        assert_eq!(
            b.state(probe_at + Duration::from_millis(60)),
            BreakerState::Open,
            "cooldown restarts from the failed probe, not the original trip"
        );
        assert_eq!(
            b.state(probe_at + Duration::from_millis(100)),
            BreakerState::HalfOpen
        );
    }

    #[test]
    fn success_resets_the_failure_count() {
        let t0 = Instant::now();
        let mut b = breaker(3, 100);
        b.record_failure(t0);
        b.record_failure(t0);
        b.record_success();
        b.record_failure(t0);
        assert_eq!(
            b.state(t0),
            BreakerState::Closed,
            "streak broken by a success never trips"
        );
    }
}
