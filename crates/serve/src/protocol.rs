//! The wire protocol: a compact length-prefixed binary encoding for
//! feature-serving requests and responses.
//!
//! Framing is a 4-byte big-endian payload length followed by the payload;
//! frames above [`MAX_FRAME_LEN`] are rejected before allocation so a
//! corrupt or hostile peer cannot balloon server memory. Payloads are
//! tag-prefixed structs: `u8` discriminant, then fields in order. Strings
//! and sequences carry a `u32` length. All integers are big-endian.
//!
//! Decoding is total: every error is a typed [`WireError`], never a panic,
//! and a payload must be consumed exactly (trailing bytes are an error) so
//! a round-trip is byte-identical. The byte-level primitives live in
//! [`crate::codec`]; this module defines the request/response grammar on
//! top of them. Hot paths encode with [`Request::encode_into`] /
//! [`Response::encode_into`] into pooled buffers and write frames with
//! [`write_frame`]'s vectored path, so a serialized frame is never
//! memcpy'd again before the socket.

use crate::codec::{put_str, put_str_seq, Reader};
use bytes::{BufMut, Bytes, BytesMut};
use fstore_common::{ComponentKind, DeltaRecord, Duration, Timestamp, Value, VectorBuf};
use fstore_core::FeatureVector;
use std::io::Read;

pub use crate::codec::{
    write_frame_vectored, FrameEvent, FramePool, FrameReader, OwnedFrameEvent, WireError,
    MAX_FRAME_LEN,
};

/// Why a request was refused, carried on the wire inside
/// [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed or unsupported request.
    BadRequest = 1,
    /// Entity group, embedding table, or key does not exist.
    NotFound = 2,
    /// The staleness policy refused to serve over-age features.
    Stale = 3,
    /// Admission control shed the request: the queue is full.
    Overloaded = 4,
    /// The server is draining and no longer admits work.
    ShuttingDown = 5,
    /// Anything else that went wrong while handling the request.
    Internal = 6,
    /// No ANN index snapshot is live for the requested table (not built
    /// yet, or still building for the first time).
    IndexNotReady = 7,
    /// The query vector's dimension does not match the index.
    DimensionMismatch = 8,
    /// The request's deadline budget expired before a worker reached it;
    /// the server shed it unexecuted rather than burn a worker on an
    /// answer nobody is waiting for.
    DeadlineExceeded = 9,
    /// The request frame's declared length exceeds the server's
    /// configured per-request ceiling.
    FrameTooLarge = 10,
    /// A write (or admin request) carried a leader term this node cannot
    /// honour: either the node was never promoted for the shard, or the
    /// term does not match its current one. The message is always
    /// `current_term=N` so clients recover the node's term in typed form
    /// ([`ClientError::NotLeader`]) and re-route through a fresh map.
    ///
    /// [`ClientError::NotLeader`]: crate::ClientError::NotLeader
    NotLeader = 11,
}

impl ErrorCode {
    fn from_u8(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::NotFound,
            3 => ErrorCode::Stale,
            4 => ErrorCode::Overloaded,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::Internal,
            7 => ErrorCode::IndexNotReady,
            8 => ErrorCode::DimensionMismatch,
            9 => ErrorCode::DeadlineExceeded,
            10 => ErrorCode::FrameTooLarge,
            11 => ErrorCode::NotLeader,
            tag => {
                return Err(WireError::BadTag {
                    ty: "ErrorCode",
                    tag,
                })
            }
        })
    }
}

/// Per-query ANN search knobs in wire form; `0` means "use the index's
/// configured default". Mirrors [`fstore_index::SearchParams`] but stays
/// fixed-width and totally ordered so batch coalescing can key on it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SearchOptions {
    /// HNSW beam width (0 = index default).
    pub ef: u32,
    /// IVF cells scanned (0 = index default).
    pub nprobe: u32,
    /// Force an exact scan regardless of index family.
    pub exhaustive: bool,
}

impl SearchOptions {
    /// The engine-side param struct this wire form denotes.
    pub fn to_params(self) -> fstore_index::SearchParams {
        fstore_index::SearchParams {
            ef: (self.ef > 0).then_some(self.ef as usize),
            nprobe: (self.nprobe > 0).then_some(self.nprobe as usize),
            exhaustive: self.exhaustive,
        }
    }

    fn encode(self, buf: &mut BytesMut) {
        buf.put_u32(self.ef);
        buf.put_u32(self.nprobe);
        buf.put_u8(u8::from(self.exhaustive));
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SearchOptions {
            ef: r.take_u32()?,
            nprobe: r.take_u32()?,
            exhaustive: r.take_u8()? != 0,
        })
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; also reports queue depth.
    Health,
    /// One entity's feature vector from a group.
    GetFeatures {
        group: String,
        entity: String,
        features: Vec<String>,
    },
    /// Many entities, same group and feature list (batch scoring).
    GetFeaturesBatch {
        group: String,
        entities: Vec<String>,
        features: Vec<String>,
    },
    /// One embedding vector; `table` is `"name"` (latest) or `"name@vN"`.
    GetEmbedding { table: String, key: String },
    /// `k` nearest stored entities to an explicit query vector, via the
    /// server's ANN index snapshot for `table`.
    SearchNearest {
        table: String,
        query: Vec<f32>,
        k: u32,
        options: SearchOptions,
    },
    /// `k` nearest stored entities to the vector stored under `key`
    /// (the key itself is excluded from the hits).
    SearchNearestByKey {
        table: String,
        key: String,
        k: u32,
        options: SearchOptions,
    },
    /// Replication: probe the leader's publication-log state (a follower's
    /// first call, and its heartbeat).
    ReplSubscribe,
    /// Replication: full state snapshot for follower bootstrap.
    ReplSnapshot,
    /// Replication: every publication strictly after sequence number
    /// `from_epoch` (the replication epoch the follower has applied).
    ReplDeltas { from_epoch: u64 },
    /// A deadline budget wrapped around another request: the client gives
    /// the server `budget_ms` from admission to finish the inner request;
    /// a worker that dequeues it after the budget lapsed sheds it with
    /// [`ErrorCode::DeadlineExceeded`] instead of executing it. Wrappers
    /// never nest.
    WithDeadline { budget_ms: u32, inner: Box<Request> },
    /// Write one entity's online features, fenced by a leader term: the
    /// server applies the row only when `term` equals its current term
    /// (and it holds a write provider), answering [`Response::PutAck`]
    /// after the write reaches the WAL commit point; any term mismatch is
    /// refused with [`ErrorCode::NotLeader`]. Non-idempotent: clients
    /// never blind-retry it.
    PutOnline {
        group: String,
        entity: String,
        values: Vec<(String, Value)>,
        term: u64,
    },
    /// Admin (control plane → data plane): become the write leader for
    /// `shard` at leader term `term`. A follower stops syncing and wraps
    /// its replicated components in a fresh leader; a node already leading
    /// at `term` or above answers idempotently. A stale `term` is refused
    /// with [`ErrorCode::NotLeader`].
    Promote { shard: u32, term: u64 },
    /// Admin (control plane → data plane): fence this node for `shard` at
    /// `term` — drop any write provider and refuse every write below (or
    /// at) the fenced term from now on. Sent to demoted endpoints after a
    /// promotion so a revived zombie leader cannot accept stale-term
    /// writes. Idempotent for equal-or-lower terms.
    Demote { shard: u32, term: u64 },
}

impl Request {
    /// Endpoint label for metrics.
    pub fn endpoint(&self) -> crate::metrics::Endpoint {
        use crate::metrics::Endpoint;
        match self {
            Request::Health => Endpoint::Health,
            Request::GetFeatures { .. } => Endpoint::GetFeatures,
            Request::GetFeaturesBatch { .. } => Endpoint::GetFeaturesBatch,
            Request::GetEmbedding { .. } => Endpoint::GetEmbedding,
            Request::SearchNearest { .. } => Endpoint::SearchNearest,
            Request::SearchNearestByKey { .. } => Endpoint::SearchNearestByKey,
            Request::ReplSubscribe => Endpoint::ReplSubscribe,
            Request::ReplSnapshot => Endpoint::ReplSnapshot,
            Request::ReplDeltas { .. } => Endpoint::ReplDeltas,
            Request::WithDeadline { inner, .. } => inner.endpoint(),
            Request::PutOnline { .. } => Endpoint::PutOnline,
            Request::Promote { .. } | Request::Demote { .. } => Endpoint::Promote,
        }
    }

    /// Whether re-sending this request cannot change server state — the
    /// precondition for a client to retry it on another connection or
    /// endpoint. Reads are idempotent; [`Request::PutOnline`] mutates the
    /// online store and [`Request::Promote`]/[`Request::Demote`] mutate a
    /// node's leadership, so none of them is ever blind-retried.
    pub fn is_idempotent(&self) -> bool {
        match self {
            Request::Health
            | Request::GetFeatures { .. }
            | Request::GetFeaturesBatch { .. }
            | Request::GetEmbedding { .. }
            | Request::SearchNearest { .. }
            | Request::SearchNearestByKey { .. }
            | Request::ReplSubscribe
            | Request::ReplSnapshot
            | Request::ReplDeltas { .. } => true,
            Request::WithDeadline { inner, .. } => inner.is_idempotent(),
            Request::PutOnline { .. } | Request::Promote { .. } | Request::Demote { .. } => false,
        }
    }

    /// Encode into a fresh buffer. Hot paths prefer
    /// [`encode_into`](Request::encode_into) with a pooled buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Append this request's payload to `buf` (typically a pooled,
    /// cleared [`BytesMut`]), so the bytes can be written out vectored
    /// and the buffer reused without ever freezing it.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Request::Health => buf.put_u8(0),
            Request::GetFeatures {
                group,
                entity,
                features,
            } => {
                buf.put_u8(1);
                put_str(buf, group);
                put_str(buf, entity);
                put_str_seq(buf, features);
            }
            Request::GetFeaturesBatch {
                group,
                entities,
                features,
            } => {
                buf.put_u8(2);
                put_str(buf, group);
                put_str_seq(buf, entities);
                put_str_seq(buf, features);
            }
            Request::GetEmbedding { table, key } => {
                buf.put_u8(3);
                put_str(buf, table);
                put_str(buf, key);
            }
            Request::SearchNearest {
                table,
                query,
                k,
                options,
            } => {
                buf.put_u8(4);
                put_str(buf, table);
                buf.put_u32(query.len() as u32);
                for &x in query {
                    buf.put_f32(x);
                }
                buf.put_u32(*k);
                options.encode(buf);
            }
            Request::SearchNearestByKey {
                table,
                key,
                k,
                options,
            } => {
                buf.put_u8(5);
                put_str(buf, table);
                put_str(buf, key);
                buf.put_u32(*k);
                options.encode(buf);
            }
            Request::ReplSubscribe => buf.put_u8(6),
            Request::ReplSnapshot => buf.put_u8(7),
            Request::ReplDeltas { from_epoch } => {
                buf.put_u8(8);
                buf.put_u64(*from_epoch);
            }
            Request::WithDeadline { budget_ms, inner } => {
                buf.put_u8(9);
                buf.put_u32(*budget_ms);
                inner.encode_into(buf);
            }
            Request::PutOnline {
                group,
                entity,
                values,
                term,
            } => {
                buf.put_u8(10);
                buf.put_u64(*term);
                put_str(buf, group);
                put_str(buf, entity);
                buf.put_u32(values.len() as u32);
                for (feature, value) in values {
                    put_str(buf, feature);
                    put_value(buf, value);
                }
            }
            Request::Promote { shard, term } => {
                buf.put_u8(11);
                buf.put_u32(*shard);
                buf.put_u64(*term);
            }
            Request::Demote { shard, term } => {
                buf.put_u8(12);
                buf.put_u32(*shard);
                buf.put_u64(*term);
            }
        }
    }

    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let request = Self::decode_tagged(&mut r, true)?;
        r.finish()?;
        Ok(request)
    }

    /// Decode one tagged request. `allow_deadline` is false inside a
    /// [`Request::WithDeadline`] body: wrappers never nest, so a nested
    /// tag is a [`WireError::BadTag`], not a stack hazard.
    fn decode_tagged(r: &mut Reader<'_>, allow_deadline: bool) -> Result<Self, WireError> {
        let request = match r.take_u8()? {
            0 => Request::Health,
            1 => Request::GetFeatures {
                group: r.take_str()?,
                entity: r.take_str()?,
                features: r.take_str_seq()?,
            },
            2 => Request::GetFeaturesBatch {
                group: r.take_str()?,
                entities: r.take_str_seq()?,
                features: r.take_str_seq()?,
            },
            3 => Request::GetEmbedding {
                table: r.take_str()?,
                key: r.take_str()?,
            },
            4 => Request::SearchNearest {
                table: r.take_str()?,
                query: r.take_f32_seq()?,
                k: r.take_u32()?,
                options: SearchOptions::decode(r)?,
            },
            5 => Request::SearchNearestByKey {
                table: r.take_str()?,
                key: r.take_str()?,
                k: r.take_u32()?,
                options: SearchOptions::decode(r)?,
            },
            6 => Request::ReplSubscribe,
            7 => Request::ReplSnapshot,
            8 => Request::ReplDeltas {
                from_epoch: r.take_u64()?,
            },
            9 if allow_deadline => Request::WithDeadline {
                budget_ms: r.take_u32()?,
                inner: Box::new(Self::decode_tagged(r, false)?),
            },
            10 => {
                let term = r.take_u64()?;
                let group = r.take_str()?;
                let entity = r.take_str()?;
                let n = r.take_len()?;
                let mut values = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let feature = r.take_str()?;
                    values.push((feature, take_value(r)?));
                }
                Request::PutOnline {
                    group,
                    entity,
                    values,
                    term,
                }
            }
            11 => Request::Promote {
                shard: r.take_u32()?,
                term: r.take_u64()?,
            },
            12 => Request::Demote {
                shard: r.take_u32()?,
                term: r.take_u64()?,
            },
            tag => return Err(WireError::BadTag { ty: "Request", tag }),
        };
        Ok(request)
    }
}

/// A served feature vector in wire form (ages in milliseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct WireVector {
    pub entity: String,
    pub features: Vec<String>,
    pub values: Vec<Value>,
    pub ages_ms: Vec<Option<i64>>,
    pub stale: Vec<String>,
    /// The store publication epoch the vector was served at. Every member
    /// of a batch carries the same epoch (the server resolves it once per
    /// batch), so clients can assert a response is internally consistent.
    pub epoch: u64,
}

impl From<&FeatureVector> for WireVector {
    fn from(v: &FeatureVector) -> Self {
        WireVector {
            entity: v.entity.0.clone(),
            features: v.features.clone(),
            values: v.values.clone(),
            ages_ms: v.ages.iter().map(|a| a.map(Duration::as_millis)).collect(),
            stale: v.stale.clone(),
            epoch: v.epoch.as_u64(),
        }
    }
}

/// One nearest-neighbour hit on the wire: entity key plus squared-L2
/// distance, ascending by distance within a [`Response::Neighbors`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireHit {
    pub key: String,
    pub distance: f32,
}

/// One publication delta on the wire — the transport form of a
/// [`DeltaRecord`] from the leader's publication log. The component rides as
/// its stable `u8` tag; unknown tags are rejected at decode time.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDelta {
    /// Leader-wide replication sequence number.
    pub seq: u64,
    /// Which component published.
    pub component: ComponentKind,
    /// Component cell epoch the publication was stamped with.
    pub component_epoch: u64,
    /// Component-defined serialized payload.
    pub body: String,
}

impl From<&DeltaRecord> for WireDelta {
    fn from(r: &DeltaRecord) -> Self {
        WireDelta {
            seq: r.seq,
            component: r.component,
            component_epoch: r.component_epoch,
            body: r.body.clone(),
        }
    }
}

impl WireDelta {
    /// Back to the log-side record form.
    pub fn to_record(&self) -> DeltaRecord {
        DeltaRecord {
            seq: self.seq,
            component: self.component,
            component_epoch: self.component_epoch,
            body: self.body.clone(),
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.seq);
        buf.put_u8(self.component.as_u8());
        buf.put_u64(self.component_epoch);
        put_str(buf, &self.body);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let seq = r.take_u64()?;
        let tag = r.take_u8()?;
        let component = ComponentKind::from_u8(tag).ok_or(WireError::BadTag {
            ty: "ComponentKind",
            tag,
        })?;
        Ok(WireDelta {
            seq,
            component,
            component_epoch: r.take_u64()?,
            body: r.take_str()?,
        })
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Health {
        queue_depth: u32,
        draining: bool,
    },
    Features(WireVector),
    FeaturesBatch(Vec<WireVector>),
    /// One embedding vector plus the table version it was served from, so
    /// clients can detect cross-version reads during snapshot swaps (§4's
    /// "dot product loses meaning" hazard). `epoch` is the embedding
    /// store's publication epoch at serve time — version and vector come
    /// from that single snapshot. The vector is a [`VectorBuf`] so the
    /// server encodes straight from the store's shared row (or the tier
    /// cache's block) without a per-request copy; the wire bytes are
    /// unchanged from the `Vec<f32>` era (pinned by the golden frames).
    Embedding {
        dim: u32,
        version: u32,
        epoch: u64,
        vector: VectorBuf,
    },
    /// Nearest-neighbour hits, stamped with the embedding-table version
    /// the index snapshot was built from and the snapshot's generation
    /// counter (the catalog's publication epoch) — enough for a client to
    /// notice a mid-stream index swap.
    Neighbors {
        table_version: u32,
        index_generation: u64,
        hits: Vec<WireHit>,
    },
    Error {
        code: ErrorCode,
        message: String,
    },
    /// Replication: the leader's publication-log state, answering
    /// [`Request::ReplSubscribe`].
    ReplState {
        /// Sequence number of the leader's most recent publication.
        leader_epoch: u64,
        /// Oldest sequence number the delta ring still retains.
        oldest_retained: u64,
        /// The ring's retention bound (number of records).
        retention: u32,
    },
    /// Replication: a full state snapshot (opaque, `fstore-repl`-encoded)
    /// captured at replication epoch `repl_epoch`. The payload is [`Bytes`]
    /// so a snapshot decoded from an owned frame
    /// ([`Response::decode_frame`]) aliases that frame instead of copying
    /// multiple megabytes.
    ReplSnapshot {
        repl_epoch: u64,
        payload: Bytes,
    },
    /// Replication: publications after the requested epoch. `lagged` means
    /// the follower fell past the retention window and `deltas` is empty —
    /// it must re-bootstrap via [`Request::ReplSnapshot`].
    ReplDeltas {
        leader_epoch: u64,
        lagged: bool,
        deltas: Vec<WireDelta>,
    },
    /// A fenced write (or admin request) was accepted. For
    /// [`Request::PutOnline`], `epoch` is the replication sequence number
    /// the write committed at (it is in the WAL before this frame leaves
    /// the server) and `term` echoes the leader term it was accepted
    /// under; for `Promote`/`Demote`, `epoch` is 0 and `term` is the
    /// node's term after the transition.
    PutAck {
        epoch: u64,
        term: u64,
    },
}

impl Response {
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Self {
        Response::Error {
            code,
            message: message.into(),
        }
    }

    /// Encode into a fresh buffer. Hot paths prefer
    /// [`encode_into`](Response::encode_into) with a pooled buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Append this response's payload to `buf` (typically a pooled,
    /// cleared [`BytesMut`]).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Response::Health {
                queue_depth,
                draining,
            } => {
                buf.put_u8(0);
                buf.put_u32(*queue_depth);
                buf.put_u8(u8::from(*draining));
            }
            Response::Features(v) => {
                buf.put_u8(1);
                put_vector(buf, v);
            }
            Response::FeaturesBatch(vs) => {
                buf.put_u8(2);
                buf.put_u32(vs.len() as u32);
                for v in vs {
                    put_vector(buf, v);
                }
            }
            Response::Embedding {
                dim,
                version,
                epoch,
                vector,
            } => {
                buf.put_u8(3);
                buf.put_u32(*dim);
                buf.put_u32(*version);
                buf.put_u64(*epoch);
                buf.put_u32(vector.len() as u32);
                for &x in vector.as_slice() {
                    buf.put_f32(x);
                }
            }
            Response::Error { code, message } => {
                buf.put_u8(4);
                buf.put_u8(*code as u8);
                put_str(buf, message);
            }
            Response::Neighbors {
                table_version,
                index_generation,
                hits,
            } => {
                buf.put_u8(5);
                buf.put_u32(*table_version);
                buf.put_u64(*index_generation);
                buf.put_u32(hits.len() as u32);
                for hit in hits {
                    put_str(buf, &hit.key);
                    buf.put_f32(hit.distance);
                }
            }
            Response::ReplState {
                leader_epoch,
                oldest_retained,
                retention,
            } => {
                buf.put_u8(6);
                buf.put_u64(*leader_epoch);
                buf.put_u64(*oldest_retained);
                buf.put_u32(*retention);
            }
            Response::ReplSnapshot {
                repl_epoch,
                payload,
            } => {
                buf.put_u8(7);
                buf.put_u64(*repl_epoch);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload);
            }
            Response::ReplDeltas {
                leader_epoch,
                lagged,
                deltas,
            } => {
                buf.put_u8(8);
                buf.put_u64(*leader_epoch);
                buf.put_u8(u8::from(*lagged));
                buf.put_u32(deltas.len() as u32);
                for d in deltas {
                    d.encode(buf);
                }
            }
            Response::PutAck { epoch, term } => {
                buf.put_u8(9);
                buf.put_u64(*epoch);
                buf.put_u64(*term);
            }
        }
    }

    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        Self::decode_reader(Reader::new(payload))
    }

    /// Decode from a shared frame: blob fields (the [`ReplSnapshot`]
    /// payload) alias the frame's storage instead of copying.
    ///
    /// [`ReplSnapshot`]: Response::ReplSnapshot
    pub fn decode_frame(frame: &Bytes) -> Result<Self, WireError> {
        Self::decode_reader(Reader::shared(frame))
    }

    fn decode_reader(mut r: Reader<'_>) -> Result<Self, WireError> {
        let response = match r.take_u8()? {
            0 => Response::Health {
                queue_depth: r.take_u32()?,
                draining: r.take_u8()? != 0,
            },
            1 => Response::Features(take_vector(&mut r)?),
            2 => {
                let n = r.take_len()?;
                let mut vs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    vs.push(take_vector(&mut r)?);
                }
                Response::FeaturesBatch(vs)
            }
            3 => {
                let dim = r.take_u32()?;
                let version = r.take_u32()?;
                let epoch = r.take_u64()?;
                let vector = r.take_f32_seq()?.into();
                Response::Embedding {
                    dim,
                    version,
                    epoch,
                    vector,
                }
            }
            4 => {
                let code = ErrorCode::from_u8(r.take_u8()?)?;
                Response::Error {
                    code,
                    message: r.take_str()?,
                }
            }
            5 => {
                let table_version = r.take_u32()?;
                let index_generation = r.take_u64()?;
                let n = r.take_len()?;
                let mut hits = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    hits.push(WireHit {
                        key: r.take_str()?,
                        distance: r.take_f32()?,
                    });
                }
                Response::Neighbors {
                    table_version,
                    index_generation,
                    hits,
                }
            }
            6 => Response::ReplState {
                leader_epoch: r.take_u64()?,
                oldest_retained: r.take_u64()?,
                retention: r.take_u32()?,
            },
            7 => Response::ReplSnapshot {
                repl_epoch: r.take_u64()?,
                payload: r.take_blob()?,
            },
            8 => {
                let leader_epoch = r.take_u64()?;
                let lagged = r.take_u8()? != 0;
                let n = r.take_len()?;
                let mut deltas = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    deltas.push(WireDelta::decode(&mut r)?);
                }
                Response::ReplDeltas {
                    leader_epoch,
                    lagged,
                    deltas,
                }
            }
            9 => Response::PutAck {
                epoch: r.take_u64()?,
                term: r.take_u64()?,
            },
            tag => {
                return Err(WireError::BadTag {
                    ty: "Response",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(response)
    }
}

// ---------------------------------------------------------------- framing

/// Write `payload` as one frame: `u32` big-endian length, then bytes.
/// One vectored syscall in the common case.
pub fn write_frame<W: std::io::Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    write_frame_vectored(w, payload)
}

/// Outcome of a [`read_frame_bounded`] call.
#[derive(Debug)]
pub enum FrameOutcome {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary.
    Eof,
    /// The declared length exceeds the caller's ceiling; nothing past the
    /// prefix was read, so the caller can still write a typed refusal
    /// before closing.
    TooLarge { declared: usize },
    /// The peer started a frame but did not deliver the rest within the
    /// budget (slow-loris, stall, or mid-frame death by firewall).
    TimedOut,
}

/// Read one frame with a size ceiling and a time bound on the frame body.
///
/// Waiting for the *first byte* of a frame blocks indefinitely — an idle
/// keep-alive connection is not a fault. But once a frame has started,
/// the whole thing (rest of the length prefix plus payload) must arrive
/// within `frame_timeout`, so a peer that drips one byte per second can
/// hold only its own connection thread, never wedge the read loop. The
/// timeout is enforced as a hard deadline via `set_read_timeout` on
/// `socket` (which must be the same fd `reader` wraps).
///
/// This is the one-shot form; connection loops use [`FrameReader`], which
/// keeps the same two-phase contract while reusing one buffer across
/// frames and carrying pipelined partial frames between reads.
pub fn read_frame_bounded<R: Read>(
    socket: &std::net::TcpStream,
    reader: &mut R,
    max_len: usize,
    frame_timeout: Option<std::time::Duration>,
) -> std::io::Result<FrameOutcome> {
    use std::time::Instant;

    // Idle phase: block until a frame begins (or clean EOF).
    socket.set_read_timeout(None)?;
    let mut len_bytes = [0u8; 4];
    match reader.read_exact(&mut len_bytes[..1]) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(FrameOutcome::Eof),
        Err(e) => return Err(e),
    }

    // Frame phase: everything else races one deadline.
    let deadline = frame_timeout.map(|t| Instant::now() + t);
    if !read_until_deadline(socket, reader, &mut len_bytes[1..], deadline)? {
        return Ok(FrameOutcome::TimedOut);
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > max_len.min(MAX_FRAME_LEN) {
        return Ok(FrameOutcome::TooLarge { declared: len });
    }
    let mut payload = vec![0u8; len];
    if !read_until_deadline(socket, reader, &mut payload, deadline)? {
        return Ok(FrameOutcome::TimedOut);
    }
    Ok(FrameOutcome::Frame(payload))
}

/// Fill `buf`, giving the socket at most the time left until `deadline`.
/// Returns `Ok(false)` when the deadline lapsed first.
fn read_until_deadline<R: Read>(
    socket: &std::net::TcpStream,
    reader: &mut R,
    buf: &mut [u8],
    deadline: Option<std::time::Instant>,
) -> std::io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if let Some(d) = deadline {
            let Some(remaining) = d.checked_duration_since(std::time::Instant::now()) else {
                return Ok(false);
            };
            // set_read_timeout(Some(0)) is an error; clamp to 1 ms.
            socket.set_read_timeout(Some(remaining.max(std::time::Duration::from_millis(1))))?;
        }
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(false)
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

// ------------------------------------------------------------- composites

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(2);
            buf.put_f64(*f);
        }
        Value::Bool(b) => {
            buf.put_u8(3);
            buf.put_u8(u8::from(*b));
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
        Value::Timestamp(t) => {
            buf.put_u8(5);
            buf.put_i64(t.as_millis());
        }
    }
}

fn put_vector(buf: &mut BytesMut, v: &WireVector) {
    put_str(buf, &v.entity);
    buf.put_u64(v.epoch);
    put_str_seq(buf, &v.features);
    buf.put_u32(v.values.len() as u32);
    for value in &v.values {
        put_value(buf, value);
    }
    buf.put_u32(v.ages_ms.len() as u32);
    for age in &v.ages_ms {
        match age {
            None => buf.put_u8(0),
            Some(ms) => {
                buf.put_u8(1);
                buf.put_i64(*ms);
            }
        }
    }
    put_str_seq(buf, &v.stale);
}

fn take_value(r: &mut Reader<'_>) -> Result<Value, WireError> {
    Ok(match r.take_u8()? {
        0 => Value::Null,
        1 => Value::Int(r.take_i64()?),
        2 => Value::Float(r.take_f64()?),
        3 => Value::Bool(r.take_u8()? != 0),
        4 => Value::Str(r.take_str()?),
        5 => Value::Timestamp(Timestamp::millis(r.take_i64()?)),
        tag => return Err(WireError::BadTag { ty: "Value", tag }),
    })
}

fn take_vector(r: &mut Reader<'_>) -> Result<WireVector, WireError> {
    let entity = r.take_str()?;
    let epoch = r.take_u64()?;
    let features = r.take_str_seq()?;
    let n_values = r.take_len()?;
    let mut values = Vec::with_capacity(n_values.min(1024));
    for _ in 0..n_values {
        values.push(take_value(r)?);
    }
    let n_ages = r.take_len()?;
    let mut ages_ms = Vec::with_capacity(n_ages.min(1024));
    for _ in 0..n_ages {
        ages_ms.push(match r.take_u8()? {
            0 => None,
            _ => Some(r.take_i64()?),
        });
    }
    let stale = r.take_str_seq()?;
    Ok(WireVector {
        entity,
        features,
        values,
        ages_ms,
        stale,
        epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout_is_length_prefixed_big_endian() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        assert_eq!(&wire[..4], &5u32.to_be_bytes());
        assert_eq!(&wire[4..9], b"hello");
        assert_eq!(&wire[9..13], &0u32.to_be_bytes());
        assert_eq!(wire.len(), 13);
    }

    #[test]
    fn request_round_trips() {
        let req = Request::GetFeatures {
            group: "user".into(),
            entity: "u1".into(),
            features: vec!["a".into(), "b".into()],
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn encode_into_matches_encode_and_appends() {
        let req = Request::GetEmbedding {
            table: "emb".into(),
            key: "k".into(),
        };
        let mut buf = BytesMut::new();
        buf.put_u8(0xAA); // pre-existing byte: encode_into appends
        req.encode_into(&mut buf);
        assert_eq!(buf.as_slice()[0], 0xAA);
        assert_eq!(&buf.as_slice()[1..], &req.encode()[..]);
    }

    #[test]
    fn response_error_round_trips() {
        let resp = Response::error(ErrorCode::Overloaded, "queue full");
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn search_request_and_neighbors_round_trip() {
        let req = Request::SearchNearest {
            table: "emb".into(),
            query: vec![0.5, -1.25, 3.0],
            k: 10,
            options: SearchOptions {
                ef: 64,
                nprobe: 0,
                exhaustive: false,
            },
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);

        let by_key = Request::SearchNearestByKey {
            table: "emb@v2".into(),
            key: "u7".into(),
            k: 5,
            options: SearchOptions {
                ef: 0,
                nprobe: 16,
                exhaustive: true,
            },
        };
        assert_eq!(Request::decode(&by_key.encode()).unwrap(), by_key);

        let resp = Response::Neighbors {
            table_version: 3,
            index_generation: u64::MAX,
            hits: vec![
                WireHit {
                    key: "a".into(),
                    distance: 0.0,
                },
                WireHit {
                    key: "b".into(),
                    distance: 1.5,
                },
            ],
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn index_error_codes_round_trip() {
        for code in [ErrorCode::IndexNotReady, ErrorCode::DimensionMismatch] {
            let resp = Response::error(code, "index");
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn repl_frames_round_trip() {
        for req in [
            Request::ReplSubscribe,
            Request::ReplSnapshot,
            Request::ReplDeltas { from_epoch: 42 },
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
        let state = Response::ReplState {
            leader_epoch: 9,
            oldest_retained: 3,
            retention: 64,
        };
        assert_eq!(Response::decode(&state.encode()).unwrap(), state);
        let snap = Response::ReplSnapshot {
            repl_epoch: 5,
            payload: vec![0, 1, 2, 255].into(),
        };
        assert_eq!(Response::decode(&snap.encode()).unwrap(), snap);
        let deltas = Response::ReplDeltas {
            leader_epoch: 7,
            lagged: false,
            deltas: vec![WireDelta {
                seq: 6,
                component: ComponentKind::Embeddings,
                component_epoch: 4,
                body: "{\"versions\":[]}".into(),
            }],
        };
        assert_eq!(Response::decode(&deltas.encode()).unwrap(), deltas);
    }

    #[test]
    fn snapshot_payload_decoded_from_a_shared_frame_is_zero_copy() {
        let snap = Response::ReplSnapshot {
            repl_epoch: 5,
            payload: vec![7u8; 1024].into(),
        };
        let frame = snap.encode();
        let decoded = Response::decode_frame(&frame).unwrap();
        assert_eq!(decoded, snap);
        let Response::ReplSnapshot { payload, .. } = decoded else {
            unreachable!()
        };
        // The payload view points into the frame's storage: its slice
        // sits inside the frame's slice address range.
        let frame_range = frame.as_slice().as_ptr_range();
        assert!(frame_range.contains(&payload.as_slice().as_ptr()));
    }

    #[test]
    fn unknown_component_tag_is_rejected() {
        let good = Response::ReplDeltas {
            leader_epoch: 1,
            lagged: false,
            deltas: vec![WireDelta {
                seq: 1,
                component: ComponentKind::Offline,
                component_epoch: 1,
                body: String::new(),
            }],
        };
        let mut bytes = good.encode().to_vec();
        // The component tag sits right after the response tag (1), the
        // leader epoch (8), the lagged flag (1), the count (4), and the
        // delta's seq (8).
        let tag_at = 1 + 8 + 1 + 4 + 8;
        assert_eq!(bytes[tag_at], ComponentKind::Offline.as_u8());
        bytes[tag_at] = 77;
        assert_eq!(
            Response::decode(&bytes),
            Err(WireError::BadTag {
                ty: "ComponentKind",
                tag: 77
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Health.encode().to_vec();
        payload.push(0);
        assert_eq!(Request::decode(&payload), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert!(matches!(
            Request::decode(&[13]),
            Err(WireError::BadTag {
                ty: "Request",
                tag: 13
            })
        ));
        assert!(matches!(
            Response::decode(&[10]),
            Err(WireError::BadTag { .. })
        ));
    }

    #[test]
    fn write_and_admin_frames_round_trip() {
        let put = Request::PutOnline {
            group: "user".into(),
            entity: "u42".into(),
            values: vec![
                ("clicks".into(), Value::Int(7)),
                ("ctr".into(), Value::Float(0.25)),
                ("vip".into(), Value::Bool(true)),
                ("country".into(), Value::Str("de".into())),
                ("seen".into(), Value::Timestamp(Timestamp::millis(60_000))),
                ("gone".into(), Value::Null),
            ],
            term: 3,
        };
        assert_eq!(Request::decode(&put.encode()).unwrap(), put);
        assert!(!put.is_idempotent());
        assert_eq!(put.endpoint(), crate::metrics::Endpoint::PutOnline);

        for req in [
            Request::Promote { shard: 2, term: 5 },
            Request::Demote { shard: 2, term: 5 },
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
            assert!(!req.is_idempotent());
            assert_eq!(req.endpoint(), crate::metrics::Endpoint::Promote);
        }

        // A deadline-wrapped write keeps the write's retry classification.
        let wrapped = Request::WithDeadline {
            budget_ms: 100,
            inner: Box::new(put),
        };
        assert_eq!(Request::decode(&wrapped.encode()).unwrap(), wrapped);
        assert!(!wrapped.is_idempotent());

        let ack = Response::PutAck { epoch: 17, term: 3 };
        assert_eq!(Response::decode(&ack.encode()).unwrap(), ack);
        let fenced = Response::error(ErrorCode::NotLeader, "current_term=4");
        assert_eq!(Response::decode(&fenced.encode()).unwrap(), fenced);
    }

    #[test]
    fn deadline_wrapper_round_trips_and_never_nests() {
        let req = Request::WithDeadline {
            budget_ms: 250,
            inner: Box::new(Request::GetEmbedding {
                table: "emb".into(),
                key: "k1".into(),
            }),
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        assert_eq!(req.endpoint(), crate::metrics::Endpoint::GetEmbedding);
        assert!(req.is_idempotent());

        // A wrapper inside a wrapper is a protocol violation, not a
        // recursion: the inner tag 9 is rejected as unknown.
        let nested = Request::WithDeadline {
            budget_ms: 1,
            inner: Box::new(Request::Health),
        };
        let mut bytes = vec![9u8, 0, 0, 0, 5];
        bytes.extend_from_slice(&nested.encode());
        assert_eq!(
            Request::decode(&bytes),
            Err(WireError::BadTag {
                ty: "Request",
                tag: 9
            })
        );
    }

    #[test]
    fn new_error_codes_round_trip() {
        for code in [ErrorCode::DeadlineExceeded, ErrorCode::FrameTooLarge] {
            let resp = Response::error(code, "deadline/frame");
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }
}
