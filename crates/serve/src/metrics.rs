//! Serving metrics: per-endpoint request/error counters and streaming
//! latency quantiles (p50/p95/p99 via the P² estimator), plus admission
//! and batching counters. Snapshots render to JSON for dashboards and the
//! E14 bench artifact.

use crate::codec::FramePool;
use fstore_common::stats::P2Quantile;
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The wire endpoints, used as metric labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Health = 0,
    GetFeatures = 1,
    GetFeaturesBatch = 2,
    GetEmbedding = 3,
    SearchNearest = 4,
    SearchNearestByKey = 5,
    ReplSubscribe = 6,
    ReplSnapshot = 7,
    ReplDeltas = 8,
    PutOnline = 9,
    /// Leadership admin traffic: `Promote` and `Demote` share one label.
    Promote = 10,
}

impl Endpoint {
    pub const ALL: [Endpoint; 11] = [
        Endpoint::Health,
        Endpoint::GetFeatures,
        Endpoint::GetFeaturesBatch,
        Endpoint::GetEmbedding,
        Endpoint::SearchNearest,
        Endpoint::SearchNearestByKey,
        Endpoint::ReplSubscribe,
        Endpoint::ReplSnapshot,
        Endpoint::ReplDeltas,
        Endpoint::PutOnline,
        Endpoint::Promote,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            Endpoint::Health => "health",
            Endpoint::GetFeatures => "get_features",
            Endpoint::GetFeaturesBatch => "get_features_batch",
            Endpoint::GetEmbedding => "get_embedding",
            Endpoint::SearchNearest => "search_nearest",
            Endpoint::SearchNearestByKey => "search_nearest_by_key",
            Endpoint::ReplSubscribe => "repl_subscribe",
            Endpoint::ReplSnapshot => "repl_snapshot",
            Endpoint::ReplDeltas => "repl_deltas",
            Endpoint::PutOnline => "put_online",
            Endpoint::Promote => "promote",
        }
    }
}

/// Streaming latency state for one endpoint. The P² estimators hold five
/// markers each, so memory stays constant no matter the request count.
struct Latency {
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    total_ms: f64,
    max_ms: f64,
}

impl Latency {
    fn new() -> Self {
        Latency {
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            total_ms: 0.0,
            max_ms: 0.0,
        }
    }

    fn push(&mut self, ms: f64) {
        self.p50.push(ms);
        self.p95.push(ms);
        self.p99.push(ms);
        self.total_ms += ms;
        self.max_ms = self.max_ms.max(ms);
    }
}

struct EndpointMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Mutex<Latency>,
}

impl EndpointMetrics {
    fn new() -> Self {
        EndpointMetrics {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: Mutex::new(Latency::new()),
        }
    }
}

/// One live index snapshot's identity, reported into the metrics stream by
/// the catalog on every build/swap (and refreshable on demand).
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct IndexStatus {
    /// Index family: `"flat"`, `"ivf"`, or `"hnsw"`.
    pub kind: String,
    /// Monotone swap generation (increments on every successful swap).
    pub generation: u64,
    /// The embedding-table version the snapshot was built from.
    pub built_from_version: u32,
    /// How many versions the live store has advanced past the snapshot
    /// (0 = the snapshot is fresh).
    pub staleness: u32,
    pub len: usize,
    pub dim: usize,
}

/// Shared serving metrics; every handle clones an `Arc` of this.
pub struct ServingMetrics {
    endpoints: [EndpointMetrics; 11],
    /// Requests refused by admission control (queue full).
    shed: AtomicU64,
    /// Requests refused because the server was draining.
    rejected_draining: AtomicU64,
    /// Batches executed and single requests carried inside them.
    batches: AtomicU64,
    batched_requests: AtomicU64,
    /// Successful index snapshot swaps across all tables.
    index_swaps: AtomicU64,
    /// Per-table live index snapshot status (generation, staleness).
    index_status: Mutex<BTreeMap<String, IndexStatus>>,
    /// Replication (follower role): last replication epoch applied locally.
    repl_applied_epoch: AtomicU64,
    /// Replication (follower role): leader's replication epoch as of the
    /// last sync exchange.
    repl_leader_epoch: AtomicU64,
    /// Replication (follower role): full-snapshot fallbacks taken after
    /// lagging past the leader's retention window.
    repl_snapshot_fallbacks: AtomicU64,
    /// Jobs shed at dequeue because their deadline budget had already
    /// expired — work the caller stopped waiting for.
    deadline_shed: AtomicU64,
    /// Request frames refused because their declared length exceeded the
    /// configured per-request ceiling.
    frames_too_large: AtomicU64,
    /// Connections cut because a started frame did not finish within the
    /// frame read budget (slow-loris containment).
    frame_timeouts: AtomicU64,
    /// Replication (follower role): consecutive sync/connect failures as
    /// of the last attempt (0 = last round succeeded). A rising value is
    /// the first sign the leader is unreachable.
    repl_consecutive_failures: AtomicU64,
    /// Durability: records appended to the write-ahead log.
    wal_appends: AtomicU64,
    /// Durability: fsyncs issued by the WAL (≤ appends under batched
    /// fsync policies — the gap is the durability/throughput trade).
    wal_fsyncs: AtomicU64,
    /// Durability: bytes written to the WAL.
    wal_bytes: AtomicU64,
    /// Durability: checkpoints taken (each one truncates the WAL).
    checkpoint_count: AtomicU64,
    /// Durability: wall-clock milliseconds the last crash recovery took
    /// (checkpoint load + WAL replay).
    last_recovery_ms: AtomicU64,
    /// Durability: the replication epoch the last recovery restored —
    /// the last *published* epoch before the crash.
    recovered_epoch: AtomicU64,
    /// Wire: payload bytes + frame headers received / sent on serving
    /// connections.
    wire_bytes_rx: AtomicU64,
    wire_bytes_tx: AtomicU64,
    /// Wire: frames received / sent on serving connections.
    wire_frames_rx: AtomicU64,
    wire_frames_tx: AtomicU64,
    /// Wire: read-buffer (re)allocations on the receive path. Connection
    /// readers grow their buffer to the connection's working frame size
    /// and then reuse it, so at steady state this counter stops moving —
    /// a nonzero *rate* means payloads are still being allocated
    /// per-request.
    wire_payload_allocs: AtomicU64,
    /// Wire: the shared free-list of encode buffers every connection
    /// writer draws from (hit/miss counters live inside).
    frame_pool: Arc<FramePool>,
    /// Embedding responses that had to copy the vector into a private
    /// buffer instead of sharing the store's block (the zero-copy serving
    /// path keeps this flat; see E21's embedding phase).
    embed_copies: AtomicU64,
    /// Tiered-storage stats source. The tier crate sits *above* this one,
    /// so it registers a provider closure; `snapshot()` polls it so the
    /// `tier` JSON section is always current.
    #[allow(clippy::type_complexity)]
    tier_provider: Mutex<Option<Arc<dyn Fn() -> TierSnapshot + Send + Sync>>>,
    /// Control-plane stats source (the shard crate's `ControlPlane`
    /// registers it, same pattern as the tier provider); fills the
    /// `control` JSON section with probe rounds, strikes, promotions,
    /// and the current map version + leader terms.
    #[allow(clippy::type_complexity)]
    control_provider: Mutex<Option<Arc<dyn Fn() -> ControlSnapshot + Send + Sync>>>,
}

impl Default for ServingMetrics {
    fn default() -> Self {
        ServingMetrics {
            endpoints: std::array::from_fn(|_| EndpointMetrics::new()),
            shed: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            index_swaps: AtomicU64::new(0),
            index_status: Mutex::new(BTreeMap::new()),
            repl_applied_epoch: AtomicU64::new(0),
            repl_leader_epoch: AtomicU64::new(0),
            repl_snapshot_fallbacks: AtomicU64::new(0),
            deadline_shed: AtomicU64::new(0),
            frames_too_large: AtomicU64::new(0),
            frame_timeouts: AtomicU64::new(0),
            repl_consecutive_failures: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            wal_fsyncs: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            checkpoint_count: AtomicU64::new(0),
            last_recovery_ms: AtomicU64::new(0),
            recovered_epoch: AtomicU64::new(0),
            wire_bytes_rx: AtomicU64::new(0),
            wire_bytes_tx: AtomicU64::new(0),
            wire_frames_rx: AtomicU64::new(0),
            wire_frames_tx: AtomicU64::new(0),
            wire_payload_allocs: AtomicU64::new(0),
            frame_pool: Arc::new(FramePool::default()),
            embed_copies: AtomicU64::new(0),
            tier_provider: Mutex::new(None),
            control_provider: Mutex::new(None),
        }
    }
}

impl ServingMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one finished request with its end-to-end latency (queue wait
    /// plus handling), in milliseconds.
    pub fn record(&self, endpoint: Endpoint, latency_ms: f64, ok: bool) {
        let m = &self.endpoints[endpoint as usize];
        m.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            m.errors.fetch_add(1, Ordering::Relaxed);
        }
        m.latency.lock().push(latency_ms);
    }

    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_rejected_draining(&self) {
        self.rejected_draining.fetch_add(1, Ordering::Relaxed);
    }

    /// Record that one coalesced batch carried `size` single requests.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
    }

    /// Record one successful index snapshot swap.
    pub fn record_index_swap(&self) {
        self.index_swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Publish (or refresh) one table's live index status.
    pub fn set_index_status(&self, table: impl Into<String>, status: IndexStatus) {
        self.index_status.lock().insert(table.into(), status);
    }

    /// Record the follower's replication progress after a sync exchange.
    pub fn set_repl_progress(&self, applied_epoch: u64, leader_epoch: u64) {
        self.repl_applied_epoch
            .store(applied_epoch, Ordering::Relaxed);
        self.repl_leader_epoch
            .store(leader_epoch, Ordering::Relaxed);
    }

    /// Record one full-snapshot fallback (the follower lagged past the
    /// leader's retention window).
    pub fn record_repl_fallback(&self) {
        self.repl_snapshot_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one job shed at dequeue because its deadline had expired.
    pub fn record_deadline_shed(&self) {
        self.deadline_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one frame refused for exceeding the request-frame ceiling.
    pub fn record_frame_too_large(&self) {
        self.frames_too_large.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one connection cut because a started frame stalled past the
    /// frame read budget.
    pub fn record_frame_timeout(&self) {
        self.frame_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the follower's consecutive sync-failure count (0 on success).
    pub fn set_repl_consecutive_failures(&self, n: u64) {
        self.repl_consecutive_failures.store(n, Ordering::Relaxed);
    }

    /// Record one WAL append of `bytes` bytes (and whether it fsynced).
    pub fn record_wal_append(&self, bytes: u64, fsynced: bool) {
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        if fsynced {
            self.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one completed checkpoint.
    pub fn record_checkpoint(&self) {
        self.checkpoint_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a completed crash recovery: how long it took and which
    /// replication epoch it restored.
    pub fn record_recovery(&self, ms: u64, recovered_epoch: u64) {
        self.last_recovery_ms.store(ms, Ordering::Relaxed);
        self.recovered_epoch
            .store(recovered_epoch, Ordering::Relaxed);
    }

    /// Record receive-side wire traffic: `bytes` on the socket (headers
    /// included), `frames` complete frames, and `allocs` read-buffer
    /// (re)allocations taken to hold them.
    pub fn record_wire_rx(&self, bytes: u64, frames: u64, allocs: u64) {
        self.wire_bytes_rx.fetch_add(bytes, Ordering::Relaxed);
        self.wire_frames_rx.fetch_add(frames, Ordering::Relaxed);
        if allocs > 0 {
            self.wire_payload_allocs
                .fetch_add(allocs, Ordering::Relaxed);
        }
    }

    /// Record send-side wire traffic: `bytes` on the socket (headers
    /// included) carrying `frames` frames.
    pub fn record_wire_tx(&self, bytes: u64, frames: u64) {
        self.wire_bytes_tx.fetch_add(bytes, Ordering::Relaxed);
        self.wire_frames_tx.fetch_add(frames, Ordering::Relaxed);
    }

    /// The shared encode-buffer pool connection writers draw from.
    pub fn frame_pool(&self) -> Arc<FramePool> {
        Arc::clone(&self.frame_pool)
    }

    /// Record one embedding response that copied its vector instead of
    /// sharing the store's block.
    pub fn record_embed_copy(&self) {
        self.embed_copies.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative embedding responses that copied their vector; flat across
    /// a steady-state window ⇒ the embedding read path is zero-copy.
    pub fn embed_copies(&self) -> u64 {
        self.embed_copies.load(Ordering::Relaxed)
    }

    /// Register the tiered-storage stats source polled by [`Self::snapshot`]
    /// to fill the `tier` section. Replaces any previous provider.
    pub fn set_tier_provider(&self, provider: impl Fn() -> TierSnapshot + Send + Sync + 'static) {
        *self.tier_provider.lock() = Some(Arc::new(provider));
    }

    /// The tier section alone (`None` when no tiered store is attached).
    pub fn tier_snapshot(&self) -> Option<TierSnapshot> {
        let provider = self.tier_provider.lock().clone();
        provider.map(|p| p())
    }

    /// Register the control-plane stats source polled by [`Self::snapshot`]
    /// to fill the `control` section. Replaces any previous provider.
    pub fn set_control_provider(
        &self,
        provider: impl Fn() -> ControlSnapshot + Send + Sync + 'static,
    ) {
        *self.control_provider.lock() = Some(Arc::new(provider));
    }

    /// The control section alone (`None` when no control plane is attached).
    pub fn control_snapshot(&self) -> Option<ControlSnapshot> {
        let provider = self.control_provider.lock().clone();
        provider.map(|p| p())
    }

    /// Cumulative read-buffer (re)allocations on the receive path; a flat
    /// value across a steady-state window proves the per-request payload
    /// allocation count is zero.
    pub fn wire_payload_allocs(&self) -> u64 {
        self.wire_payload_allocs.load(Ordering::Relaxed)
    }

    pub fn wire_frames_rx(&self) -> u64 {
        self.wire_frames_rx.load(Ordering::Relaxed)
    }

    pub fn wal_appends(&self) -> u64 {
        self.wal_appends.load(Ordering::Relaxed)
    }

    pub fn wal_fsyncs(&self) -> u64 {
        self.wal_fsyncs.load(Ordering::Relaxed)
    }

    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes.load(Ordering::Relaxed)
    }

    pub fn checkpoint_count(&self) -> u64 {
        self.checkpoint_count.load(Ordering::Relaxed)
    }

    pub fn deadline_shed_count(&self) -> u64 {
        self.deadline_shed.load(Ordering::Relaxed)
    }

    pub fn frames_too_large_count(&self) -> u64 {
        self.frames_too_large.load(Ordering::Relaxed)
    }

    pub fn frame_timeout_count(&self) -> u64 {
        self.frame_timeouts.load(Ordering::Relaxed)
    }

    pub fn repl_consecutive_failures(&self) -> u64 {
        self.repl_consecutive_failures.load(Ordering::Relaxed)
    }

    /// Epochs the follower is behind the leader, as of the last sync (0 when
    /// caught up — or when this process is not a follower at all).
    pub fn repl_lag(&self) -> u64 {
        self.repl_leader_epoch
            .load(Ordering::Relaxed)
            .saturating_sub(self.repl_applied_epoch.load(Ordering::Relaxed))
    }

    pub fn index_swaps(&self) -> u64 {
        self.index_swaps.load(Ordering::Relaxed)
    }

    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    pub fn requests(&self, endpoint: Endpoint) -> u64 {
        self.endpoints[endpoint as usize]
            .requests
            .load(Ordering::Relaxed)
    }

    pub fn total_requests(&self) -> u64 {
        Endpoint::ALL.iter().map(|&e| self.requests(e)).sum()
    }

    /// Point-in-time copy of everything, for JSON rendering and asserts.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut endpoints = BTreeMap::new();
        for &e in &Endpoint::ALL {
            let m = &self.endpoints[e as usize];
            let lat = m.latency.lock();
            let count = lat.p50.count();
            endpoints.insert(
                e.as_str().to_string(),
                EndpointSnapshot {
                    requests: m.requests.load(Ordering::Relaxed),
                    errors: m.errors.load(Ordering::Relaxed),
                    p50_ms: lat.p50.estimate(),
                    p95_ms: lat.p95.estimate(),
                    p99_ms: lat.p99.estimate(),
                    mean_ms: if count > 0 {
                        Some(lat.total_ms / count as f64)
                    } else {
                        None
                    },
                    max_ms: if count > 0 { Some(lat.max_ms) } else { None },
                },
            );
        }
        MetricsSnapshot {
            endpoints,
            shed: self.shed.load(Ordering::Relaxed),
            rejected_draining: self.rejected_draining.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            index_swaps: self.index_swaps.load(Ordering::Relaxed),
            indexes: self.index_status.lock().clone(),
            repl_applied_epoch: self.repl_applied_epoch.load(Ordering::Relaxed),
            repl_leader_epoch: self.repl_leader_epoch.load(Ordering::Relaxed),
            repl_lag: self.repl_lag(),
            repl_snapshot_fallbacks: self.repl_snapshot_fallbacks.load(Ordering::Relaxed),
            deadline_shed: self.deadline_shed.load(Ordering::Relaxed),
            frames_too_large: self.frames_too_large.load(Ordering::Relaxed),
            frame_timeouts: self.frame_timeouts.load(Ordering::Relaxed),
            repl_consecutive_failures: self.repl_consecutive_failures.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            checkpoint_count: self.checkpoint_count.load(Ordering::Relaxed),
            last_recovery_ms: self.last_recovery_ms.load(Ordering::Relaxed),
            recovered_epoch: self.recovered_epoch.load(Ordering::Relaxed),
            wire: {
                let pool_hits = self.frame_pool.hits();
                let pool_misses = self.frame_pool.misses();
                let draws = pool_hits + pool_misses;
                WireSnapshot {
                    bytes_rx: self.wire_bytes_rx.load(Ordering::Relaxed),
                    bytes_tx: self.wire_bytes_tx.load(Ordering::Relaxed),
                    frames_rx: self.wire_frames_rx.load(Ordering::Relaxed),
                    frames_tx: self.wire_frames_tx.load(Ordering::Relaxed),
                    payload_allocs: self.wire_payload_allocs.load(Ordering::Relaxed),
                    pool_hits,
                    pool_misses,
                    pool_hit_rate: if draws > 0 {
                        Some(pool_hits as f64 / draws as f64)
                    } else {
                        None
                    },
                    embed_copies: self.embed_copies.load(Ordering::Relaxed),
                }
            },
            tier: self.tier_snapshot(),
            control: self.control_snapshot(),
        }
    }

    /// The snapshot as a pretty-printed JSON document.
    pub fn dump_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("metrics snapshot serializes")
    }
}

/// One endpoint's counters and latency summary at snapshot time.
#[derive(Debug, Clone, Serialize)]
pub struct EndpointSnapshot {
    pub requests: u64,
    pub errors: u64,
    pub p50_ms: Option<f64>,
    pub p95_ms: Option<f64>,
    pub p99_ms: Option<f64>,
    pub mean_ms: Option<f64>,
    pub max_ms: Option<f64>,
}

/// Full metrics snapshot; serializes to the JSON dumped by
/// [`ServingMetrics::dump_json`].
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    pub endpoints: BTreeMap<String, EndpointSnapshot>,
    pub shed: u64,
    pub rejected_draining: u64,
    pub batches: u64,
    pub batched_requests: u64,
    pub index_swaps: u64,
    pub indexes: BTreeMap<String, IndexStatus>,
    pub repl_applied_epoch: u64,
    pub repl_leader_epoch: u64,
    pub repl_lag: u64,
    pub repl_snapshot_fallbacks: u64,
    pub deadline_shed: u64,
    pub frames_too_large: u64,
    pub frame_timeouts: u64,
    pub repl_consecutive_failures: u64,
    pub wal_appends: u64,
    pub wal_fsyncs: u64,
    pub wal_bytes: u64,
    pub checkpoint_count: u64,
    pub last_recovery_ms: u64,
    pub recovered_epoch: u64,
    pub wire: WireSnapshot,
    /// Tiered embedding storage (`None` when no tiered store is attached).
    pub tier: Option<TierSnapshot>,
    /// Shard control plane (`None` when no control plane is attached).
    pub control: Option<ControlSnapshot>,
}

/// The wire hot path at snapshot time: socket traffic, frame counts, the
/// encode-buffer pool's hit rate, and the receive path's cumulative
/// payload-allocation count (flat across a steady-state window ⇒ zero
/// allocations per request).
#[derive(Debug, Clone, Serialize)]
pub struct WireSnapshot {
    pub bytes_rx: u64,
    pub bytes_tx: u64,
    pub frames_rx: u64,
    pub frames_tx: u64,
    pub payload_allocs: u64,
    pub pool_hits: u64,
    pub pool_misses: u64,
    /// `None` until the pool has been drawn from at least once.
    pub pool_hit_rate: Option<f64>,
    /// Embedding responses that copied their vector instead of sharing the
    /// store's block (flat across a steady window ⇒ zero-copy embeddings).
    pub embed_copies: u64,
}

/// Tiered embedding storage at snapshot time: RAM residency against the
/// configured budget, on-disk footprint, hot-block cache effectiveness,
/// and fault latency quantiles. Filled by the provider the tier crate
/// registers via [`ServingMetrics::set_tier_provider`].
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TierSnapshot {
    /// Configured RAM budget for embedding bytes (tables + cached blocks).
    pub budget_bytes: u64,
    /// Embedding bytes currently resident (pinned tables + cached blocks).
    pub resident_bytes: u64,
    /// Resident bytes protected from demotion (latest versions and
    /// versions an index snapshot references).
    pub pinned_bytes: u64,
    /// High-water mark of `resident_bytes`.
    pub peak_resident_bytes: u64,
    /// On-disk vector payload across all spilled versions.
    pub spilled_bytes: u64,
    pub spilled_versions: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// `None` until the cache has been read at least once.
    pub hit_rate: Option<f64>,
    /// Block faults (disk reads) served so far — equals `cache_misses`
    /// unless a fault failed after the miss was counted.
    pub faults: u64,
    pub fault_p50_ms: Option<f64>,
    pub fault_p99_ms: Option<f64>,
    pub evictions: u64,
    /// Versions demoted (written to a segment and swapped to spilled).
    pub demotions: u64,
}

/// The shard control plane at snapshot time: how many probe rounds have
/// run, which shards are accumulating strikes, how many promotions have
/// been executed, and the shard map's current version and per-shard
/// leader terms. Filled by the provider the shard crate registers via
/// [`ServingMetrics::set_control_provider`].
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ControlSnapshot {
    /// Probe rounds completed since the control plane started.
    pub probe_rounds: u64,
    /// Leader promotions executed (map-level rotations).
    pub promotions: u64,
    /// The shard map version the control plane currently publishes.
    pub map_version: u64,
    /// Current consecutive-failure strikes per shard (empty = all healthy).
    pub strikes: BTreeMap<String, u64>,
    /// Current leader term per shard.
    pub terms: BTreeMap<String, u64>,
    /// Fences (demote messages) still awaiting delivery to a demoted
    /// endpoint — nonzero while an old leader is down or unreachable.
    pub pending_fences: u64,
}

impl TierSnapshot {
    /// Fold another node's tier section into this one (the shard router's
    /// cluster-wide passthrough). Counters and gauges add; rates are
    /// recomputed from the summed counters; quantiles keep the worst
    /// (maximum) estimate, which is the honest cluster-level bound.
    pub fn merge(&mut self, other: &TierSnapshot) {
        self.budget_bytes += other.budget_bytes;
        self.resident_bytes += other.resident_bytes;
        self.pinned_bytes += other.pinned_bytes;
        self.peak_resident_bytes += other.peak_resident_bytes;
        self.spilled_bytes += other.spilled_bytes;
        self.spilled_versions += other.spilled_versions;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        let reads = self.cache_hits + self.cache_misses;
        self.hit_rate = if reads > 0 {
            Some(self.cache_hits as f64 / reads as f64)
        } else {
            None
        };
        self.faults += other.faults;
        self.fault_p50_ms = max_opt(self.fault_p50_ms, other.fault_p50_ms);
        self.fault_p99_ms = max_opt(self.fault_p99_ms, other.fault_p99_ms);
        self.evictions += other.evictions;
        self.demotions += other.demotions;
    }
}

fn max_opt(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_a_known_distribution() {
        let m = ServingMetrics::new();
        for i in 1..=1000 {
            m.record(Endpoint::GetFeatures, i as f64, true);
        }
        let snap = m.snapshot();
        let ep = &snap.endpoints["get_features"];
        assert_eq!(ep.requests, 1000);
        assert_eq!(ep.errors, 0);
        let p50 = ep.p50_ms.unwrap();
        let p99 = ep.p99_ms.unwrap();
        assert!((p50 - 500.0).abs() < 50.0, "p50 {p50}");
        assert!((p99 - 990.0).abs() < 30.0, "p99 {p99}");
        assert!(ep.mean_ms.unwrap() > 0.0);
        assert_eq!(ep.max_ms, Some(1000.0));
    }

    #[test]
    fn shed_and_batch_counters() {
        let m = ServingMetrics::new();
        m.record_shed();
        m.record_shed();
        m.record_batch(8);
        let snap = m.snapshot();
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.batched_requests, 8);
        assert_eq!(m.shed_count(), 2);
    }

    #[test]
    fn repl_gauges_report_lag_and_fallbacks() {
        let m = ServingMetrics::new();
        assert_eq!(m.repl_lag(), 0);
        m.set_repl_progress(7, 12);
        m.record_repl_fallback();
        assert_eq!(m.repl_lag(), 5);
        let snap = m.snapshot();
        assert_eq!(snap.repl_applied_epoch, 7);
        assert_eq!(snap.repl_leader_epoch, 12);
        assert_eq!(snap.repl_lag, 5);
        assert_eq!(snap.repl_snapshot_fallbacks, 1);
        // Caught-up (or ahead due to a race) never underflows.
        m.set_repl_progress(13, 12);
        assert_eq!(m.repl_lag(), 0);
        // The repl endpoints are first-class metric labels.
        m.record(Endpoint::ReplDeltas, 0.2, true);
        assert_eq!(m.snapshot().endpoints["repl_deltas"].requests, 1);
    }

    #[test]
    fn robustness_counters_flow_into_the_snapshot() {
        let m = ServingMetrics::new();
        m.record_deadline_shed();
        m.record_deadline_shed();
        m.record_frame_too_large();
        m.record_frame_timeout();
        m.set_repl_consecutive_failures(3);
        let snap = m.snapshot();
        assert_eq!(snap.deadline_shed, 2);
        assert_eq!(snap.frames_too_large, 1);
        assert_eq!(snap.frame_timeouts, 1);
        assert_eq!(snap.repl_consecutive_failures, 3);
        assert_eq!(m.deadline_shed_count(), 2);
        assert_eq!(m.frames_too_large_count(), 1);
        assert_eq!(m.frame_timeout_count(), 1);
        // A successful round resets the failure streak.
        m.set_repl_consecutive_failures(0);
        assert_eq!(m.repl_consecutive_failures(), 0);
    }

    #[test]
    fn durability_counters_flow_into_the_snapshot() {
        let m = ServingMetrics::new();
        m.record_wal_append(100, true);
        m.record_wal_append(28, false);
        m.record_checkpoint();
        m.record_recovery(42, 17);
        let snap = m.snapshot();
        assert_eq!(snap.wal_appends, 2);
        assert_eq!(snap.wal_fsyncs, 1);
        assert_eq!(snap.wal_bytes, 128);
        assert_eq!(snap.checkpoint_count, 1);
        assert_eq!(snap.last_recovery_ms, 42);
        assert_eq!(snap.recovered_epoch, 17);
        assert_eq!(m.wal_appends(), 2);
        assert_eq!(m.wal_fsyncs(), 1);
        assert_eq!(m.wal_bytes(), 128);
        assert_eq!(m.checkpoint_count(), 1);
        // And they render in the JSON dump.
        let v: serde_json::Value = serde_json::from_str(&m.dump_json()).unwrap();
        assert_eq!(v["wal_appends"].as_u64(), Some(2));
        assert_eq!(v["recovered_epoch"].as_u64(), Some(17));
    }

    #[test]
    fn wire_counters_flow_into_the_snapshot() {
        let m = ServingMetrics::new();
        m.record_wire_rx(104, 2, 1);
        m.record_wire_tx(52, 1);
        // Draw from the pool twice: a miss (cold), then a hit (recycled).
        let pool = m.frame_pool();
        let buf = pool.get();
        pool.put(buf);
        let buf = pool.get();
        pool.put(buf);
        let snap = m.snapshot();
        assert_eq!(snap.wire.bytes_rx, 104);
        assert_eq!(snap.wire.bytes_tx, 52);
        assert_eq!(snap.wire.frames_rx, 2);
        assert_eq!(snap.wire.frames_tx, 1);
        assert_eq!(snap.wire.payload_allocs, 1);
        assert_eq!(snap.wire.pool_misses, 1);
        assert_eq!(snap.wire.pool_hits, 1);
        assert_eq!(snap.wire.pool_hit_rate, Some(0.5));
        assert_eq!(m.wire_payload_allocs(), 1);
        assert_eq!(m.wire_frames_rx(), 2);
        // And the section renders in the JSON dump.
        let v: serde_json::Value = serde_json::from_str(&m.dump_json()).unwrap();
        assert_eq!(v["wire"]["frames_rx"].as_u64(), Some(2));
        assert_eq!(v["wire"]["payload_allocs"].as_u64(), Some(1));
    }

    #[test]
    fn tier_section_polls_its_provider() {
        let m = ServingMetrics::new();
        // No tiered store attached → the section is absent (JSON null).
        assert_eq!(m.tier_snapshot(), None);
        let v: serde_json::Value = serde_json::from_str(&m.dump_json()).unwrap();
        assert!(v["tier"].is_null());

        let hits = Arc::new(AtomicU64::new(3));
        let hits2 = Arc::clone(&hits);
        m.set_tier_provider(move || TierSnapshot {
            budget_bytes: 1024,
            cache_hits: hits2.load(Ordering::Relaxed),
            cache_misses: 1,
            hit_rate: Some(0.75),
            ..TierSnapshot::default()
        });
        assert_eq!(m.tier_snapshot().unwrap().cache_hits, 3);
        // The provider is *polled*: later snapshots see later state.
        hits.store(9, Ordering::Relaxed);
        let v: serde_json::Value = serde_json::from_str(&m.dump_json()).unwrap();
        assert_eq!(v["tier"]["cache_hits"].as_u64(), Some(9));
        assert_eq!(v["tier"]["budget_bytes"].as_u64(), Some(1024));
    }

    #[test]
    fn tier_snapshots_merge_across_nodes() {
        let mut a = TierSnapshot {
            budget_bytes: 100,
            resident_bytes: 80,
            cache_hits: 30,
            cache_misses: 10,
            hit_rate: Some(0.75),
            fault_p99_ms: Some(1.5),
            demotions: 2,
            ..TierSnapshot::default()
        };
        let b = TierSnapshot {
            budget_bytes: 100,
            resident_bytes: 50,
            cache_hits: 10,
            cache_misses: 10,
            hit_rate: Some(0.5),
            fault_p99_ms: Some(4.0),
            demotions: 1,
            ..TierSnapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.budget_bytes, 200);
        assert_eq!(a.resident_bytes, 130);
        assert_eq!(a.cache_hits, 40);
        assert_eq!(a.hit_rate, Some(40.0 / 60.0));
        assert_eq!(a.fault_p99_ms, Some(4.0));
        assert_eq!(a.demotions, 3);
    }

    #[test]
    fn control_section_polls_its_provider() {
        let m = ServingMetrics::new();
        // No control plane attached → the section is absent (JSON null).
        assert_eq!(m.control_snapshot(), None);
        let v: serde_json::Value = serde_json::from_str(&m.dump_json()).unwrap();
        assert!(v["control"].is_null());

        let rounds = Arc::new(AtomicU64::new(2));
        let rounds2 = Arc::clone(&rounds);
        m.set_control_provider(move || ControlSnapshot {
            probe_rounds: rounds2.load(Ordering::Relaxed),
            promotions: 1,
            map_version: 4,
            strikes: [("shard-0".to_string(), 1)].into_iter().collect(),
            terms: [("shard-0".to_string(), 2)].into_iter().collect(),
            pending_fences: 1,
        });
        assert_eq!(m.control_snapshot().unwrap().promotions, 1);
        // The provider is *polled*: later snapshots see later state.
        rounds.store(9, Ordering::Relaxed);
        let v: serde_json::Value = serde_json::from_str(&m.dump_json()).unwrap();
        assert_eq!(v["control"]["probe_rounds"].as_u64(), Some(9));
        assert_eq!(v["control"]["terms"]["shard-0"].as_u64(), Some(2));
        assert_eq!(v["control"]["map_version"].as_u64(), Some(4));
    }

    #[test]
    fn write_endpoints_are_first_class_metric_labels() {
        let m = ServingMetrics::new();
        m.record(Endpoint::PutOnline, 0.4, true);
        m.record(Endpoint::Promote, 1.0, false);
        let snap = m.snapshot();
        assert_eq!(snap.endpoints["put_online"].requests, 1);
        assert_eq!(snap.endpoints["promote"].errors, 1);
        assert_eq!(m.total_requests(), 2);
    }

    #[test]
    fn embed_copy_counter_flows_into_the_wire_section() {
        let m = ServingMetrics::new();
        assert_eq!(m.embed_copies(), 0);
        m.record_embed_copy();
        let snap = m.snapshot();
        assert_eq!(snap.wire.embed_copies, 1);
    }

    #[test]
    fn json_dump_is_parseable_and_carries_counters() {
        let m = ServingMetrics::new();
        m.record(Endpoint::Health, 0.1, true);
        m.record(Endpoint::GetEmbedding, 2.0, false);
        m.record_shed();
        let dump = m.dump_json();
        let v: serde_json::Value = serde_json::from_str(&dump).unwrap();
        assert_eq!(v["shed"].as_u64(), Some(1));
        assert_eq!(v["endpoints"]["health"]["requests"].as_u64(), Some(1));
        assert_eq!(v["endpoints"]["get_embedding"]["errors"].as_u64(), Some(1));
    }
}
