//! The serving-side ANN index catalog (paper §4: searching and querying
//! embeddings at industrial scale, without stopping the world to reindex).
//!
//! Each embedding table gets an immutable [`IndexSnapshot`]: an ANN index
//! built from one published table version, plus the row-id ↔ entity-key
//! mapping search answers travel through. The whole per-table snapshot map
//! lives in a [`SnapshotCell`] — readers resolve one `Arc` to the map and
//! search lock-free from then on, while a background build thread
//! constructs a replacement from the *current* store snapshot and swaps it
//! in. Traffic in flight keeps its old snapshot; nothing blocks, nothing
//! drops. Every swap is a cell publication, so the snapshot's generation
//! *is* the catalog's [`ReadEpoch`] at publication time — clients (and the
//! E15/E16 experiments) can observe exactly when a swap landed, and
//! staleness — how far the live table has advanced past the snapshot — is
//! reported into [`ServingMetrics`].

use crate::metrics::{IndexStatus, ServingMetrics};
use crate::protocol::WireHit;
use fstore_common::hash::FxHashMap;
use fstore_common::{FsError, ReadEpoch, SnapshotCell, Versioned};
use fstore_embed::{EmbeddingDb, EmbeddingStore};
use fstore_index::{
    FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, SearchParams, VectorIndex,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Which index family to build over a table, with its build-time knobs.
/// Serializable so replication can ship *build instructions* to followers —
/// index bytes never cross the wire; followers rebuild deterministically
/// (the configs carry fixed seeds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IndexSpec {
    /// Exact brute-force scan (recall 1.0; O(n) per query).
    Flat,
    /// k-means inverted file.
    Ivf(IvfConfig),
    /// Hierarchical navigable small world graph.
    Hnsw(HnswConfig),
}

impl IndexSpec {
    /// Family label, as reported in metrics and bench artifacts.
    pub fn kind(&self) -> &'static str {
        match self {
            IndexSpec::Flat => "flat",
            IndexSpec::Ivf(_) => "ivf",
            IndexSpec::Hnsw(_) => "hnsw",
        }
    }
}

/// One immutable, swappable unit: an index over one table version plus the
/// key mapping. Shared by `Arc`; a swap replaces the `Arc`, never mutates.
pub struct IndexSnapshot {
    /// The table name this snapshot serves (unqualified).
    pub table: String,
    /// The embedding-table version the rows were exported from.
    pub built_from_version: u32,
    /// The catalog [`ReadEpoch`] this snapshot was published at; larger =
    /// swapped in later.
    pub generation: u64,
    /// Index family label (`"flat"`, `"ivf"`, `"hnsw"`).
    pub kind: &'static str,
    /// The full build instructions, so replication can ship them to a
    /// follower for a deterministic rebuild.
    pub spec: IndexSpec,
    /// Row id `i` in the index is entity `keys[i]`.
    keys: Vec<String>,
    key_to_row: FxHashMap<String, usize>,
    index: Box<dyn VectorIndex + Send + Sync>,
}

impl IndexSnapshot {
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.index.dim()
    }

    /// The entity key behind a dataset row id.
    pub fn key_of(&self, row: usize) -> Option<&str> {
        self.keys.get(row).map(String::as_str)
    }
}

/// Why a catalog search could not be answered. Each variant maps onto a
/// distinct wire [`ErrorCode`](crate::protocol::ErrorCode) in the server.
#[derive(Debug)]
pub enum CatalogError {
    /// No snapshot is live for the table (never built, or first build
    /// still in flight).
    IndexNotReady { table: String },
    /// Query vector dimension does not match the snapshot's index.
    DimensionMismatch { expected: usize, got: usize },
    /// `search_by_key` named an entity the snapshot does not hold.
    KeyNotFound { table: String, key: String },
    /// The underlying index refused the search (k = 0, …).
    Failed(FsError),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::IndexNotReady { table } => {
                write!(f, "no index snapshot is live for table `{table}`")
            }
            CatalogError::DimensionMismatch { expected, got } => {
                write!(f, "query dim {got} != index dim {expected}")
            }
            CatalogError::KeyNotFound { table, key } => {
                write!(f, "key `{key}` not in index snapshot for `{table}`")
            }
            CatalogError::Failed(e) => write!(f, "search failed: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// A successful search, stamped with the snapshot identity it ran against.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The embedding-table version the snapshot was built from.
    pub table_version: u32,
    /// The snapshot's swap generation — the catalog [`ReadEpoch`] it was
    /// published at.
    pub index_generation: u64,
    /// Ascending by squared-L2 distance.
    pub hits: Vec<WireHit>,
}

/// The catalog's published map: table name → live index snapshot.
pub type IndexMap = FxHashMap<String, Arc<IndexSnapshot>>;

/// Per-table ANN index snapshots over a shared [`EmbeddingDb`], with
/// atomic swap and background rebuild.
///
/// The map of live snapshots is itself an epoch-versioned snapshot: every
/// swap publishes a new map through a [`SnapshotCell`], and the publication
/// epoch doubles as the new snapshot's generation. Readers never take a
/// lock the builder holds.
pub struct IndexCatalog {
    store: EmbeddingDb,
    snapshots: SnapshotCell<IndexMap>,
    metrics: Mutex<Option<Arc<ServingMetrics>>>,
}

impl IndexCatalog {
    pub fn new(store: EmbeddingDb) -> Self {
        IndexCatalog {
            store,
            snapshots: SnapshotCell::new(FxHashMap::default()),
            metrics: Mutex::new(None),
        }
    }

    /// The embedding store this catalog indexes.
    pub fn store(&self) -> EmbeddingDb {
        self.store.clone()
    }

    /// Wire swap/staleness reporting into the server's metrics. Called by
    /// `server::start`; harmless to call again (last attachment wins).
    pub fn attach_metrics(&self, metrics: Arc<ServingMetrics>) {
        *self.metrics.lock() = Some(metrics);
        // Back-publish snapshots built before the server started.
        self.publish_all_statuses();
    }

    /// Build an index over the current version of `table` and swap it in.
    ///
    /// Rows are exported from one lock-free store snapshot; the build —
    /// the expensive part — runs with no locks held, and the swap itself
    /// is one cell publication (concurrent builds serialize only there).
    /// `table` may be `"name"` (latest) or `"name@vN"` (pinned); the
    /// snapshot is keyed and served under the *unqualified* name either
    /// way.
    pub fn build(&self, table: &str, spec: &IndexSpec) -> Result<Arc<IndexSnapshot>, FsError> {
        let built = construct(&self.store.snapshot(), table, spec)?;
        // The publication epoch is the generation: the update closure is
        // handed the epoch the new map will be stamped with, so the
        // snapshot can carry its own generation before it becomes visible.
        let name = built.name.clone();
        let (_, snapshot) = self.snapshots.update(|map, next_epoch| {
            let snapshot = Arc::new(built.into_snapshot(next_epoch.as_u64()));
            let mut next = map.clone();
            next.insert(name.clone(), Arc::clone(&snapshot));
            (next, snapshot)
        });
        if let Some(metrics) = self.metrics.lock().clone() {
            metrics.record_index_swap();
        }
        self.publish_status(&name);
        Ok(snapshot)
    }

    /// Replication: rebuild `table`'s index from the leader-shipped build
    /// instructions — pinned table version, spec with its seeds — and
    /// install it at the leader's exact `generation`, so follower search
    /// responses echo the leader's `(table_version, index_generation)`
    /// identity. The embedding version must already have been replicated.
    pub fn install_replica(
        &self,
        table: &str,
        spec: &IndexSpec,
        built_from_version: u32,
        generation: u64,
    ) -> Result<Arc<IndexSnapshot>, FsError> {
        let qualified = format!("{table}@v{built_from_version}");
        let built = construct(&self.store.snapshot(), &qualified, spec)?;
        let snapshot = Arc::new(built.into_snapshot(generation));
        let mut next = (*self.snapshots.load()).clone();
        next.insert(table.to_string(), Arc::clone(&snapshot));
        self.snapshots.restore(next, ReadEpoch(generation));
        if let Some(metrics) = self.metrics.lock().clone() {
            metrics.record_index_swap();
        }
        self.publish_status(table);
        Ok(snapshot)
    }

    /// Observe every map publication (replication taps in here; see
    /// [`fstore_common::snapshot::PublishHook`]). Replaces existing hooks.
    pub fn set_publish_hook(&self, hook: impl Fn(&Versioned<IndexMap>) + Send + Sync + 'static) {
        self.snapshots.set_publish_hook(hook);
    }

    /// Observe every map publication *alongside* existing observers — lets
    /// replication and durability both tap the same publish path.
    pub fn add_publish_hook(&self, hook: impl Fn(&Versioned<IndexMap>) + Send + Sync + 'static) {
        self.snapshots.add_publish_hook(hook);
    }

    /// Kick off [`IndexCatalog::build`] on a background thread and return
    /// its handle; search traffic keeps hitting the old snapshot until the
    /// swap lands. The handle yields the new snapshot's generation.
    pub fn rebuild_in_background(
        self: &Arc<Self>,
        table: impl Into<String>,
        spec: IndexSpec,
    ) -> JoinHandle<Result<u64, FsError>> {
        let catalog = Arc::clone(self);
        let table = table.into();
        std::thread::Builder::new()
            .name(format!("fstore-index-build-{table}"))
            .spawn(move || catalog.build(&table, &spec).map(|s| s.generation))
            .expect("spawn index build thread")
    }

    /// The live snapshot for a table, if one has been built. The returned
    /// `Arc` stays valid across any number of subsequent swaps.
    pub fn snapshot(&self, table: &str) -> Option<Arc<IndexSnapshot>> {
        let name = table.rsplit_once("@v").map_or(table, |(n, _)| n);
        self.snapshots.load().get(name).cloned()
    }

    /// The full live map together with its publication epoch — replication
    /// captures a consistent set of build instructions from one call.
    pub fn current(&self) -> Versioned<IndexMap> {
        self.snapshots.read()
    }

    /// The catalog's publication epoch; bumps once per successful swap.
    pub fn epoch(&self) -> ReadEpoch {
        self.snapshots.epoch()
    }

    /// Total successful swaps across all tables (the epoch, as a count).
    pub fn swap_count(&self) -> u64 {
        self.epoch().as_u64()
    }

    /// `k` nearest stored entities to an explicit query vector.
    pub fn search(
        &self,
        table: &str,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<SearchOutcome, CatalogError> {
        let snapshot = self
            .snapshot(table)
            .ok_or_else(|| CatalogError::IndexNotReady {
                table: table.to_string(),
            })?;
        if query.len() != snapshot.dim() {
            return Err(CatalogError::DimensionMismatch {
                expected: snapshot.dim(),
                got: query.len(),
            });
        }
        let hits = snapshot
            .index
            .search(query, k, params)
            .map_err(CatalogError::Failed)?;
        Ok(outcome(&snapshot, hits, None))
    }

    /// One multi-query pass for a coalesced search batch: the snapshot
    /// `Arc` is resolved once, so every member answers from the same
    /// generation even if a swap lands mid-batch. The outer error is the
    /// table-level failure (no snapshot); inner results are per-query.
    #[allow(clippy::type_complexity)]
    pub fn search_many(
        &self,
        table: &str,
        queries: &[Vec<f32>],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Result<SearchOutcome, CatalogError>>, CatalogError> {
        let snapshot = self
            .snapshot(table)
            .ok_or_else(|| CatalogError::IndexNotReady {
                table: table.to_string(),
            })?;
        Ok(queries
            .iter()
            .map(|query| {
                if query.len() != snapshot.dim() {
                    return Err(CatalogError::DimensionMismatch {
                        expected: snapshot.dim(),
                        got: query.len(),
                    });
                }
                snapshot
                    .index
                    .search(query, k, params)
                    .map(|hits| outcome(&snapshot, hits, None))
                    .map_err(CatalogError::Failed)
            })
            .collect())
    }

    /// `k` nearest stored entities to the vector stored under `key`; the
    /// key itself is excluded from the hits.
    pub fn search_by_key(
        &self,
        table: &str,
        key: &str,
        k: usize,
        params: &SearchParams,
    ) -> Result<SearchOutcome, CatalogError> {
        let snapshot = self
            .snapshot(table)
            .ok_or_else(|| CatalogError::IndexNotReady {
                table: table.to_string(),
            })?;
        let &row = snapshot
            .key_to_row
            .get(key)
            .ok_or_else(|| CatalogError::KeyNotFound {
                table: table.to_string(),
                key: key.to_string(),
            })?;
        let query: Vec<f32> = snapshot
            .index
            .vector(row)
            .expect("key_to_row rows are in range")
            .to_vec();
        // Ask for one extra: the query's own row comes back at distance 0.
        let hits = snapshot
            .index
            .search(&query, k.saturating_add(1), params)
            .map_err(CatalogError::Failed)?;
        Ok(outcome(&snapshot, hits, Some(row)))
    }

    /// Per-table status (generation, staleness vs. the live store) for one
    /// table, freshly computed from one store snapshot.
    pub fn status(&self, table: &str) -> Option<IndexStatus> {
        let snapshot = self.snapshot(table)?;
        Some(status_of(&snapshot, &self.store.snapshot()))
    }

    /// Recompute and push one table's status into the attached metrics.
    /// No-op when metrics are not attached or the table has no snapshot.
    pub fn publish_status(&self, table: &str) {
        let Some(metrics) = self.metrics.lock().clone() else {
            return;
        };
        if let Some(status) = self.status(table) {
            metrics.set_index_status(table, status);
        }
    }

    /// Refresh every table's staleness in the attached metrics — call
    /// after publishing new table versions so dashboards see the drift.
    ///
    /// All statuses are computed against *one* map snapshot and *one*
    /// store snapshot, so a swap or republish landing mid-publication
    /// cannot produce a status set that mixes two views (the old
    /// collect-names-then-relookup scheme could drop or tear a table that
    /// swapped between the two steps).
    pub fn publish_all_statuses(&self) {
        let Some(metrics) = self.metrics.lock().clone() else {
            return;
        };
        let map = self.snapshots.load();
        let store = self.store.snapshot();
        for (table, snapshot) in map.iter() {
            metrics.set_index_status(table, status_of(snapshot, &store));
        }
    }
}

impl std::fmt::Debug for IndexCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexCatalog")
            .field("epoch", &self.epoch())
            .field("tables", &self.snapshots.load().len())
            .finish_non_exhaustive()
    }
}

/// A fully constructed index plus its identity, not yet assigned a
/// generation (that happens at publication time).
struct Built {
    name: String,
    version: u32,
    spec: IndexSpec,
    keys: Vec<String>,
    key_to_row: FxHashMap<String, usize>,
    index: Box<dyn VectorIndex + Send + Sync>,
}

impl Built {
    fn into_snapshot(self, generation: u64) -> IndexSnapshot {
        IndexSnapshot {
            table: self.name,
            built_from_version: self.version,
            generation,
            kind: self.spec.kind(),
            spec: self.spec,
            keys: self.keys,
            key_to_row: self.key_to_row,
            index: self.index,
        }
    }
}

/// Export rows from one store snapshot and build the index — the expensive
/// part, run with no locks held. `table` may be `"name"` (latest) or
/// `"name@vN"` (pinned).
fn construct(store: &EmbeddingStore, table: &str, spec: &IndexSpec) -> Result<Built, FsError> {
    let v = store.resolve(table)?;
    let (keys, vectors) = v.table.export_rows();
    let index: Box<dyn VectorIndex + Send + Sync> = match spec {
        IndexSpec::Flat => Box::new(FlatIndex::build(vectors)?),
        IndexSpec::Ivf(cfg) => Box::new(IvfIndex::build(vectors, *cfg)?),
        IndexSpec::Hnsw(cfg) => Box::new(HnswIndex::build(vectors, *cfg)?),
    };
    let key_to_row: FxHashMap<String, usize> = keys
        .iter()
        .enumerate()
        .map(|(row, k)| (k.clone(), row))
        .collect();
    Ok(Built {
        name: v.name.clone(),
        version: v.version,
        spec: spec.clone(),
        keys,
        key_to_row,
        index,
    })
}

/// One table's status against one consistent store snapshot.
fn status_of(snapshot: &IndexSnapshot, store: &EmbeddingStore) -> IndexStatus {
    let live_version = store
        .latest(&snapshot.table)
        .map(|v| v.version)
        .unwrap_or(snapshot.built_from_version);
    IndexStatus {
        kind: snapshot.kind.to_string(),
        generation: snapshot.generation,
        built_from_version: snapshot.built_from_version,
        staleness: live_version.saturating_sub(snapshot.built_from_version),
        len: snapshot.len(),
        dim: snapshot.dim(),
    }
}

/// Translate row-id hits into keyed wire hits, dropping `exclude` and
/// trimming the k+1 over-fetch from [`IndexCatalog::search_by_key`].
fn outcome(
    snapshot: &IndexSnapshot,
    hits: Vec<(usize, f32)>,
    exclude: Option<usize>,
) -> SearchOutcome {
    let k = match exclude {
        Some(_) => hits.len().saturating_sub(1),
        None => hits.len(),
    };
    let wire: Vec<WireHit> = hits
        .into_iter()
        .filter(|&(row, _)| Some(row) != exclude)
        .take(k)
        .map(|(row, distance)| WireHit {
            key: snapshot.keys[row].clone(),
            distance,
        })
        .collect();
    SearchOutcome {
        table_version: snapshot.built_from_version,
        index_generation: snapshot.generation,
        hits: wire,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::Timestamp;
    use fstore_embed::{EmbeddingProvenance, EmbeddingTable};

    fn store_with(name: &str, rows: &[(&str, Vec<f32>)]) -> EmbeddingDb {
        let store = EmbeddingDb::new();
        publish(&store, name, rows);
        store
    }

    fn publish(store: &EmbeddingDb, name: &str, rows: &[(&str, Vec<f32>)]) {
        let mut t = EmbeddingTable::new(rows[0].1.len()).unwrap();
        for (k, v) in rows {
            t.insert(*k, v.clone()).unwrap();
        }
        store
            .publish(name, t, EmbeddingProvenance::default(), Timestamp::EPOCH)
            .unwrap();
    }

    fn grid_rows() -> Vec<(String, Vec<f32>)> {
        (0..20)
            .map(|i| (format!("e{i:02}"), vec![i as f32, 0.0]))
            .collect()
    }

    fn grid_store() -> EmbeddingDb {
        let rows = grid_rows();
        let borrowed: Vec<(&str, Vec<f32>)> =
            rows.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        store_with("emb", &borrowed)
    }

    #[test]
    fn build_then_search_maps_rows_to_keys() {
        let catalog = IndexCatalog::new(grid_store());
        catalog.build("emb", &IndexSpec::Flat).unwrap();
        let out = catalog
            .search("emb", &[3.1, 0.0], 3, &SearchParams::default())
            .unwrap();
        assert_eq!(out.table_version, 1);
        assert_eq!(out.index_generation, 1);
        let keys: Vec<&str> = out.hits.iter().map(|h| h.key.as_str()).collect();
        assert_eq!(keys, vec!["e03", "e04", "e02"]);
        for w in out.hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn search_by_key_excludes_self() {
        let catalog = IndexCatalog::new(grid_store());
        catalog.build("emb", &IndexSpec::Flat).unwrap();
        let out = catalog
            .search_by_key("emb", "e05", 2, &SearchParams::default())
            .unwrap();
        let keys: Vec<&str> = out.hits.iter().map(|h| h.key.as_str()).collect();
        assert_eq!(keys, vec!["e04", "e06"], "self excluded, neighbours kept");
        assert!(matches!(
            catalog.search_by_key("emb", "ghost", 2, &SearchParams::default()),
            Err(CatalogError::KeyNotFound { .. })
        ));
    }

    #[test]
    fn missing_snapshot_and_bad_dim_are_typed() {
        let catalog = IndexCatalog::new(grid_store());
        assert!(matches!(
            catalog.search("emb", &[0.0, 0.0], 1, &SearchParams::default()),
            Err(CatalogError::IndexNotReady { .. })
        ));
        catalog.build("emb", &IndexSpec::Flat).unwrap();
        assert!(matches!(
            catalog.search("emb", &[0.0; 5], 1, &SearchParams::default()),
            Err(CatalogError::DimensionMismatch {
                expected: 2,
                got: 5
            })
        ));
    }

    #[test]
    fn swap_advances_generation_and_old_arcs_stay_valid() {
        let catalog = Arc::new(IndexCatalog::new(grid_store()));
        catalog.build("emb", &IndexSpec::Flat).unwrap();
        let old = catalog.snapshot("emb").unwrap();
        let handle = catalog.rebuild_in_background(
            "emb",
            IndexSpec::Hnsw(HnswConfig {
                ef_search: 32,
                ..HnswConfig::default()
            }),
        );
        let new_gen = handle.join().unwrap().unwrap();
        assert_eq!(new_gen, 2);
        assert_eq!(catalog.snapshot("emb").unwrap().generation, 2);
        assert_eq!(catalog.snapshot("emb").unwrap().kind, "hnsw");
        // The pre-swap Arc still answers searches.
        assert_eq!(old.generation, 1);
        assert_eq!(old.len(), 20);
        assert_eq!(catalog.swap_count(), 2);
        assert_eq!(catalog.epoch(), ReadEpoch(2));
    }

    #[test]
    fn staleness_tracks_store_versions() {
        let store = grid_store();
        let catalog = IndexCatalog::new(store.clone());
        catalog.build("emb", &IndexSpec::Flat).unwrap();
        assert_eq!(catalog.status("emb").unwrap().staleness, 0);
        // Publish v2; the snapshot is now one version behind.
        let rows = grid_rows();
        let borrowed: Vec<(&str, Vec<f32>)> =
            rows.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        publish(&store, "emb", &borrowed);
        let status = catalog.status("emb").unwrap();
        assert_eq!(status.built_from_version, 1);
        assert_eq!(status.staleness, 1);
        // Rebuilding catches up.
        catalog.build("emb", &IndexSpec::Flat).unwrap();
        assert_eq!(catalog.status("emb").unwrap().staleness, 0);
    }

    #[test]
    fn metrics_receive_swaps_and_status() {
        let catalog = IndexCatalog::new(grid_store());
        let metrics = Arc::new(ServingMetrics::new());
        catalog.build("emb", &IndexSpec::Flat).unwrap();
        // Attaching after a build back-publishes existing snapshots.
        catalog.attach_metrics(Arc::clone(&metrics));
        let snap = metrics.snapshot();
        assert_eq!(snap.indexes["emb"].kind, "flat");
        assert_eq!(snap.indexes["emb"].generation, 1);
        catalog
            .build("emb", &IndexSpec::Ivf(IvfConfig::default()))
            .unwrap();
        assert_eq!(metrics.index_swaps(), 1, "only post-attach swaps counted");
        assert_eq!(metrics.snapshot().indexes["emb"].kind, "ivf");
    }

    #[test]
    fn qualified_names_pin_the_build_version_but_share_the_key() {
        let store = grid_store();
        let rows = grid_rows();
        let borrowed: Vec<(&str, Vec<f32>)> =
            rows.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        publish(&store, "emb", &borrowed); // v2
        let catalog = IndexCatalog::new(store);
        catalog.build("emb@v1", &IndexSpec::Flat).unwrap();
        let snap = catalog.snapshot("emb").unwrap();
        assert_eq!(snap.built_from_version, 1);
        // Searching with a qualified name resolves to the same snapshot.
        assert!(catalog
            .search("emb@v1", &[0.0, 0.0], 1, &SearchParams::default())
            .is_ok());
    }

    #[test]
    fn install_replica_pins_version_and_generation() {
        let store = grid_store();
        let rows = grid_rows();
        let borrowed: Vec<(&str, Vec<f32>)> =
            rows.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        publish(&store, "emb", &borrowed); // v2
        let catalog = IndexCatalog::new(store);
        let snap = catalog
            .install_replica("emb", &IndexSpec::Flat, 1, 5)
            .unwrap();
        assert_eq!(snap.built_from_version, 1);
        assert_eq!(snap.generation, 5);
        assert_eq!(snap.spec, IndexSpec::Flat);
        assert_eq!(catalog.epoch(), ReadEpoch(5));
        let out = catalog
            .search("emb", &[3.1, 0.0], 1, &SearchParams::default())
            .unwrap();
        assert_eq!(out.index_generation, 5);
        assert_eq!(out.table_version, 1);
        // Idempotent re-install at the same generation.
        catalog
            .install_replica("emb", &IndexSpec::Flat, 1, 5)
            .unwrap();
        assert_eq!(catalog.epoch(), ReadEpoch(5));
    }

    #[test]
    fn publish_hook_observes_swaps() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let catalog = IndexCatalog::new(grid_store());
        {
            let seen = Arc::clone(&seen);
            catalog.set_publish_hook(move |v| {
                let snap = &v.value["emb"];
                seen.lock()
                    .push((v.epoch.as_u64(), snap.generation, snap.built_from_version));
            });
        }
        catalog.build("emb", &IndexSpec::Flat).unwrap();
        assert_eq!(*seen.lock(), vec![(1, 1, 1)]);
    }

    #[test]
    fn statuses_come_from_one_consistent_view() {
        // publish_all_statuses racing a swapper must always publish a
        // generation the catalog actually swapped in, computed against one
        // map view (the old collect-names-then-relookup scheme could mix
        // views).
        let store = grid_store();
        let catalog = Arc::new(IndexCatalog::new(store.clone()));
        let metrics = Arc::new(ServingMetrics::new());
        catalog.build("emb", &IndexSpec::Flat).unwrap();
        catalog.attach_metrics(Arc::clone(&metrics));

        let swapper = {
            let catalog = Arc::clone(&catalog);
            std::thread::spawn(move || {
                for _ in 0..20 {
                    catalog.build("emb", &IndexSpec::Flat).unwrap();
                }
            })
        };
        for _ in 0..50 {
            catalog.publish_all_statuses();
            let snap = metrics.snapshot();
            let status = &snap.indexes["emb"];
            assert!(status.generation >= 1 && status.generation <= 21);
            assert_eq!(status.len, 20);
        }
        swapper.join().unwrap();
    }
}
