//! Property tests for pipelined connections: random burst schedules of
//! mixed request types, sent through the fault-injecting proxy with
//! random mid-frame cut probabilities. The ordering contract under test
//! is the one the protocol stakes its lack of correlation IDs on — a
//! burst either comes back as in-order, correctly-typed responses (each
//! `Features` answer names the entity its slot asked for) or fails as a
//! clean typed error; a crossed response is never acceptable, with or
//! without faults.
//!
//! The runner is hand-rolled (one deterministic [`TestRng`], strategies
//! generated per case) so a single server + proxy pair is shared across
//! every case instead of rebinding loopback sockets 48 times.

use fstore_common::{EntityKey, Timestamp, Value};
use fstore_core::FeatureServer;
use fstore_serve::fault::FaultyProxy;
use fstore_serve::{
    fixed_clock, start, ClientConfig, FeatureClient, Request, Response, ServeConfig, ServeEngine,
    ServerHandle,
};
use fstore_storage::OnlineStore;
use proptest::prelude::*;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const NOW: Timestamp = Timestamp(10_000);
const ENTITIES: usize = 32;

fn start_server() -> ServerHandle {
    let online = Arc::new(OnlineStore::default());
    for i in 0..ENTITIES {
        online.put(
            "user",
            &EntityKey::new(format!("u{i}")),
            "score",
            Value::Float(i as f64 * 0.5),
            Timestamp::millis(100),
        );
    }
    let engine = ServeEngine::new(FeatureServer::new(online), fixed_clock(NOW));
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .queue_depth(128)
        .max_batch(8)
        .build()
        .unwrap();
    start(engine, config).unwrap()
}

fn connect(addr: SocketAddr) -> Option<FeatureClient> {
    FeatureClient::connect_with(
        addr,
        &ClientConfig {
            connect_timeout: Some(Duration::from_millis(250)),
            // Bounded reads: a cut or stalled proxy must cost a timeout,
            // never a hang.
            read_timeout: Some(Duration::from_millis(500)),
            write_timeout: Some(Duration::from_millis(500)),
            deadline_budget: None,
            ..ClientConfig::default()
        },
    )
    .ok()
}

/// One slot of a burst: `ENTITIES` means `Health`, anything below is a
/// `GetFeatures` for that entity.
fn to_request(slot: usize) -> Request {
    if slot >= ENTITIES {
        Request::Health
    } else {
        Request::GetFeatures {
            group: "user".to_string(),
            entity: format!("u{slot}"),
            features: vec!["score".to_string()],
        }
    }
}

/// The response in slot `i` of a burst must answer request slot `i` — the
/// wrong type or the wrong entity is a crossed response.
fn matches_request(slot: usize, response: &Response) -> bool {
    match response {
        Response::Health { .. } => slot >= ENTITIES,
        Response::Features(vector) => {
            slot < ENTITIES
                && vector.entity == format!("u{slot}")
                && vector.values == vec![Value::Float(slot as f64 * 0.5)]
        }
        _ => false,
    }
}

/// A schedule is a list of bursts; each burst is a list of request slots.
fn schedule_strategy(max_burst: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    collection::vec(collection::vec(0usize..(ENTITIES + 1), 1..max_burst), 1..5)
}

#[test]
fn pipelined_bursts_answer_in_order_or_fail_typed_under_cuts() {
    let server = start_server();
    let proxy = FaultyProxy::start(server.addr(), 0xE21_0001).unwrap();
    let faults = proxy.faults();
    let proxy_addr = proxy.addr();

    let schedules = schedule_strategy(12);
    // Per-frame probability the proxy drops the connection halfway
    // through a response; zero keeps a fault-free control in the mix.
    let cuts = prop_oneof![Just(0.0f64), 0.05f64..0.6];

    let mut rng = TestRng::deterministic("pipeline_props::cuts");
    for _case in 0..48 {
        let schedule = schedules.generate(&mut rng);
        let cut = cuts.generate(&mut rng);
        faults.clear();
        faults.set_drop_midframe_probability(cut);

        let mut client = connect(proxy_addr);
        for burst in &schedule {
            let Some(conn) = client.as_mut() else {
                // A refused reconnect right after a cut: acceptable
                // transient, try again for the next burst.
                client = connect(proxy_addr);
                continue;
            };
            let requests: Vec<Request> = burst.iter().map(|&s| to_request(s)).collect();
            match conn.call_many(&requests) {
                Ok(responses) => {
                    // In order, correctly typed, right entity per slot.
                    prop_assert_eq!(responses.len(), burst.len());
                    for (&slot, response) in burst.iter().zip(&responses) {
                        prop_assert!(
                            matches_request(slot, response),
                            "crossed response: slot {} answered by {:?}",
                            slot,
                            response
                        );
                    }
                }
                Err(_) => {
                    // A cut burst must fail as a typed client error —
                    // reaching here (rather than hanging or panicking)
                    // is the property. The connection is poisoned; open
                    // a fresh one for the next burst.
                    client = connect(proxy_addr);
                }
            }
        }
    }
    faults.clear();

    proxy.shutdown();
    server.shutdown();
}

/// With no faults at all, every burst must succeed end-to-end — the
/// pipelined path has no probabilistic behavior of its own.
#[test]
fn pipelined_bursts_roundtrip_cleanly_without_faults() {
    let server = start_server();
    let addr = server.addr();

    let schedules = schedule_strategy(20);
    let mut rng = TestRng::deterministic("pipeline_props::clean");
    for _case in 0..32 {
        let schedule = schedules.generate(&mut rng);
        let mut client = connect(addr).expect("connect to loopback server");
        for burst in &schedule {
            let requests: Vec<Request> = burst.iter().map(|&s| to_request(s)).collect();
            let responses = client.call_many(&requests).expect("clean burst");
            prop_assert_eq!(responses.len(), burst.len());
            for (&slot, response) in burst.iter().zip(&responses) {
                prop_assert!(matches_request(slot, response));
            }
        }
    }

    server.shutdown();
}
