//! End-to-end loopback tests: a real server on 127.0.0.1, concurrent
//! clients over real sockets, responses checked against direct in-process
//! `FeatureServer` / `EmbeddingTable` calls.

use fstore_common::{EntityKey, Timestamp, Value};
use fstore_core::FeatureServer;
use fstore_embed::{EmbeddingDb, EmbeddingProvenance, EmbeddingTable};
use fstore_serve::{
    fixed_clock, start, ErrorCode, FeatureClient, ServeConfig, ServeEngine, StoreApi,
};
use fstore_storage::OnlineStore;
use std::sync::Arc;

const ENTITIES: usize = 100;
const EMBED_KEYS: usize = 20;
const EMBED_DIM: usize = 8;
const NOW: Timestamp = Timestamp(10_000);

fn online_store() -> Arc<OnlineStore> {
    let online = Arc::new(OnlineStore::default());
    for i in 0..ENTITIES {
        let key = EntityKey::new(format!("u{i}"));
        online.put(
            "user",
            &key,
            "score",
            Value::Float(i as f64 * 0.5),
            Timestamp::millis(100 + i as i64),
        );
        online.put(
            "user",
            &key,
            "clicks",
            Value::Int(i as i64),
            Timestamp::millis(200 + i as i64),
        );
    }
    online
}

fn embedding_db() -> EmbeddingDb {
    let mut table = EmbeddingTable::new(EMBED_DIM).unwrap();
    for i in 0..EMBED_KEYS {
        let v: Vec<f32> = (0..EMBED_DIM)
            .map(|d| (i * EMBED_DIM + d) as f32 * 0.25)
            .collect();
        table.insert(format!("u{i}"), v).unwrap();
    }
    let store = EmbeddingDb::new();
    store
        .publish("emb", table, EmbeddingProvenance::default(), NOW)
        .unwrap();
    store
}

#[test]
fn concurrent_clients_match_direct_calls_and_shutdown_is_graceful() {
    let online = online_store();
    let direct = FeatureServer::new(Arc::clone(&online));
    let embeddings = embedding_db();
    let engine = ServeEngine::new(FeatureServer::new(online), fixed_clock(NOW))
        .with_embeddings(embeddings.clone());
    let handle = start(
        engine,
        ServeConfig {
            workers: 4,
            queue_depth: 256,
            max_batch: 16,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    const THREADS: usize = 8;
    const PER_THREAD: usize = 125; // 8 × 125 = 1000 requests

    let direct = Arc::new(direct);
    let embeddings_ref = embeddings.clone();
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let direct = Arc::clone(&direct);
            let embeddings = embeddings_ref.clone();
            std::thread::spawn(move || {
                let mut client = FeatureClient::connect(addr).unwrap();
                for i in 0..PER_THREAD {
                    let pick = (t * PER_THREAD + i) % 5;
                    match pick {
                        0 | 1 => {
                            // Single-entity lookup, both feature orders;
                            // includes entities that do not exist.
                            let id = (t * 31 + i * 7) % (ENTITIES + 5);
                            let entity = format!("u{id}");
                            let features: &[&str] = if pick == 0 {
                                &["score", "clicks"]
                            } else {
                                &["clicks"]
                            };
                            let got = client.get_features("user", &entity, features).unwrap();
                            let want = direct
                                .serve("user", &EntityKey::new(entity.clone()), features, NOW)
                                .unwrap();
                            assert_eq!(got.entity, entity);
                            assert_eq!(got.values, want.values);
                            assert_eq!(
                                got.ages_ms,
                                want.ages
                                    .iter()
                                    .map(|a| a.map(|d| d.as_millis()))
                                    .collect::<Vec<_>>()
                            );
                            assert_eq!(got.stale, want.stale);
                        }
                        2 => {
                            let ids = [
                                (t + i) % ENTITIES,
                                (t + i + 1) % ENTITIES,
                                (t + i + 2) % ENTITIES,
                            ];
                            let names: Vec<String> =
                                ids.iter().map(|id| format!("u{id}")).collect();
                            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                            let got = client
                                .get_features_batch("user", &refs, &["score"])
                                .unwrap();
                            let keys: Vec<EntityKey> =
                                names.iter().map(|n| EntityKey::new(n.clone())).collect();
                            let want = direct.serve_batch("user", &keys, &["score"], NOW).unwrap();
                            assert_eq!(got.len(), want.len());
                            for (g, w) in got.iter().zip(&want) {
                                assert_eq!(g.values, w.values);
                            }
                        }
                        3 => {
                            let id = (t + i) % EMBED_KEYS;
                            let key = format!("u{id}");
                            let got = client.get_embedding("emb", &key).unwrap();
                            let catalog = embeddings.snapshot();
                            let want = catalog
                                .latest("emb")
                                .unwrap()
                                .table
                                .get(&key)
                                .unwrap()
                                .to_vec();
                            assert_eq!(got.vector, want);
                            assert_eq!(got.dim, EMBED_DIM);
                            assert_eq!(got.version, 1, "served from emb@v1");
                            assert_eq!(got.epoch, 1, "one publication before serving");
                        }
                        _ => {
                            let (_depth, draining) = client.health().unwrap();
                            assert!(!draining);
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let metrics = handle.metrics();
    let snapshot = metrics.snapshot();
    assert_eq!(
        metrics.total_requests(),
        (THREADS * PER_THREAD) as u64,
        "every request was handled exactly once: {snapshot:?}"
    );
    assert_eq!(snapshot.shed, 0, "no shedding expected at this queue depth");
    for (name, ep) in &snapshot.endpoints {
        assert_eq!(ep.errors, 0, "endpoint {name} saw errors");
        if ep.requests > 0 {
            assert!(ep.p50_ms.is_some(), "endpoint {name} has latency quantiles");
        }
    }

    // Graceful shutdown joins the acceptor, connection threads and
    // workers; reaching the next line is the assertion.
    handle.shutdown();
}

#[test]
fn unknown_embedding_and_bad_requests_get_typed_errors() {
    let online = online_store();
    let engine = ServeEngine::new(FeatureServer::new(online), fixed_clock(NOW));
    let handle = start(engine, ServeConfig::default()).unwrap();
    let mut client = FeatureClient::connect(handle.addr()).unwrap();

    let err = client.get_embedding("nope", "k").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::NotFound));

    // The connection survives a typed error and keeps serving.
    let v = client.get_features("user", "u1", &["score"]).unwrap();
    assert_eq!(v.values, vec![Value::Float(0.5)]);

    handle.shutdown();
}

#[test]
fn load_shedding_returns_overloaded_and_counts_sheds() {
    let online = online_store();
    let engine = ServeEngine::new(FeatureServer::new(online), fixed_clock(NOW));
    // Queue depth 1, a single slow worker: concurrent clients must
    // overflow admission and get Overloaded immediately instead of
    // queuing or hanging.
    let handle = start(
        engine,
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            max_batch: 1,
            handler_delay: Some(std::time::Duration::from_millis(25)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    const THREADS: usize = 6;
    const PER_THREAD: usize = 4;
    let threads: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = FeatureClient::connect(addr).unwrap();
                let mut ok = 0u64;
                let mut overloaded = 0u64;
                for i in 0..PER_THREAD {
                    match client.get_features("user", &format!("u{i}"), &["score"]) {
                        Ok(_) => ok += 1,
                        Err(e) => {
                            assert_eq!(
                                e.code(),
                                Some(ErrorCode::Overloaded),
                                "only Overloaded is acceptable here: {e}"
                            );
                            overloaded += 1;
                        }
                    }
                }
                (ok, overloaded)
            })
        })
        .collect();

    let mut ok_total = 0;
    let mut overloaded_total = 0;
    for t in threads {
        let (ok, overloaded) = t.join().unwrap();
        ok_total += ok;
        overloaded_total += overloaded;
    }
    assert_eq!(ok_total + overloaded_total, (THREADS * PER_THREAD) as u64);
    assert!(
        overloaded_total > 0,
        "6 concurrent clients must overflow a depth-1 queue"
    );

    let metrics = handle.metrics();
    assert_eq!(
        metrics.shed_count(),
        overloaded_total,
        "every Overloaded reply is one shed"
    );
    let dump = metrics.dump_json();
    let parsed: serde_json::Value = serde_json::from_str(&dump).unwrap();
    assert_eq!(
        parsed["shed"].as_u64(),
        Some(overloaded_total),
        "shed count in the JSON dump"
    );

    handle.shutdown();
}

/// Malformed input at the raw socket: oversized declared lengths must close
/// the connection promptly (the registered shutdown handle must not keep the
/// fd open after the connection thread exits), garbage payloads must get a
/// typed error frame, and a half-written frame followed by disconnect must
/// not wedge the server.
#[test]
fn malformed_frames_close_or_error_without_wedging_the_server() {
    use fstore_serve::{write_frame, FrameEvent, FrameReader, Response, MAX_FRAME_LEN};
    use std::io::Write;
    use std::net::TcpStream;
    use std::time::Duration as StdDuration;

    let online = online_store();
    let engine = ServeEngine::new(FeatureServer::new(online), fixed_clock(NOW));
    let handle = start(engine, ServeConfig::default()).unwrap();
    let addr = handle.addr();
    let timeout = Some(StdDuration::from_secs(5));

    // Oversized declared length: refused before allocation with a typed
    // FrameTooLarge error, then the connection is closed — the client
    // must observe the error and EOF, not a hang.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&u32::MAX.to_be_bytes()).unwrap();
    let mut r = FrameReader::new();
    match r.read_frame(&s, MAX_FRAME_LEN, timeout, timeout).unwrap() {
        FrameEvent::Frame(payload) => match Response::decode(payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::FrameTooLarge),
            other => panic!("expected FrameTooLarge error, got {other:?}"),
        },
        other => panic!("expected a typed refusal frame, got {other:?}"),
    }
    match r.read_frame(&s, MAX_FRAME_LEN, timeout, timeout).unwrap() {
        FrameEvent::Eof => {}
        other => panic!(
            "server must close the connection after refusing an oversized frame, got {other:?}"
        ),
    }

    // Well-framed garbage payload: a typed BadRequest error frame back on
    // the same connection.
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(&mut s, &[0xde, 0xad, 0xbe, 0xef, 0x42]).unwrap();
    let mut r = FrameReader::new();
    match r.read_frame(&s, MAX_FRAME_LEN, timeout, timeout).unwrap() {
        FrameEvent::Frame(payload) => match Response::decode(payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("expected error response, got {other:?}"),
        },
        other => panic!("expected an error frame, got {other:?}"),
    }

    // Half-written frame then disconnect: the server must shrug it off.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&[0, 0, 0, 10, 1, 2]).unwrap();
    drop(s);

    // And a fresh client is still served after all of that.
    let mut client = FeatureClient::connect(addr).unwrap();
    let v = client.get_features("user", "u1", &["score"]).unwrap();
    assert_eq!(v.values, vec![Value::Float(0.5)]);

    handle.shutdown();
}
