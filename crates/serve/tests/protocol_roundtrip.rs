//! Property tests for the wire protocol: every request/response variant
//! round-trips byte-exactly, strict prefixes of a valid payload never
//! decode (and never panic), and oversized frames are refused.

use fstore_common::{ComponentKind, Timestamp, Value};
use fstore_serve::protocol::{write_frame, MAX_FRAME_LEN};
use fstore_serve::{
    ErrorCode, Request, Response, SearchOptions, WireDelta, WireError, WireHit, WireVector,
};
use proptest::prelude::*;

fn arb_string() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("plain".to_string()),
        Just("with spaces and \"quotes\"".to_string()),
        Just("unicodé → 🦀".to_string()),
        (0u32..10_000).prop_map(|i| format!("entity-{i}")),
    ]
}

fn arb_strings() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(arb_string(), 0..4)
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1e9f64..1e9).prop_map(Value::Float),
        Just(Value::Bool(true)),
        Just(Value::Bool(false)),
        arb_string().prop_map(Value::Str),
        (-1_000_000i64..1_000_000).prop_map(|ms| Value::Timestamp(Timestamp::millis(ms))),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    // A bare request, or one wrapped in a deadline-budget envelope (the
    // envelope never nests, so one layer covers the grammar).
    (
        arb_bare_request(),
        prop_oneof![Just(None), (0u32..120_000).prop_map(Some)],
    )
        .prop_map(|(inner, budget)| match budget {
            Some(budget_ms) => Request::WithDeadline {
                budget_ms,
                inner: Box::new(inner),
            },
            None => inner,
        })
}

fn arb_bare_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Health),
        (arb_string(), arb_string(), arb_strings()).prop_map(|(group, entity, features)| {
            Request::GetFeatures {
                group,
                entity,
                features,
            }
        }),
        (arb_string(), arb_strings(), arb_strings()).prop_map(|(group, entities, features)| {
            Request::GetFeaturesBatch {
                group,
                entities,
                features,
            }
        }),
        (arb_string(), arb_string()).prop_map(|(table, key)| Request::GetEmbedding { table, key }),
        (arb_string(), arb_query(), 0u32..64, arb_options()).prop_map(
            |(table, query, k, options)| Request::SearchNearest {
                table,
                query,
                k,
                options,
            }
        ),
        (arb_string(), arb_string(), 0u32..64, arb_options()).prop_map(
            |(table, key, k, options)| Request::SearchNearestByKey {
                table,
                key,
                k,
                options,
            }
        ),
        Just(Request::ReplSubscribe),
        Just(Request::ReplSnapshot),
        (0u64..1_000_000u64).prop_map(|from_epoch| Request::ReplDeltas { from_epoch }),
        (arb_string(), arb_string(), arb_values(), 0u64..1_000_000u64).prop_map(
            |(group, entity, values, term)| Request::PutOnline {
                group,
                entity,
                values,
                term,
            }
        ),
        (0u32..16, 0u64..1_000_000u64).prop_map(|(shard, term)| Request::Promote { shard, term }),
        (0u32..16, 0u64..1_000_000u64).prop_map(|(shard, term)| Request::Demote { shard, term }),
    ]
}

fn arb_values() -> impl Strategy<Value = Vec<(String, Value)>> {
    proptest::collection::vec((arb_string(), arb_value()), 0..5)
}

fn arb_query() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100f32..100.0, 0..16)
}

fn arb_options() -> impl Strategy<Value = SearchOptions> {
    (0u32..512, 0u32..512, prop_oneof![Just(false), Just(true)]).prop_map(
        |(ef, nprobe, exhaustive)| SearchOptions {
            ef,
            nprobe,
            exhaustive,
        },
    )
}

fn arb_hits() -> impl Strategy<Value = Vec<WireHit>> {
    proptest::collection::vec(
        (arb_string(), 0f32..1e6).prop_map(|(key, distance)| WireHit { key, distance }),
        0..8,
    )
}

fn arb_vector() -> impl Strategy<Value = WireVector> {
    (
        arb_string(),
        arb_strings(),
        proptest::collection::vec(arb_value(), 0..5),
        proptest::collection::vec(
            prop_oneof![Just(None), (0i64..1_000_000).prop_map(Some)],
            0..5,
        ),
        (arb_strings(), 0u64..1_000_000u64),
    )
        .prop_map(
            |(entity, features, values, ages_ms, (stale, epoch))| WireVector {
                entity,
                features,
                values,
                ages_ms,
                stale,
                epoch,
            },
        )
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::NotFound),
        Just(ErrorCode::Stale),
        Just(ErrorCode::Overloaded),
        Just(ErrorCode::ShuttingDown),
        Just(ErrorCode::Internal),
        Just(ErrorCode::IndexNotReady),
        Just(ErrorCode::DimensionMismatch),
        Just(ErrorCode::DeadlineExceeded),
        Just(ErrorCode::FrameTooLarge),
        Just(ErrorCode::NotLeader),
    ]
}

fn arb_component() -> impl Strategy<Value = ComponentKind> {
    prop_oneof![
        Just(ComponentKind::Offline),
        Just(ComponentKind::Embeddings),
        Just(ComponentKind::Index),
        Just(ComponentKind::Online),
    ]
}

fn arb_deltas() -> impl Strategy<Value = Vec<WireDelta>> {
    proptest::collection::vec(
        (
            0u64..1_000_000,
            arb_component(),
            0u64..1_000_000,
            arb_string(),
        )
            .prop_map(|(seq, component, component_epoch, body)| WireDelta {
                seq,
                component,
                component_epoch,
                body,
            }),
        0..6,
    )
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u16..256, 0..64)
        .prop_map(|v| v.into_iter().map(|x| x as u8).collect())
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (0u32..1024, prop_oneof![Just(false), Just(true)]).prop_map(|(queue_depth, draining)| {
            Response::Health {
                queue_depth,
                draining,
            }
        }),
        arb_vector().prop_map(Response::Features),
        proptest::collection::vec(arb_vector(), 0..4).prop_map(Response::FeaturesBatch),
        (1u32..64, 1u32..16, 0u64..1_000_000u64, arb_query()).prop_map(
            |(dim, version, epoch, vector)| {
                Response::Embedding {
                    dim,
                    version,
                    epoch,
                    vector: vector.into(),
                }
            }
        ),
        (1u32..16, 0u64..1_000_000_000u64, arb_hits()).prop_map(
            |(table_version, index_generation, hits)| Response::Neighbors {
                table_version,
                index_generation,
                hits,
            }
        ),
        (arb_error_code(), arb_string())
            .prop_map(|(code, message)| Response::Error { code, message }),
        (0u64..1_000_000, 0u64..1_000_000, 1u32..1024).prop_map(
            |(leader_epoch, oldest_retained, retention)| Response::ReplState {
                leader_epoch,
                oldest_retained,
                retention,
            }
        ),
        (0u64..1_000_000, arb_payload()).prop_map(|(repl_epoch, payload)| {
            Response::ReplSnapshot {
                repl_epoch,
                payload: payload.into(),
            }
        }),
        (
            0u64..1_000_000,
            prop_oneof![Just(false), Just(true)],
            arb_deltas()
        )
            .prop_map(|(leader_epoch, lagged, deltas)| Response::ReplDeltas {
                leader_epoch,
                lagged,
                deltas,
            }),
        (0u64..1_000_000u64, 0u64..1_000_000u64)
            .prop_map(|(epoch, term)| Response::PutAck { epoch, term }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_round_trips(req in arb_request()) {
        let encoded = req.encode();
        prop_assert_eq!(Request::decode(&encoded).unwrap(), req);
    }

    #[test]
    fn response_round_trips(resp in arb_response()) {
        let encoded = resp.encode();
        prop_assert_eq!(Response::decode(&encoded).unwrap(), resp);
    }

    #[test]
    fn truncated_requests_never_decode(req in arb_request(), cut in 0usize..1000) {
        let encoded = req.encode();
        // Any strict prefix of a canonical encoding is incomplete.
        let cut = cut % encoded.len().max(1);
        if cut < encoded.len() {
            prop_assert!(Request::decode(&encoded[..cut]).is_err());
        }
    }

    #[test]
    fn truncated_responses_never_decode(resp in arb_response(), cut in 0usize..1000) {
        let encoded = resp.encode();
        let cut = cut % encoded.len().max(1);
        if cut < encoded.len() {
            prop_assert!(Response::decode(&encoded[..cut]).is_err());
        }
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u16..256, 0..64)
        .prop_map(|v| v.into_iter().map(|x| x as u8).collect::<Vec<u8>>()))
    {
        // Either outcome is fine; panicking is not.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn framing_round_trips(req in arb_request()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        // 4-byte big-endian length prefix, then exactly the payload.
        let declared = u32::from_be_bytes(wire[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(declared, wire.len() - 4);
        prop_assert_eq!(Request::decode(&wire[4..]).unwrap(), req);
    }
}

#[test]
fn unknown_frame_tags_are_rejected() {
    // Request tags 0..=12 and response tags 0..=9 are assigned; everything
    // above must fail with a typed BadTag, not a panic or a misparse.
    for tag in 13u8..=255 {
        assert!(
            matches!(Request::decode(&[tag]), Err(WireError::BadTag { .. })),
            "request tag {tag} was not rejected"
        );
    }
    for tag in 10u8..=255 {
        assert!(
            matches!(Response::decode(&[tag]), Err(WireError::BadTag { .. })),
            "response tag {tag} was not rejected"
        );
    }
}

#[test]
fn unknown_component_tag_inside_a_delta_is_rejected() {
    // A valid ReplDeltas frame whose one delta carries component tag 9.
    let good = Response::ReplDeltas {
        leader_epoch: 5,
        lagged: false,
        deltas: vec![WireDelta {
            seq: 5,
            component: ComponentKind::Online,
            component_epoch: 0,
            body: "{}".to_string(),
        }],
    };
    let mut bytes = good.encode().to_vec();
    // Layout: tag(1) + leader_epoch(8) + lagged(1) + count(4) + seq(8),
    // then the component tag byte.
    let component_at = 1 + 8 + 1 + 4 + 8;
    assert_eq!(bytes[component_at], ComponentKind::Online.as_u8());
    bytes[component_at] = 9;
    assert!(matches!(
        Response::decode(&bytes),
        Err(WireError::BadTag { .. })
    ));
}

#[test]
fn oversized_declared_frame_is_refused() {
    use fstore_serve::{FrameEvent, FrameReader};
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
    let (rx, _) = listener.accept().unwrap();
    tx.write_all(&((MAX_FRAME_LEN as u32) + 1).to_be_bytes())
        .unwrap();
    tx.write_all(&[0u8; 16]).unwrap();
    let bound = Some(Duration::from_secs(5));
    let mut reader = FrameReader::new();
    match reader.read_frame(&rx, MAX_FRAME_LEN, bound, bound).unwrap() {
        FrameEvent::TooLarge { declared } => assert_eq!(declared, MAX_FRAME_LEN + 1),
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn oversized_inner_length_is_refused() {
    // A GetEmbedding whose string claims to be ~4 GiB long.
    let mut payload = vec![3u8];
    payload.extend_from_slice(&u32::MAX.to_be_bytes());
    payload.extend_from_slice(b"tiny");
    assert!(matches!(
        Request::decode(&payload),
        Err(WireError::Oversized(_))
    ));
}
