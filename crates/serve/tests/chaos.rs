//! Chaos loopback tests: real servers on 127.0.0.1 behind the
//! fault-injecting proxy, exercising the resilience stack — failover
//! across a server kill + restart, typed errors (not hangs) under frame
//! corruption, and bounded waits against stalled peers on both sides of
//! the wire.

use fstore_common::{EntityKey, Timestamp, Value};
use fstore_core::FeatureServer;
use fstore_serve::fault::FaultyProxy;
use fstore_serve::{
    fixed_clock, start, BreakerConfig, ClientConfig, ClientError, ErrorCode, FailoverClient,
    FeatureClient, Request, Response, RetryPolicy, ServeConfig, ServeEngine, ServerHandle,
};
use fstore_storage::OnlineStore;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NOW: Timestamp = Timestamp(10_000);

fn online_store() -> Arc<OnlineStore> {
    let online = Arc::new(OnlineStore::default());
    for i in 0..50 {
        online.put(
            "user",
            &EntityKey::new(format!("u{i}")),
            "score",
            Value::Float(i as f64 * 0.5),
            Timestamp::millis(100 + i as i64),
        );
    }
    online
}

fn start_server(addr: &str) -> ServerHandle {
    let engine = ServeEngine::new(FeatureServer::new(online_store()), fixed_clock(NOW));
    let config = ServeConfig::builder()
        .addr(addr)
        .workers(2)
        .queue_depth(64)
        .max_batch(8)
        .build()
        .unwrap();
    start(engine, config).unwrap()
}

fn fast_client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_millis(250)),
        read_timeout: Some(Duration::from_millis(500)),
        write_timeout: Some(Duration::from_millis(500)),
        deadline_budget: None,
        ..ClientConfig::default()
    }
}

fn eager_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base_backoff: Duration::from_millis(10),
        multiplier: 2.0,
        max_backoff: Duration::from_millis(200),
        jitter: 0.25,
    }
}

fn get_u1() -> Request {
    Request::GetFeatures {
        group: "user".into(),
        entity: "u1".into(),
        features: vec!["score".into()],
    }
}

/// The server dies mid-stream and comes back on the same port; a
/// FailoverClient rides it out without a caller-visible error, where a
/// bare FeatureClient on the dead connection fails.
#[test]
fn failover_client_survives_a_server_kill_and_restart() {
    let handle = start_server("127.0.0.1:0");
    let addr = handle.addr().to_string();

    let mut bare = FeatureClient::connect_with(addr.as_str(), &fast_client_config()).unwrap();
    let mut failover = FailoverClient::connect(
        &[addr.as_str()],
        fast_client_config(),
        eager_retry(),
        BreakerConfig {
            failure_threshold: 10,
            open_cooldown: Duration::from_millis(50),
        },
    );

    // Clean traffic first, establishing both connections.
    assert!(matches!(bare.call(&get_u1()), Ok(Response::Features(_))));
    assert!(matches!(
        failover.call(&get_u1()),
        Ok(Response::Features(_))
    ));

    // Kill the server and bring it back on the same port (std listeners
    // set SO_REUSEADDR on Unix, so the rebind is immediate).
    handle.shutdown();
    let handle = start_server(&addr);

    // The bare client holds a dead connection: its next call must error
    // (that is the degradation failover exists to absorb).
    assert!(
        bare.call(&get_u1()).is_err(),
        "bare client's dead connection should surface an error"
    );

    // The failover client reconnects and retries internally: no
    // caller-visible error.
    match failover.call(&get_u1()) {
        Ok(Response::Features(v)) => assert_eq!(v.values, vec![Value::Float(0.5)]),
        other => panic!("failover client surfaced a failure across restart: {other:?}"),
    }

    handle.shutdown();
}

/// With the leader gone for good, reads fail over to a follower endpoint
/// serving identical data, and the leader's breaker opens so later calls
/// skip the dead endpoint.
#[test]
fn reads_fail_over_to_a_follower_when_the_leader_stays_down() {
    let leader = start_server("127.0.0.1:0");
    let follower = start_server("127.0.0.1:0");
    let leader_addr = leader.addr().to_string();
    let follower_addr = follower.addr().to_string();

    let mut client = FailoverClient::connect(
        &[leader_addr.as_str(), follower_addr.as_str()],
        fast_client_config(),
        eager_retry(),
        BreakerConfig {
            failure_threshold: 2,
            open_cooldown: Duration::from_secs(30),
        },
    );

    // Healthy leader answers.
    assert!(matches!(client.call(&get_u1()), Ok(Response::Features(_))));
    assert_eq!(client.stats().failed_over_calls, 0);

    // Leader dies and stays dead.
    leader.shutdown();
    for _ in 0..5 {
        match client.call(&get_u1()) {
            Ok(Response::Features(v)) => assert_eq!(v.values, vec![Value::Float(0.5)]),
            other => panic!("read failed despite a live follower: {other:?}"),
        }
    }
    let stats = client.stats();
    assert!(
        stats.failed_over_calls >= 5,
        "answers must have come from the follower: {stats:?}"
    );
    assert_eq!(stats.exhausted_calls, 0);

    follower.shutdown();
}

/// Corrupted response frames (valid framing, garbage payload) surface as
/// typed wire errors — never a hang, a panic, or a wrong answer.
#[test]
fn garbage_frames_yield_typed_decode_errors_not_hangs() {
    let handle = start_server("127.0.0.1:0");
    let proxy = FaultyProxy::start(handle.addr(), 0xc0_44_07).unwrap();
    let faults = proxy.faults();
    faults.set_corrupt_probability(1.0);

    let mut client =
        FeatureClient::connect_with(proxy.addr().to_string().as_str(), &fast_client_config())
            .unwrap();
    let started = Instant::now();
    match client.call(&get_u1()) {
        Err(ClientError::Wire(_)) => {}
        Err(ClientError::UnexpectedResponse(_)) => {
            // A corrupt payload that still parses as *some* frame is
            // astronomically unlikely but typed all the same.
        }
        other => panic!("corrupt frame produced {other:?}, expected a typed wire error"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "decode error must be prompt, not a timeout"
    );
    assert!(faults.frames_corrupted() >= 1);

    // Clearing the fault makes the same proxy transparent again.
    faults.clear();
    let mut clean =
        FeatureClient::connect_with(proxy.addr().to_string().as_str(), &fast_client_config())
            .unwrap();
    assert!(matches!(clean.call(&get_u1()), Ok(Response::Features(_))));

    proxy.shutdown();
    handle.shutdown();
}

/// A peer that stops sending mid-frame is cut off by the server's frame
/// deadline (and counted), while other clients keep being served — the
/// slow-loris containment property.
#[test]
fn stalled_sender_is_cut_off_and_does_not_wedge_the_server() {
    let engine = ServeEngine::new(FeatureServer::new(online_store()), fixed_clock(NOW));
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .queue_depth(64)
        .frame_timeout(Some(Duration::from_millis(150)))
        .build()
        .unwrap();
    let handle = start(engine, config).unwrap();
    let addr = handle.addr();

    // A slow-loris peer: declares a 10-byte frame, sends 2 bytes, stalls.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    loris.write_all(&[0, 0, 0, 10, 1, 2]).unwrap();

    // Meanwhile real traffic flows unimpeded.
    let mut client = FeatureClient::connect(addr).unwrap();
    for _ in 0..10 {
        assert!(matches!(client.call(&get_u1()), Ok(Response::Features(_))));
    }

    // The server's frame deadline fires: the loris sees EOF, promptly.
    let started = Instant::now();
    let mut buf = [0u8; 8];
    let n = loris.read(&mut buf).expect("read after stall");
    assert_eq!(n, 0, "stalled connection must be closed by the server");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "frame deadline must fire in bounded time"
    );
    assert!(
        handle.metrics().frame_timeout_count() >= 1,
        "the cut must be counted"
    );

    handle.shutdown();
}

/// A server that accepts a request and then stalls forever cannot hang
/// the client: its read timeout fires in bounded time.
#[test]
fn stalled_server_trips_the_client_read_timeout() {
    let handle = start_server("127.0.0.1:0");
    let proxy = FaultyProxy::start(handle.addr(), 0x57a11).unwrap();
    let faults = proxy.faults();

    let mut client =
        FeatureClient::connect_with(proxy.addr().to_string().as_str(), &fast_client_config())
            .unwrap();
    // Warm call proves the path works before the stall.
    assert!(matches!(client.call(&get_u1()), Ok(Response::Features(_))));

    faults.set_stall(true);
    let started = Instant::now();
    let result = client.call(&get_u1());
    let elapsed = started.elapsed();
    match result {
        Err(e) => assert!(
            e.is_timeout(),
            "stalled server should surface a timeout, got {e}"
        ),
        Ok(r) => panic!("call through a stalled proxy somehow answered: {r:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(3),
        "client read timeout must bound the stall, took {elapsed:?}"
    );

    faults.set_stall(false);
    proxy.shutdown();
    handle.shutdown();
}

/// An expired deadline budget is shed by the server with a typed
/// `DeadlineExceeded`, and the shed is counted. A zero budget expires at
/// admission, so every request must come back shed — deterministically.
#[test]
fn expired_deadline_budgets_are_shed_with_a_typed_error() {
    let handle = start_server("127.0.0.1:0");
    let addr = handle.addr().to_string();

    let mut config = fast_client_config();
    config.deadline_budget = Some(Duration::ZERO);
    let mut client = FeatureClient::connect_with(addr.as_str(), &config).unwrap();

    let mut shed = 0u64;
    for _ in 0..20 {
        match client.call(&get_u1()) {
            Ok(Response::Error {
                code: ErrorCode::DeadlineExceeded,
                ..
            }) => shed += 1,
            other => panic!("zero-budget request was not shed: {other:?}"),
        }
    }
    assert_eq!(shed, 20);
    assert_eq!(
        handle.metrics().deadline_shed_count(),
        shed,
        "every DeadlineExceeded answer is one counted shed"
    );

    // A sane budget on the same server serves normally.
    let mut config = fast_client_config();
    config.deadline_budget = Some(Duration::from_secs(5));
    let mut client = FeatureClient::connect_with(addr.as_str(), &config).unwrap();
    assert!(matches!(client.call(&get_u1()), Ok(Response::Features(_))));

    handle.shutdown();
}
